//! Versioned policy lifecycle tests: epoch transitions under racing
//! traffic, durable version-history recovery, and stale-policy replay
//! rejection.
//!
//! The invariants under test are the lifecycle contract end to end:
//!
//! * **No stale tasks, ever.** While [`THREADS`] threads hammer `release`
//!   and `release_pool`, a transition thread tightens the policy epoch.
//!   Every release the racing session served is then replayed on a
//!   **serial oracle** session driven purely by the `(index, version)`
//!   audit stamps: the oracle transitions to each release's stamped epoch
//!   *before* replaying it, so its estimates are bitwise what an
//!   un-raced session would have produced under that epoch. If any racing
//!   release had been served a task derived under a stale epoch, its
//!   estimate could not match the oracle's.
//! * **Stamps are monotone** in audit-index order (the packed counter
//!   allocates index and version in one atomic), and every honest
//!   multi-epoch history passes `verify_ledger_versioned`.
//! * **Recovery reconstructs the version history bit for bit** — a
//!   restarted durable session resumes at the pre-crash version with the
//!   identical transition list.
//! * **A seeded stale-policy replay is rejected**: re-stamping one real
//!   release with a more permissive epoch than the one in force at its
//!   sequence number flips the verdict.

use osdp::attack::verify_ledger_versioned;
use osdp::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

/// Serving threads per stress test — above the dev container's core count
/// so the schedules interleave even on one core.
const THREADS: usize = 8;

fn temp_root(name: &str) -> PathBuf {
    static UNIQUE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "osdp-lifecycle-{}-{}-{name}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn codes_db(n: u32) -> Database<u32> {
    (0..n).collect()
}

/// The decay schedule under test: epoch `v` marks values `>= 60 - 10·v`
/// sensitive, so each version is strictly tighter than the one before.
fn epoch_policy(v: u64) -> Arc<dyn Policy<u32>> {
    let threshold = 60u32.saturating_sub(10 * v as u32);
    Arc::new(ClosurePolicy::new(format!("decay-{v}"), move |&x: &u32| x >= threshold))
}

fn epoch_label(v: u64) -> String {
    format!("P-v{v}")
}

fn mod8_query() -> SessionQuery<u32> {
    SessionQuery::count_by("mod8", 8, |&v: &u32| Some((v % 8) as usize))
}

fn lifecycle_session(seed: u64) -> OsdpSession<u32> {
    SessionBuilder::new(codes_db(96))
        .policy_arc(epoch_policy(0), epoch_label(0))
        .seed(seed)
        .build()
        .unwrap()
}

/// One racing release, as collected by the hammer threads: everything the
/// serial oracle needs to replay it bitwise.
enum Replay {
    Single { index: u64, estimate: Histogram },
    Trials { index: u64, mechanism: String, trials: usize, estimates: Vec<Histogram> },
}

impl Replay {
    fn index(&self) -> u64 {
        match self {
            Replay::Single { index, .. } | Replay::Trials { index, .. } => *index,
        }
    }
}

/// Races `transitions` tighten steps against [`THREADS`] threads of mixed
/// single/pool traffic, then proves via serial-oracle replay that no
/// release was served a task derived under a stale epoch.
fn race_and_replay(seed: u64, per_thread: usize, transitions: u64) {
    let session = Arc::new(lifecycle_session(seed));
    let query = Arc::new(mod8_query());
    let pool_mechs = Arc::new(pool_from_names(&["OsdpLaplaceL1", "DAWAz"], 0.25).unwrap());

    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let session = Arc::clone(&session);
            let query = Arc::clone(&query);
            let pool_mechs = Arc::clone(&pool_mechs);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let mut events = Vec::new();
                if t % 2 == 0 {
                    let mechanism = OsdpLaplaceL1::new(0.5).unwrap();
                    for _ in 0..per_thread {
                        let r = session.release(&query, &mechanism).unwrap();
                        events.push(Replay::Single { index: r.index, estimate: r.estimate });
                    }
                } else {
                    let pool: Vec<&dyn HistogramMechanism> =
                        pool_mechs.iter().map(|m| m.as_ref()).collect();
                    for _ in 0..per_thread.div_ceil(2) {
                        for r in session.release_pool(&query, &pool, 2).unwrap() {
                            events.push(Replay::Trials {
                                index: r.index,
                                mechanism: r.mechanism,
                                trials: 2,
                                estimates: r.estimates,
                            });
                        }
                    }
                }
                events
            })
        })
        .collect();

    // The transition thread: tighten while the hammer runs.
    barrier.wait();
    for v in 1..=transitions {
        session.set_policy_epoch(epoch_policy(v), epoch_label(v), EpochDirection::Tighten).unwrap();
        thread::yield_now();
    }
    let mut events: Vec<Replay> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    events.sort_by_key(Replay::index);

    // Structural invariants: dense indices, monotone stamps, clean verdict.
    let mut records = session.audit_records();
    records.sort_by_key(|r| r.index);
    assert_eq!(records.len(), events.len());
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.index, i as u64, "audit indices are dense");
    }
    assert!(
        records.windows(2).all(|w| w[0].policy_version <= w[1].policy_version),
        "version stamps must be monotone in index order"
    );
    assert_eq!(session.policy_version(), transitions);
    assert_eq!(session.epoch_transitions().len() as u64, transitions);
    let verdict = session.verify_policy_lifecycle(None);
    assert!(verdict.upholds_osdp(), "honest racing history must verify: {:?}", verdict.epochs);

    // Serial-oracle replay: drive a fresh same-seed session through the
    // SAME (index, version) schedule the stamps recorded — transitioning
    // *between* releases, never racing them — and demand bitwise-equal
    // estimates. The RNG stream of release `i` is keyed by `i` on both
    // sessions, so the only degree of freedom left is the task: a racing
    // release that used a stale epoch's task cannot match the oracle.
    let oracle = lifecycle_session(seed);
    let mut oracle_version = 0u64;
    for (event, record) in events.iter().zip(&records) {
        assert_eq!(event.index(), record.index);
        while oracle_version < record.policy_version {
            oracle_version += 1;
            oracle
                .set_policy_epoch(
                    epoch_policy(oracle_version),
                    epoch_label(oracle_version),
                    EpochDirection::Tighten,
                )
                .unwrap();
        }
        match event {
            Replay::Single { index, estimate } => {
                let expected = oracle.release(&query, &OsdpLaplaceL1::new(0.5).unwrap()).unwrap();
                assert_eq!(expected.index, *index, "oracle replays in index lockstep");
                assert_eq!(
                    estimate, &expected.estimate,
                    "release {} (stamped v{}) must carry its stamped epoch's task",
                    index, record.policy_version
                );
            }
            Replay::Trials { index, mechanism, trials, estimates } => {
                let mech = pool_mechs
                    .iter()
                    .find(|m| m.name() == mechanism)
                    .expect("pool mechanism by name");
                let expected = oracle.release_trials(&query, mech.as_ref(), *trials).unwrap();
                assert_eq!(
                    estimates, &expected,
                    "pool slice {} ({}) must carry its stamped epoch's task",
                    index, mechanism
                );
            }
        }
    }
    // The replay itself is an honest serial history: it verifies too, and
    // lands on the same final version.
    assert_eq!(oracle.policy_version(), records.last().map_or(0, |r| r.policy_version));
    assert!(oracle.verify_policy_lifecycle(None).upholds_osdp());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant under racing traffic: no release is ever
    /// served a task derived from a stale epoch, and stamps stay monotone.
    #[test]
    fn racing_epoch_transitions_never_serve_stale_tasks(
        seed in 0u64..1_000,
        per_thread in 2usize..5,
        transitions in 1u64..4,
    ) {
        race_and_replay(seed, per_thread, transitions);
    }
}

#[test]
fn honest_multi_epoch_histories_verify_clean_per_tenant() {
    // A pool of tenants, each walking its own tighten/relax schedule: the
    // versioned sweep accepts every honest history.
    let pool: SessionPool<u32> = SessionPool::new();
    for (i, tenant) in ["acme", "globex"].iter().enumerate() {
        pool.insert(*tenant, lifecycle_session(50 + i as u64)).unwrap();
    }
    let mechanism = OsdpLaplaceL1::new(0.25).unwrap();
    let query = mod8_query();
    for tenant in ["acme", "globex"] {
        pool.release(tenant, &query, &mechanism).unwrap();
    }
    // acme decays (tighten); globex gains consent (relax).
    pool.set_policy_epoch("acme", epoch_policy(1), "acme-decay", EpochDirection::Tighten).unwrap();
    pool.set_policy_epoch(
        "globex",
        Arc::new(ClosurePolicy::new("consented", |&x: &u32| x >= 80)),
        "globex-consent",
        EpochDirection::Relax,
    )
    .unwrap();
    for tenant in ["acme", "globex"] {
        pool.release(tenant, &query, &mechanism).unwrap();
    }
    let verdict = pool.verify_all_ledgers();
    assert!(verdict.all_upheld(), "every honest tenant lifecycle verifies");
    for tenant in ["acme", "globex"] {
        let session = pool.get(tenant).unwrap();
        assert_eq!(session.policy_version(), 1);
        let stamps: Vec<u64> = session.audit_records().iter().map(|r| r.policy_version).collect();
        assert_eq!(stamps, vec![0, 1]);
    }
}

#[test]
fn durable_recovery_reconstructs_the_version_history_bit_for_bit() {
    let root = temp_root("recover");
    let dir = root.join("tenant");

    let first = SessionBuilder::new(codes_db(96))
        .policy_arc(epoch_policy(0), epoch_label(0))
        .seed(11)
        .durable(SessionPersistence::open(&dir, SyncPolicy::Always).unwrap())
        .build()
        .unwrap();
    let mechanism = OsdpLaplaceL1::new(0.5).unwrap();
    let query = mod8_query();
    first.release(&query, &mechanism).unwrap();
    for v in 1..=2u64 {
        first.set_policy_epoch(epoch_policy(v), epoch_label(v), EpochDirection::Tighten).unwrap();
        first.release(&query, &mechanism).unwrap();
    }
    let transitions_before = first.epoch_transitions();
    let stamps_before: Vec<u64> = first.audit_records().iter().map(|r| r.policy_version).collect();
    assert_eq!(stamps_before, vec![0, 1, 2]);
    drop(first);

    // Reopen: the WAL's epoch records reconstruct the exact history.
    let persistence = SessionPersistence::open(&dir, SyncPolicy::Always).unwrap();
    let recovered = persistence.recovered();
    assert_eq!(recovered.policy_version, 2);
    assert_eq!(recovered.transitions.len(), 2);
    for (r, t) in recovered.transitions.iter().zip(&transitions_before) {
        assert_eq!(r.version, t.version);
        assert_eq!(r.boundary_seq, t.boundary_seq);
        assert_eq!(r.relaxes, t.relaxes);
        assert_eq!(r.label, t.label);
    }

    // A restarted session resumes at the recovered version, remembers the
    // full transition list, keeps stamping from there, and verifies clean.
    let second = SessionBuilder::new(codes_db(96))
        .policy_arc(epoch_policy(2), epoch_label(2))
        .seed(11)
        .durable(persistence)
        .build()
        .unwrap();
    assert_eq!(second.policy_version(), 2);
    assert_eq!(second.epoch_transitions(), transitions_before);
    let release = second.release(&query, &mechanism).unwrap();
    assert_eq!(release.index, 3, "release indices resume after the recovered history");
    assert_eq!(second.audit_records().last().unwrap().policy_version, 2);
    assert!(second.verify_policy_lifecycle(None).upholds_osdp());

    // The lifecycle continues across the restart: the next transition is
    // version 3, and it is durably logged in turn.
    second.set_policy_epoch(epoch_policy(3), epoch_label(3), EpochDirection::Tighten).unwrap();
    assert_eq!(second.policy_version(), 3);
    drop(second);
    let reopened = SessionPersistence::open(&dir, SyncPolicy::Always).unwrap();
    assert_eq!(reopened.recovered().policy_version, 3);
    assert_eq!(reopened.recovered().transitions.len(), 3);
}

#[test]
fn seeded_stale_policy_replay_is_rejected_end_to_end() {
    // An honest session: consent relaxes the policy at a known boundary.
    let session = lifecycle_session(23);
    let mechanism = OsdpLaplaceL1::new(0.5).unwrap();
    let query = mod8_query();
    session.release(&query, &mechanism).unwrap();
    session.release(&query, &mechanism).unwrap();
    session
        .set_policy_epoch(
            Arc::new(ClosurePolicy::new("consented", |&x: &u32| x >= 80)),
            "P-consent",
            EpochDirection::Relax,
        )
        .unwrap();
    session.release(&query, &mechanism).unwrap();

    let ledger = session.audit_ledger();
    let transitions = session.epoch_transitions();
    let honest = session.release_stamps();
    assert!(verify_ledger_versioned(&ledger, None, &honest, &transitions).upholds_osdp());

    // The seeded replay: claim release 0 — served BEFORE the consent
    // boundary — ran under the relaxed epoch. That is exactly a release
    // served under a more permissive policy than the one in force at its
    // sequence number, and the verifier must reject it.
    let mut replayed = honest.clone();
    replayed[0] = ReleaseStamp { seq: 0, version: 1 };
    let verdict = verify_ledger_versioned(&ledger, None, &replayed, &transitions);
    assert!(!verdict.upholds_osdp());
    let epochs = verdict.epochs.expect("versioned verification ran");
    assert_eq!(epochs.stale_releases, vec![0]);

    // Tampering with the history instead — backdating the consent boundary
    // to excuse the replay — breaks the monotone structural check instead:
    // the stamps 1, 0, 1 cannot come from the packed audit counter.
    let mut backdated = transitions.clone();
    backdated[0].boundary_seq = 0;
    let verdict = verify_ledger_versioned(&ledger, None, &replayed, &backdated);
    assert!(
        !verdict.epochs.expect("versioned verification ran").monotone,
        "a backdated boundary cannot explain non-monotone stamps"
    );
}
