//! Oracle parity for the streaming release plane.
//!
//! The streaming plane is sugar over the one-shot machinery, not a parallel
//! implementation, and these tests pin that contract bitwise:
//!
//! * streaming `T` windows through a `StreamSession` produces
//!   **bitwise-identical** released histograms — and a ledger whose
//!   fixed-point ε total matches — to releasing the same `T` window tasks
//!   one-shot through an `OsdpSession` over the concatenated records
//!   (per-window `CountBy` queries, same seed);
//! * hierarchical range queries over `T` windows debit `O(log T)` node
//!   releases, and `verify_ledger` passes on the merged stream audit log;
//! * the audit log's fixed-point accumulator always agrees with the
//!   accountant bit for bit.

use osdp::attack::verify_ledger;
use osdp::prelude::*;
use proptest::prelude::*;

const WINDOW_FIELD: &str = "w";
const VALUE_FIELD: &str = "v";
const BINS: usize = 6;

fn record(window: u64, value: i64) -> Record {
    Record::builder()
        .field(WINDOW_FIELD, Value::Int(window as i64))
        .field(VALUE_FIELD, Value::Int(value))
        .build()
}

fn value_bin(r: &Record) -> Option<usize> {
    r.int(VALUE_FIELD).ok().map(|v| (v.max(0) as usize).min(BINS - 1))
}

/// The stream under test: policy "values ≤ 2 are non-sensitive", seeded.
fn stream_session(seed: u64, budget: StreamBudget) -> StreamSession<Record> {
    StreamSession::builder("q", BINS, value_bin)
        .policy(AttributePolicy::int_at_most(VALUE_FIELD, 2), "low")
        .seed(seed)
        .stream_budget(budget)
        .build()
        .expect("valid stream session")
}

/// The one-shot oracle: a plain session over the concatenated records,
/// releasing each window as its own `CountBy` query (bin = value bin when
/// the record belongs to the window, ignored otherwise).
fn oracle_session(seed: u64, windows: &[Vec<i64>]) -> OsdpSession<Record> {
    let db: Database<Record> = windows
        .iter()
        .enumerate()
        .flat_map(|(w, values)| values.iter().map(move |&v| record(w as u64, v)))
        .collect();
    SessionBuilder::new(db)
        .policy(AttributePolicy::int_at_most(VALUE_FIELD, 2), "low")
        .seed(seed)
        .build()
        .expect("valid oracle session")
}

fn oracle_window_query(window: u64) -> SessionQuery<Record> {
    SessionQuery::count_by(format!("q@w{window}"), BINS, move |r: &Record| {
        if r.int(WINDOW_FIELD).ok() == Some(window as i64) {
            value_bin(r)
        } else {
            None
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming T windows == releasing T one-shot window queries, bit for
    /// bit: estimates, release indices, accountant units and audit units.
    #[test]
    fn streaming_matches_the_one_shot_oracle(
        windows in prop::collection::vec(
            prop::collection::vec(0i64..BINS as i64, 0..12),
            1..10,
        ),
        seed in 0u64..1000,
        eps_thousandths in 1u64..2000,
    ) {
        let eps = eps_thousandths as f64 / 1000.0;
        let mechanism = OsdpLaplaceL1::new(eps).unwrap();

        let mut stream = stream_session(seed, StreamBudget::PerWindow);
        let mut streamed = Vec::new();
        for (w, values) in windows.iter().enumerate() {
            let rows: Database<Record> =
                values.iter().map(|&v| record(w as u64, v)).collect();
            let outcome = stream
                .ingest(Window { index: w as u64, rows }, &mechanism)
                .expect("uncapped stream");
            streamed.push(outcome.release().expect("per-window releases").clone());
        }

        let oracle = oracle_session(seed, &windows);
        for (w, release) in streamed.iter().enumerate() {
            let expected = oracle
                .release(&oracle_window_query(w as u64), &mechanism)
                .expect("uncapped oracle");
            prop_assert_eq!(&release.estimate, &expected.estimate,
                "window {} estimate must be bitwise identical", w);
            prop_assert_eq!(release.index, expected.index, "same release index");
        }

        // Same fixed-point ledger totals, bit for bit.
        let s = stream.session();
        prop_assert_eq!(
            s.accountant().total_spent_units(),
            oracle.accountant().total_spent_units()
        );
        prop_assert_eq!(s.total_spent(), oracle.total_spent());
        prop_assert_eq!(s.audit_len(), oracle.audit_len());
        // Audit accumulator == accountant, on both planes.
        prop_assert_eq!(s.audit_total_epsilon(), s.total_spent());
        prop_assert_eq!(oracle.audit_total_epsilon(), oracle.total_spent());
        // The merged stream audit log verifies.
        let verdict = verify_ledger(&s.audit_ledger(), None);
        prop_assert!(verdict.upholds_osdp());
        prop_assert!((verdict.total_epsilon - eps * windows.len() as f64).abs() < 1e-9);
    }

    /// Hierarchical streams: a range over T windows debits O(log T) node
    /// releases, never one per window, and the merged audit log verifies
    /// against the wrapped session's cap.
    #[test]
    fn hierarchical_ranges_debit_log_many_nodes(
        t in 2u64..33,
        start_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let levels = 6; // covers 2^6 = 64 > 32 windows
        let mechanism = OsdpLaplaceL1::new(0.125).unwrap();
        let cap = 0.125 * (2 * levels + 2) as f64;
        let mut stream = StreamSession::builder("q", BINS, value_bin)
            .policy(AttributePolicy::int_at_most(VALUE_FIELD, 2), "low")
            .seed(seed)
            .budget(cap)
            .stream_budget(StreamBudget::Hierarchical { levels })
            .build()
            .unwrap();
        for w in 0..t {
            let rows: Database<Record> =
                (0..4).map(|v| record(w, (v + w as i64) % BINS as i64)).collect();
            stream.ingest(Window { index: w, rows }, &mechanism).unwrap();
        }
        prop_assert_eq!(stream.session().total_spent(), 0.0, "buffering debits nothing");

        let start = ((t - 1) as f64 * start_frac) as u64;
        let estimate = stream.range_query(start..t, &mechanism).unwrap();
        prop_assert_eq!(estimate.len(), BINS);

        // O(log T) nodes: the dyadic bound, not the window count.
        let span = (t - start) as f64;
        let bound = 2 * (span.log2().ceil() as usize + 1);
        prop_assert!(
            stream.released_nodes() <= bound,
            "{} nodes for a {}-window range (bound {})",
            stream.released_nodes(), span, bound
        );
        // Each node debited exactly once; audit == accountant bitwise; the
        // merged audit log verifies against the cap.
        let s = stream.session();
        prop_assert_eq!(s.audit_len(), stream.released_nodes());
        prop_assert_eq!(s.audit_total_epsilon(), s.total_spent());
        let verdict = verify_ledger(&s.audit_ledger(), Some(cap));
        prop_assert!(verdict.upholds_osdp());

        // Re-running the same range is pure post-processing.
        let before = s.total_spent();
        let again = stream.range_query(start..t, &mechanism).unwrap();
        prop_assert_eq!(again, estimate, "cached nodes reproduce the estimate bitwise");
        prop_assert_eq!(stream.session().total_spent(), before);
    }

    /// Ceiling-rounded accounting never under-debits: for any spend
    /// sequence, every debit's fixed-point view covers its ε, and the
    /// admitted total covers the real-valued sum.
    #[test]
    fn fixed_point_debits_never_undercount(
        epsilons in prop::collection::vec(1e-9f64..4.0, 1..32),
    ) {
        let acc = BudgetAccountant::unlimited();
        for &eps in &epsilons {
            let units = epsilon_to_units(eps);
            prop_assert!(
                units as f64 * BudgetAccountant::RESOLUTION >= eps,
                "per-spend undercount at {}", eps
            );
            acc.spend("m", "P", eps, PrivacyGuarantee::OneSided).unwrap();
        }
        let real_sum: f64 = epsilons.iter().sum();
        prop_assert!(
            acc.total_spent() >= real_sum - 1e-9,
            "fixed-point total {} below the real-valued sum {}",
            acc.total_spent(), real_sum
        );
    }
}

/// The sliding-window stream budget: refusals pass windows through without
/// debiting, and the granted windows still match the oracle's estimates
/// for their release indices.
#[test]
fn sliding_window_grants_match_oracle_releases() {
    let windows: Vec<Vec<i64>> = (0..6).map(|w| vec![w % 4, (w + 1) % 4, 3]).collect();
    let mechanism = OsdpLaplaceL1::new(0.25).unwrap();
    // Frame of 2 windows, cap 0.25: grants alternate with refusals.
    let mut stream = stream_session(3, StreamBudget::SlidingWindow { epsilon: 0.25, window: 2 });
    let mut grants = Vec::new();
    for (w, values) in windows.iter().enumerate() {
        let rows: Database<Record> = values.iter().map(|&v| record(w as u64, v)).collect();
        match stream.ingest(Window { index: w as u64, rows }, &mechanism).unwrap() {
            WindowOutcome::Released(release) => grants.push((w as u64, release)),
            WindowOutcome::Refused { .. } => {}
            WindowOutcome::Buffered { .. } => unreachable!("not hierarchical"),
        }
    }
    assert_eq!(grants.len(), 3, "every other window fits the frame");

    // The oracle releases only the granted windows, in order: release
    // index i on both sides, so estimates must agree bitwise.
    let oracle = oracle_session(3, &windows);
    for (i, (w, release)) in grants.iter().enumerate() {
        let expected = oracle.release(&oracle_window_query(*w), &mechanism).unwrap();
        assert_eq!(release.estimate, expected.estimate, "granted window {w}");
        assert_eq!(release.index, i as u64);
        assert_eq!(expected.index, i as u64);
    }
    let s = stream.session();
    assert_eq!(s.accountant().total_spent_units(), oracle.accountant().total_spent_units());
    assert_eq!(s.audit_total_epsilon(), s.total_spent());
    assert!(verify_ledger(&s.audit_ledger(), None).upholds_osdp());
}
