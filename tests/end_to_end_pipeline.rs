//! End-to-end integration tests spanning the data substrates, mechanisms,
//! metrics and experiment runners.

use osdp::data::sampling::{sample_policy, PolicyKind};
use osdp::data::tippers::{generate_dataset, policy_for_ratio, FeatureExtractor, LabeledDataset, TippersConfig};
use osdp::data::BenchmarkDataset;
use osdp::experiments::{table1, ExperimentConfig};
use osdp::ml::{auc, LogisticRegression, Standardizer, TrainConfig};
use osdp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

#[test]
fn dpbench_policy_mechanism_metric_pipeline() {
    let mut rng = ChaCha12Rng::seed_from_u64(11);
    let full = BenchmarkDataset::Medcost.generate(&mut rng);
    let policy = sample_policy(PolicyKind::Close, &full, 0.9, &mut rng).unwrap();
    let task = HistogramTask::new(full.clone(), policy.non_sensitive).unwrap();
    assert!((task.non_sensitive_ratio() - 0.9).abs() < 0.02);

    let eps = 1.0;
    let pool: Vec<Box<dyn HistogramMechanism>> = vec![
        Box::new(OsdpLaplaceL1::new(eps).unwrap()),
        Box::new(Dawaz::new(eps).unwrap()),
        Box::new(DpLaplaceHistogram::new(eps).unwrap()),
        Box::new(DawaHistogram::new(eps).unwrap()),
    ];
    let mut regrets = RegretTable::new();
    for mechanism in &pool {
        let mut error = 0.0;
        for _ in 0..3 {
            let estimate = mechanism.release(&task, &mut rng);
            assert_eq!(estimate.len(), task.bins());
            error += mean_relative_error(task.full(), &estimate).unwrap();
        }
        regrets.record("medcost/close/0.9", mechanism.name(), error / 3.0);
    }
    // Every algorithm has a regret >= 1 and at least one achieves exactly 1.
    let averages = regrets.average_regrets();
    assert_eq!(averages.len(), 4);
    assert!(averages.iter().all(|(_, r)| *r >= 1.0 - 1e-9));
    assert!(averages.iter().any(|(_, r)| (*r - 1.0).abs() < 1e-9));
    // With 90% non-sensitive records an OSDP algorithm should be the winner.
    let dp_only_regret = regrets.regret_on("medcost/close/0.9", "Laplace").unwrap();
    assert!(dp_only_regret >= 1.0);
    let osdp_regret = regrets.regret_on("medcost/close/0.9", "OsdpLaplaceL1").unwrap();
    assert!(
        osdp_regret <= dp_only_regret,
        "OsdpLaplaceL1 regret {osdp_regret} vs Laplace {dp_only_regret}"
    );
}

#[test]
fn tippers_classification_pipeline_learns_residents() {
    let mut rng = ChaCha12Rng::seed_from_u64(12);
    let dataset = generate_dataset(&TippersConfig::small(), &mut rng);
    let policy = policy_for_ratio(&dataset, 0.75);

    // Release a true sample under OSDP and train on it.
    let db: Database<_> = dataset.trajectories().to_vec().into_iter().collect();
    let rr = OsdpRr::new(1.0).unwrap();
    let released = rr.release(&db, &policy, &mut rng);
    assert!(!released.is_empty());

    let extractor = FeatureExtractor::fit(dataset.trajectories(), 64, 10);
    let train = LabeledDataset::build(&dataset, released.iter(), &extractor);
    let test = LabeledDataset::build(&dataset, dataset.trajectories(), &extractor);
    assert_eq!(train.dimension(), test.dimension());

    let scaler = Standardizer::fit(&train.features);
    let model = LogisticRegression::train(
        &scaler.transform_all(&train.features),
        &train.labels,
        &TrainConfig::default(),
    )
    .unwrap();
    let scores = model.predict_proba_all(&scaler.transform_all(&test.features));
    let quality = auc(&scores, &test.labels).unwrap();
    assert!(
        quality > 0.8,
        "a classifier trained on the OSDP release should still separate residents, AUC {quality}"
    );
}

#[test]
fn experiment_runner_is_deterministic_for_a_fixed_seed() {
    let config = ExperimentConfig::quick();
    let a = table1::run(&config);
    let b = table1::run(&config);
    assert_eq!(a, b, "same seed, same table");

    let mut other = config.clone();
    other.seed ^= 0xDEAD_BEEF;
    let c = table1::run(&other);
    // The analytic column is identical; the empirical one should differ.
    assert_ne!(a, c, "different seeds should produce different empirical rates");
}

#[test]
fn budget_accountant_guards_a_full_release_workflow() {
    let mut rng = ChaCha12Rng::seed_from_u64(13);
    let accountant = BudgetAccountant::with_limit(1.0).unwrap();
    let full = BenchmarkDataset::Adult.generate(&mut rng);
    let policy = sample_policy(PolicyKind::Close, &full, 0.5, &mut rng).unwrap();
    let task = HistogramTask::new(full, policy.non_sensitive).unwrap();

    // Spend 0.1 on zero detection, 0.9 on DAWA — a DAWAz-style split.
    accountant.spend("zero detection", "Close-0.5", 0.1, PrivacyGuarantee::OneSided).unwrap();
    accountant
        .spend("DAWA", "Pall", 0.9, PrivacyGuarantee::DifferentialPrivacy)
        .unwrap();
    assert!(accountant.remaining().unwrap() < 1e-9);
    // Attempting to release anything more is rejected.
    assert!(accountant
        .spend("OsdpRR", "Close-0.5", 0.05, PrivacyGuarantee::OneSided)
        .is_err());

    // The mechanism with exactly that split still runs fine.
    let dawaz = Dawaz::with_rho(1.0, 0.1).unwrap();
    let estimate = dawaz.release(&task, &mut rng);
    assert_eq!(estimate.len(), task.bins());
}
