//! End-to-end integration tests spanning the data substrates, mechanisms,
//! metrics and experiment runners.

use osdp::data::sampling::{sample_policy, PolicyKind};
use osdp::data::tippers::{
    generate_dataset, policy_for_ratio, FeatureExtractor, LabeledDataset, TippersConfig,
};
use osdp::data::BenchmarkDataset;
use osdp::experiments::{table1, ExperimentConfig};
use osdp::ml::{auc, LogisticRegression, Standardizer, TrainConfig};
use osdp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

#[test]
fn dpbench_policy_mechanism_metric_pipeline() {
    let mut rng = ChaCha12Rng::seed_from_u64(11);
    let full = BenchmarkDataset::Medcost.generate(&mut rng);
    let policy = sample_policy(PolicyKind::Close, &full, 0.9, &mut rng).unwrap();

    let eps = 1.0;
    let session = histogram_session(full.clone(), policy.non_sensitive)
        .policy_label("Close-0.9")
        .seed(11)
        .build()
        .unwrap();
    let task = session.derive_task(&SessionQuery::bound()).unwrap();
    assert!((task.non_sensitive_ratio() - 0.9).abs() < 0.02);

    let pool = pool_from_names(&["OsdpLaplaceL1", "DAWAz", "Laplace", "DAWA"], eps).unwrap();
    let mut regrets = RegretTable::new();
    for mechanism in &pool {
        let estimates = session.release_trials(&SessionQuery::bound(), mechanism, 3).unwrap();
        let mut error = 0.0;
        for estimate in &estimates {
            assert_eq!(estimate.len(), task.bins());
            error += mean_relative_error(&full, estimate).unwrap();
        }
        regrets.record("medcost/close/0.9", mechanism.name(), error / 3.0);
    }
    // The session audited one batch per mechanism, 3 trials each, all OSDP
    // or DP — the ledger verifies under the composition theorems.
    let verdict = osdp::attack::verify_ledger(&session.audit_ledger(), None);
    assert!((verdict.total_epsilon - 4.0 * 3.0 * eps).abs() < 1e-9);
    assert!(verdict.upholds_osdp());
    // Every algorithm has a regret >= 1 and at least one achieves exactly 1.
    let averages = regrets.average_regrets();
    assert_eq!(averages.len(), 4);
    assert!(averages.iter().all(|(_, r)| *r >= 1.0 - 1e-9));
    assert!(averages.iter().any(|(_, r)| (*r - 1.0).abs() < 1e-9));
    // With 90% non-sensitive records an OSDP algorithm should be the winner.
    let dp_only_regret = regrets.regret_on("medcost/close/0.9", "Laplace").unwrap();
    assert!(dp_only_regret >= 1.0);
    let osdp_regret = regrets.regret_on("medcost/close/0.9", "OsdpLaplaceL1").unwrap();
    assert!(
        osdp_regret <= dp_only_regret,
        "OsdpLaplaceL1 regret {osdp_regret} vs Laplace {dp_only_regret}"
    );
}

#[test]
fn tippers_classification_pipeline_learns_residents() {
    let mut rng = ChaCha12Rng::seed_from_u64(12);
    let dataset = generate_dataset(&TippersConfig::small(), &mut rng);
    let policy = policy_for_ratio(&dataset, 0.75);

    // Release a true sample under OSDP — through an audited session — and
    // train on it.
    let db: Database<_> = dataset.trajectories().to_vec().into_iter().collect();
    let session =
        SessionBuilder::new(db).policy(policy.clone(), policy.label()).seed(12).build().unwrap();
    let released = session.release_records(&OsdpRr::new(1.0).unwrap()).unwrap();
    assert!(!released.is_empty());

    let extractor = FeatureExtractor::fit(dataset.trajectories(), 64, 10);
    let train = LabeledDataset::build(&dataset, released.iter(), &extractor);
    let test = LabeledDataset::build(&dataset, dataset.trajectories(), &extractor);
    assert_eq!(train.dimension(), test.dimension());

    let scaler = Standardizer::fit(&train.features);
    let model = LogisticRegression::train(
        &scaler.transform_all(&train.features),
        &train.labels,
        &TrainConfig::default(),
    )
    .unwrap();
    let scores = model.predict_proba_all(&scaler.transform_all(&test.features));
    let quality = auc(&scores, &test.labels).unwrap();
    assert!(
        quality > 0.8,
        "a classifier trained on the OSDP release should still separate residents, AUC {quality}"
    );
}

#[test]
fn experiment_runner_is_deterministic_for_a_fixed_seed() {
    let config = ExperimentConfig::quick();
    let a = table1::run(&config);
    let b = table1::run(&config);
    assert_eq!(a, b, "same seed, same table");

    let mut other = config.clone();
    other.seed ^= 0xDEAD_BEEF;
    let c = table1::run(&other);
    // The analytic column is identical; the empirical one should differ.
    assert_ne!(a, c, "different seeds should produce different empirical rates");
}

#[test]
fn session_budget_guards_a_full_release_workflow() {
    let mut rng = ChaCha12Rng::seed_from_u64(13);
    let full = BenchmarkDataset::Adult.generate(&mut rng);
    let bins = full.len();
    let policy = sample_policy(PolicyKind::Close, &full, 0.5, &mut rng).unwrap();
    let session = histogram_session(full, policy.non_sensitive)
        .policy_label("Close-0.5")
        .budget(1.0)
        .seed(13)
        .build()
        .unwrap();

    // A DAWAz release with the 0.1/0.9 split spends exactly the budget...
    let dawaz = Dawaz::with_rho(1.0, 0.1).unwrap();
    let release = session.release(&SessionQuery::bound(), &dawaz).unwrap();
    assert_eq!(release.estimate.len(), bins);
    assert!(session.remaining_budget().unwrap() < 1e-9);

    // ...and any further release is refused before sampling.
    let err = session.release(&SessionQuery::bound(), &OsdpLaplaceL1::new(0.05).unwrap());
    assert!(matches!(err, Err(OsdpError::BudgetExhausted { .. })));
    assert_eq!(session.audit_records().len(), 1, "the refused release is not logged");

    // The attack-side verifier agrees the ledger respected its cap.
    let verdict = osdp::attack::verify_ledger(&session.audit_ledger(), Some(1.0));
    assert!(verdict.upholds_osdp());
}
