//! Property tests: the columnar backend is an exact drop-in for the row
//! backend.
//!
//! For arbitrary record databases (random field values, random missing
//! fields), arbitrary query domains and arbitrary attribute policies, the
//! `HistogramPair` produced by `ColumnarBackend` must be **bitwise
//! identical** to `RowBackend`'s — full histogram, non-sensitive
//! sub-histogram and dropped mass — and the per-policy partition cache must
//! never change results across repeated releases.

use osdp::prelude::*;
use osdp_engine::QueryPlan;
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a database of records with an `age` int field (sometimes missing),
/// a `zone` categorical field and an `opt` bool field (sometimes missing).
fn build_db(rows: &[(i64, u32, bool, u8)]) -> Database<Record> {
    rows.iter()
        .map(|&(age, zone, opt, missing)| {
            let mut b = Record::builder();
            // `missing` bits 0/1 knock out the age/opt fields.
            if missing & 1 == 0 {
                b = b.field("age", Value::Int(age));
            }
            if missing & 2 == 0 {
                b = b.field("opt", Value::Bool(opt));
            }
            b.field("zone", Value::Categorical(zone)).build()
        })
        .collect()
}

fn plan_for(
    query: &SessionQuery<Record>,
    policy: Arc<dyn Policy<Record>>,
    policy_label: &str,
) -> QueryPlan<Record> {
    let SessionQuery::CountBy { label, bins, bin_of, spec } = query.clone() else {
        panic!("parity plans are CountBy queries");
    };
    QueryPlan {
        label,
        bins,
        bin_of,
        bin_spec: spec,
        policy,
        policy_label: policy_label.to_string(),
        policy_version: 0,
    }
}

fn assert_backends_agree(db: &Database<Record>, plan: &QueryPlan<Record>) {
    let row = RowBackend::new(db.clone());
    let col = ColumnarBackend::from_database(db.clone());
    let a = row.scan(plan).expect("row scan");
    let b = col.scan(plan).expect("columnar scan");
    assert_eq!(a, b, "row and columnar scans must be bitwise identical");
    // Conservation: every record is either binned or dropped.
    assert_eq!(a.full.total() + a.dropped, db.len() as f64);
    // Cache stability: scanning again (cache hit) changes nothing, on either
    // backend.
    assert_eq!(row.scan(plan).expect("row rescan"), a);
    assert_eq!(col.scan(plan).expect("columnar rescan"), b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn columnar_matches_row_for_int_threshold_policies(
        rows in prop::collection::vec(((-40i64..120), (0u32..16), (0u64..2).prop_map(|b| b == 1), (0u8..4)), 0..80),
        threshold in -10i64..60,
        bins in 1usize..12,
        width in 1i64..25,
        origin in -20i64..20,
    ) {
        let db = build_db(&rows);
        let policy: Arc<dyn Policy<Record>> =
            Arc::new(AttributePolicy::int_at_most("age", threshold));
        let query = SessionQuery::count_by_int_linear("by-age", "age", origin, width, bins);
        assert_backends_agree(&db, &plan_for(&query, policy, "P-age"));
    }

    #[test]
    fn columnar_matches_row_for_categorical_domains(
        rows in prop::collection::vec(((-40i64..120), (0u32..32), (0u64..2).prop_map(|b| b == 1), (0u8..4)), 0..80),
        bins in 1usize..40,
    ) {
        let db = build_db(&rows);
        // Opt-in policy with missing fields failing closed (the default).
        let policy: Arc<dyn Policy<Record>> = Arc::new(AttributePolicy::opt_in("opt"));
        let query = SessionQuery::count_by_categorical("by-zone", "zone", bins);
        assert_backends_agree(&db, &plan_for(&query, policy, "P-opt"));
    }

    #[test]
    fn columnar_matches_row_for_opaque_policies_and_closure_queries(
        rows in prop::collection::vec(((-40i64..120), (0u32..16), (0u64..2).prop_map(|b| b == 1), (0u8..4)), 0..60),
        modulus in 2i64..9,
        bins in 1usize..10,
    ) {
        let db = build_db(&rows);
        // An opaque closure policy: no compiled form, columnar falls back to
        // its retained rows — results must still match exactly.
        let policy: Arc<dyn Policy<Record>> = Arc::new(ClosurePolicy::new(
            "opaque",
            move |r: &Record| r.int("age").map(|a| a.rem_euclid(modulus) == 0).unwrap_or(true),
        ));
        let query = SessionQuery::count_by("by-zone-closure", bins, move |r: &Record| {
            r.categorical("zone").ok().map(|z| z as usize)
        });
        assert_backends_agree(&db, &plan_for(&query, policy, "P-opaque"));
    }

    #[test]
    fn partition_cache_never_changes_results_across_policies(
        rows in prop::collection::vec(((-40i64..120), (0u32..16), (0u64..2).prop_map(|b| b == 1), (0u8..4)), 0..60),
        t1 in -10i64..40,
        t2 in -10i64..40,
        bins in 1usize..10,
    ) {
        // Interleave scans under two policies on ONE backend instance: each
        // cache entry must keep answering for its own policy.
        let db = build_db(&rows);
        let col = ColumnarBackend::from_database(db.clone());
        let row = RowBackend::new(db);
        let p1: Arc<dyn Policy<Record>> = Arc::new(AttributePolicy::int_at_most("age", t1));
        let p2: Arc<dyn Policy<Record>> = Arc::new(AttributePolicy::int_at_most("age", t2));
        let query = SessionQuery::count_by_int_linear("by-age", "age", 0, 10, bins);
        let plan1 = plan_for(&query, p1, "P1");
        let plan2 = plan_for(&query, p2, "P2");
        let first1 = col.scan(&plan1).unwrap();
        let first2 = col.scan(&plan2).unwrap();
        for _ in 0..3 {
            prop_assert_eq!(&col.scan(&plan1).unwrap(), &first1);
            prop_assert_eq!(&col.scan(&plan2).unwrap(), &first2);
        }
        prop_assert_eq!(&row.scan(&plan1).unwrap(), &first1);
        prop_assert_eq!(&row.scan(&plan2).unwrap(), &first2);
    }
}
