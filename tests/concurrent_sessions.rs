//! Stress tests for the concurrent serving plane.
//!
//! N threads hammer one session (and one multi-tenant pool) through the
//! lock-free grant path. The invariants under test are the paper's
//! composition contract, which must survive any interleaving:
//!
//! * the accountant never overspends its cap (Theorem 3.3, enforced on the
//!   atomic fixed-point counter), and grants + refusals account for every
//!   attempt;
//! * the merged, sequence-stamped audit ledger contains exactly one record
//!   per grant, with dense release indices, and passes
//!   `osdp_attack::verify_ledger`;
//! * per-tenant budgets in a `SessionPool` are enforced independently
//!   (parallel composition across disjoint tenants, Theorem 10.2);
//! * the sharded task cache derives each task exactly once, no matter how
//!   many threads race the same query.
//!
//! A proptest additionally pins the fixed-point property the whole design
//! rests on: spend totals are independent of interleaving order.

use osdp::attack::verify_ledger;
use osdp::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

/// Serving threads per stress test — deliberately above the dev container's
/// core count so the schedules interleave even on one core.
const THREADS: usize = 8;

fn bound_session(budget: Option<f64>) -> OsdpSession {
    let full = Histogram::from_counts(vec![40.0, 10.0, 25.0, 25.0]);
    let ns = Histogram::from_counts(vec![30.0, 10.0, 0.0, 20.0]);
    let mut b = histogram_session(full, ns).policy_label("P-stress").seed(41);
    if let Some(eps) = budget {
        b = b.budget(eps);
    }
    b.build().expect("valid bound session")
}

/// Runs `per_thread` release attempts on each of [`THREADS`] threads, all
/// starting together, and returns (grants, refusals).
fn hammer(session: &Arc<OsdpSession>, eps: f64, per_thread: usize) -> (usize, usize) {
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let session = Arc::clone(session);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mechanism = OsdpLaplaceL1::new(eps).unwrap();
                barrier.wait();
                let mut grants = 0usize;
                for _ in 0..per_thread {
                    match session.release(&SessionQuery::bound(), &mechanism) {
                        Ok(_) => grants += 1,
                        Err(OsdpError::BudgetExhausted { .. }) => {}
                        Err(other) => panic!("unexpected release error: {other}"),
                    }
                }
                grants
            })
        })
        .collect();
    let grants: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (grants, THREADS * per_thread - grants)
}

#[test]
fn concurrent_releases_never_overspend_a_tight_budget() {
    // 40 attempts of 0.125 ε race a 2.0 cap: exactly 16 can win.
    let limit = 2.0;
    let eps = 0.125;
    let session = Arc::new(bound_session(Some(limit)));
    let (grants, refusals) = hammer(&session, eps, 5);

    assert_eq!(grants + refusals, THREADS * 5, "every attempt accounted for");
    assert_eq!(grants, 16, "grants + refusals sum exactly to the cap");
    assert!(session.total_spent() <= limit, "the cap is never overshot");
    assert!((session.total_spent() - grants as f64 * eps).abs() < 1e-9);
    assert_eq!(session.remaining_budget(), Some(0.0));

    // The merged audit log: one record per grant, dense release indices.
    let records = session.audit_records();
    assert_eq!(records.len(), grants);
    let mut indices: Vec<u64> = records.iter().map(|r| r.index).collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..grants as u64).collect::<Vec<_>>());

    // The ledger verifies against the cap, and the accountant's own entry
    // ledger agrees on the number of grants.
    let verdict = verify_ledger(&session.audit_ledger(), Some(limit));
    assert!(verdict.upholds_osdp());
    assert!((verdict.total_epsilon - session.total_spent()).abs() < 1e-9);
    assert_eq!(session.accountant().ledger().len(), grants);
}

#[test]
fn mixed_single_and_pool_traffic_keeps_ledger_and_audit_in_agreement() {
    let session = Arc::new(bound_session(None));
    let mechanisms = pool_from_names(&["OsdpLaplaceL1", "DAWAz", "Laplace"], 0.5).unwrap();
    let mechanisms = Arc::new(mechanisms);
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let session = Arc::clone(&session);
            let mechanisms = Arc::clone(&mechanisms);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for round in 0..3 {
                    if (t + round) % 2 == 0 {
                        let single = OsdpLaplaceL1::new(0.5).unwrap();
                        session.release(&SessionQuery::bound(), &single).unwrap();
                    } else {
                        let pool: Vec<&dyn HistogramMechanism> =
                            mechanisms.iter().map(|m| m.as_ref()).collect();
                        session.release_pool(&SessionQuery::bound(), &pool, 2).unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Merged audit: dense indices, totals agreeing with the accountant to
    // the fixed-point resolution, and a clean verify_ledger verdict.
    let records = session.audit_records();
    assert_eq!(records.len(), session.audit_len());
    let mut indices: Vec<u64> = records.iter().map(|r| r.index).collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..records.len() as u64).collect::<Vec<_>>());
    let audit_total: f64 = records.iter().map(|r| r.total_epsilon()).sum();
    assert!((audit_total - session.total_spent()).abs() < 1e-9);
    let verdict = verify_ledger(&session.audit_ledger(), None);
    assert!(verdict.upholds_osdp());
    assert!((verdict.total_epsilon - session.total_spent()).abs() < 1e-9);
}

#[test]
fn audit_total_matches_accountant_bit_for_bit_after_a_hammer() {
    // The audit log accumulates ε in the same fixed-point units as the
    // accountant's grant path, so after ANY interleaving of single, trial
    // and pool releases the two totals are the same integer — not merely
    // within a float tolerance. (The historical float accumulator drifted
    // with shard interleaving order.)
    let session = Arc::new(bound_session(None));
    let mechanisms = pool_from_names(&["OsdpLaplaceL1", "DAWAz"], 0.3).unwrap();
    let mechanisms = Arc::new(mechanisms);
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let session = Arc::clone(&session);
            let mechanisms = Arc::clone(&mechanisms);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                // Deliberately awkward epsilons (0.3, 0.07·k) that quantize
                // above their decimals: exactly where float accumulation
                // order used to matter.
                for round in 1..=4 {
                    match (t + round) % 3 {
                        0 => {
                            let m = OsdpLaplaceL1::new(0.07 * round as f64).unwrap();
                            session.release(&SessionQuery::bound(), &m).unwrap();
                        }
                        1 => {
                            let m = OsdpLaplaceL1::new(0.3).unwrap();
                            session.release_trials(&SessionQuery::bound(), &m, round).unwrap();
                        }
                        _ => {
                            let pool: Vec<&dyn HistogramMechanism> =
                                mechanisms.iter().map(|m| m.as_ref()).collect();
                            session.release_pool(&SessionQuery::bound(), &pool, 2).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Bit for bit: same integer, same f64 view.
    assert_eq!(
        session.audit_total_epsilon_units(),
        session.accountant().total_spent_units(),
        "audit and accountant fixed-point totals must be the same integer"
    );
    assert_eq!(session.audit_total_epsilon(), session.total_spent());
    // And the iteration-free total agrees with the (ceiling-quantized)
    // per-record sum to within one unit per record.
    let records = session.audit_records();
    let float_sum: f64 = records.iter().map(|r| r.total_epsilon()).sum();
    assert!(session.audit_total_epsilon() >= float_sum - 1e-9, "never undercounts");
    assert!(
        session.audit_total_epsilon()
            < float_sum + (records.len() + 1) as f64 * BudgetAccountant::RESOLUTION + 1e-9
    );
}

#[test]
fn removed_tenants_keep_absorbing_in_flight_releases() {
    // SessionPool::remove while releases are in flight: the stragglers
    // land in the *returned* session's audit log, and remove_quiesced
    // waits for them so a final verify counts every grant.
    let pool: Arc<SessionPool> = Arc::new(SessionPool::new());
    pool.insert("acme", bound_session(None)).unwrap();
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mechanism = OsdpLaplaceL1::new(0.125).unwrap();
                barrier.wait();
                let mut grants = 0usize;
                // Release until the tenant disappears from the map; any
                // release already routed keeps running on its own Arc.
                while pool.release("acme", &SessionQuery::bound(), &mechanism).is_ok() {
                    grants += 1;
                    if pool.get("acme").is_none() {
                        break;
                    }
                }
                grants
            })
        })
        .collect();
    barrier.wait();
    // Let traffic start, then evict mid-flight and wait for quiescence.
    thread::yield_now();
    let evicted = pool.remove_quiesced("acme").expect("tenant was registered");
    let grants: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();

    // The pool no longer verifies the tenant...
    assert!(pool.get("acme").is_none());
    assert!(pool.verify_all_ledgers().tenants.is_empty());
    // ...but nothing vanished: every grant is in the returned session's
    // ledger, which passes a final verify, and the audit accumulator
    // agrees with the accountant bit for bit.
    assert_eq!(evicted.audit_len(), grants, "every in-flight release landed");
    assert_eq!(evicted.audit_total_epsilon(), evicted.total_spent());
    let verdict = verify_ledger(&evicted.audit_ledger(), None);
    assert!(verdict.upholds_osdp());
    assert!((verdict.total_epsilon - 0.125 * grants as f64).abs() < 1e-9);
    // Quiesced: we hold the only Arc.
    assert_eq!(Arc::strong_count(&evicted), 1);
}

#[test]
fn pool_isolates_tenant_budgets_under_contention() {
    let pool: Arc<SessionPool> = Arc::new(SessionPool::new());
    let tenants = ["acme", "globex", "initech", "umbrella"];
    for (i, tenant) in tenants.iter().enumerate() {
        // Tenant i can afford exactly 4 + i grants of 0.25 ε.
        let full = Histogram::from_counts(vec![40.0, 10.0, 25.0, 25.0]);
        let ns = Histogram::from_counts(vec![30.0, 10.0, 0.0, 20.0]);
        let session = histogram_session(full, ns)
            .policy_label("P-tenant")
            .budget(0.25 * (4 + i) as f64)
            .seed(100 + i as u64)
            .build()
            .unwrap();
        pool.insert(*tenant, session).unwrap();
    }

    // Two threads per tenant race 6 attempts each (12 > any tenant's cap).
    let barrier = Arc::new(Barrier::new(2 * tenants.len()));
    let handles: Vec<_> = (0..2 * tenants.len())
        .map(|slot| {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let tenant = ["acme", "globex", "initech", "umbrella"][slot / 2];
                let mechanism = OsdpLaplaceL1::new(0.25).unwrap();
                barrier.wait();
                let mut grants = 0usize;
                for _ in 0..6 {
                    if pool.release(tenant, &SessionQuery::bound(), &mechanism).is_ok() {
                        grants += 1;
                    }
                }
                (tenant, grants)
            })
        })
        .collect();
    let mut grants_by_tenant = std::collections::HashMap::new();
    for h in handles {
        let (tenant, grants) = h.join().unwrap();
        *grants_by_tenant.entry(tenant).or_insert(0usize) += grants;
    }

    // Each tenant lands exactly on its own cap — neighbours' traffic never
    // bleeds into another tenant's budget.
    for (i, tenant) in tenants.iter().enumerate() {
        assert_eq!(grants_by_tenant[tenant], 4 + i, "tenant {tenant}");
        let session = pool.get(tenant).unwrap();
        assert!((session.total_spent() - 0.25 * (4 + i) as f64).abs() < 1e-9);
        assert_eq!(session.remaining_budget(), Some(0.0));
    }
    let verdict = pool.verify_all_ledgers();
    assert!(verdict.all_upheld());
    assert!((verdict.parallel_epsilon - 0.25 * 7.0).abs() < 1e-9, "max tenant, not the sum");
    assert!((pool.parallel_composed_epsilon() - 0.25 * 7.0).abs() < 1e-9);
    assert!((pool.total_spent() - 0.25 * (4 + 5 + 6 + 7) as f64).abs() < 1e-9);
}

/// A backend wrapper counting every scan (the exactly-once probe).
struct CountingBackend {
    inner: RowBackend<Record>,
    scans: AtomicUsize,
}

impl Backend<Record> for CountingBackend {
    fn name(&self) -> &'static str {
        "counting"
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn scan(&self, plan: &QueryPlan<Record>) -> Result<HistogramPair, OsdpError> {
        self.scans.fetch_add(1, Ordering::SeqCst);
        self.inner.scan(plan)
    }
    fn database(&self) -> Option<&Database<Record>> {
        self.inner.database()
    }
}

#[test]
fn racing_task_derivations_scan_exactly_once() {
    let db: Database<Record> =
        (0..500).map(|i| Record::builder().field("v", Value::Int(i % 100)).build()).collect();
    let backend =
        Arc::new(CountingBackend { inner: RowBackend::new(db), scans: AtomicUsize::new(0) });
    let session = Arc::new(
        SessionBuilder::with_backend(Arc::clone(&backend) as Arc<dyn Backend<Record>>)
            .policy(AttributePolicy::int_at_most("v", 49), "lower-half")
            .seed(17)
            .build()
            .unwrap(),
    );
    // One shared query value (one closure identity): every thread asks the
    // same question at the same time.
    let query = Arc::new(SessionQuery::count_by_int_linear("deciles", "v", 0, 10, 10));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let session = Arc::clone(&session);
            let query = Arc::clone(&query);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                session.derive_task(&query).unwrap()
            })
        })
        .collect();
    let tasks: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(tasks.windows(2).all(|w| w[0] == w[1]), "all threads see one task");
    assert_eq!(
        backend.scans.load(Ordering::SeqCst),
        1,
        "the sharded cache must derive a racing key exactly once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fixed-point invariant under the whole design: the admitted spend
    /// total is a sum of integers, so it is identical whether the same
    /// grants land serially, in reverse, or race from [`THREADS`] threads.
    #[test]
    fn spend_totals_are_independent_of_interleaving_order(
        epsilons in prop::collection::vec(0.001f64..3.0, 1..24),
    ) {
        let spend_all = |acc: &BudgetAccountant, eps: &[f64]| {
            for &e in eps {
                acc.spend("m", "P", e, PrivacyGuarantee::OneSided).unwrap();
            }
        };
        let forward = BudgetAccountant::unlimited();
        spend_all(&forward, &epsilons);
        let reversed: Vec<f64> = epsilons.iter().rev().copied().collect();
        let backward = BudgetAccountant::unlimited();
        spend_all(&backward, &reversed);

        let racing = Arc::new(BudgetAccountant::unlimited());
        let chunks: Vec<Vec<f64>> =
            epsilons.chunks(epsilons.len().div_ceil(THREADS)).map(<[f64]>::to_vec).collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let racing = Arc::clone(&racing);
                thread::spawn(move || {
                    for &e in &chunk {
                        racing.spend("m", "P", e, PrivacyGuarantee::OneSided).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        prop_assert_eq!(forward.total_spent_units(), backward.total_spent_units());
        prop_assert_eq!(forward.total_spent_units(), racing.total_spent_units());
        // The f64 views agree bit-for-bit too, because they are derived
        // from the same integer.
        prop_assert_eq!(forward.total_spent(), racing.total_spent());
        prop_assert_eq!(forward.ledger().len(), epsilons.len());
    }
}
