//! Integration tests of the privacy guarantees themselves, spanning
//! `osdp-core`, `osdp-mechanisms`, `osdp-noise` and `osdp-attack`.

use osdp::attack::{
    exclusion_attack_phi, verify_osdp_on_singletons, OsdpRrModel, SuppressModel, TruthfulModel,
};
use osdp::core::neighbors::{is_one_sided_neighbor, one_sided_neighbors};
use osdp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn value_policy() -> ClosurePolicy<u32> {
    ClosurePolicy::new("upper-half-sensitive", |&v: &u32| v >= 4)
}

/// Exact output probabilities of OsdpRR on a small database, computed
/// analytically (per-record independence).
fn osdp_rr_output_probability(db: &[u32], released: &[Option<u32>], epsilon: f64) -> f64 {
    let policy = value_policy();
    let keep = 1.0 - (-epsilon).exp();
    db.iter()
        .zip(released)
        .map(|(&value, release)| match release {
            Some(out) => {
                if policy.is_non_sensitive(&value) && *out == value {
                    keep
                } else {
                    0.0
                }
            }
            None => {
                if policy.is_non_sensitive(&value) {
                    1.0 - keep
                } else {
                    1.0
                }
            }
        })
        .product()
}

#[test]
fn osdp_rr_satisfies_the_definition_over_enumerated_neighbors() {
    // Definition 3.3, checked by brute force on databases of size 3 over the
    // domain {0..8}: for every one-sided neighbor and every output, the
    // probability ratio is bounded by e^eps.
    let epsilon = 0.8;
    let policy = value_policy();
    let universe: Vec<u32> = (0..8).collect();
    let db: Database<u32> = vec![1u32, 6, 3].into_iter().collect();

    // Enumerate all outputs: each position is either suppressed or released
    // with its own value.
    let outputs: Vec<Vec<Option<u32>>> = (0..(1 << db.len()))
        .map(|mask| {
            (0..db.len())
                .map(|i| if mask & (1 << i) != 0 { Some(*db.get(i).unwrap()) } else { None })
                .collect()
        })
        .collect();

    let neighbors = one_sided_neighbors(&db, &universe, &policy);
    assert!(!neighbors.is_empty());
    for neighbor in &neighbors {
        assert!(is_one_sided_neighbor(&db, neighbor, &policy));
        for output in &outputs {
            // The output must name the *original* values where released; for
            // the neighbor the released value constraint applies to its own
            // records, so recompute with the neighbor's records.
            let p_db = osdp_rr_output_probability(db.records(), output, epsilon);
            let p_neighbor = osdp_rr_output_probability(neighbor.records(), output, epsilon);
            if p_db > 0.0 {
                assert!(
                    p_db <= epsilon.exp() * p_neighbor + 1e-12,
                    "ratio violated: {p_db} vs {p_neighbor} for output {output:?}"
                );
            }
        }
    }
}

#[test]
fn one_sided_laplace_density_ratio_proves_theorem_5_2() {
    // The core inequality of Theorem 5.2: for neighboring non-sensitive
    // histograms (x_ns dominated by x'_ns, L1 distance <= 1) the density
    // ratio of the one-sided mechanism is bounded by e^eps.
    let epsilon = 0.5;
    let noise = OneSidedLaplace::for_epsilon(epsilon).unwrap();
    let x = 10.0; // a non-sensitive count
    let x_prime = 11.0; // the same count in a one-sided neighbor
    for y in [0.0, 3.0, 9.99, 5.0] {
        let p = noise.pdf(y - x);
        let p_prime = noise.pdf(y - x_prime);
        if p > 0.0 {
            assert!(p <= epsilon.exp() * p_prime + 1e-12);
        }
    }
    // Outputs only possible under the neighbor (case 1 of the proof) are fine:
    // the inequality is on Pr[M(D)], which is 0 there.
    assert_eq!(noise.pdf(10.5 - x), 0.0);
}

#[test]
fn composition_of_osdp_mechanisms_is_tracked_with_minimum_relaxation() {
    // Dyadic epsilons: exact at the accountant's fixed-point resolution, so
    // they cover the cap exactly even under ceiling rounding.
    let accountant = BudgetAccountant::with_limit(1.0).unwrap();
    accountant.spend("OsdpRR", "P_minors", 0.375, PrivacyGuarantee::OneSided).unwrap();
    accountant.spend("OsdpLaplaceL1", "P_optout", 0.625, PrivacyGuarantee::OneSided).unwrap();
    let (eps, policies) = accountant.composed_guarantee();
    assert!((eps - 1.0).abs() < 1e-12);
    assert_eq!(policies, vec!["P_minors".to_string(), "P_optout".to_string()]);
    assert!(accountant.spend("extra", "P_minors", 0.2, PrivacyGuarantee::OneSided).is_err());

    // The actual minimum-relaxation policy object behaves as Definition 3.6
    // dictates.
    let minors = AttributePolicy::sensitive_when("age", |v| v.as_int().unwrap_or(99) <= 17);
    let optout = AttributePolicy::opt_in("opt_in");
    let pmr = MinimumRelaxation::of_two(minors, optout);
    let both = Record::builder().field("age", 10i64).field("opt_in", false).build();
    let only_minor = Record::builder().field("age", 10i64).field("opt_in", true).build();
    assert!(pmr.is_sensitive(&both));
    assert!(pmr.is_non_sensitive(&only_minor));
}

#[test]
fn exclusion_attack_ordering_matches_the_paper() {
    // phi(OsdpRR at eps) = eps << phi(Suppress tau) = tau << phi(truthful) = inf.
    let policy = value_policy();
    let eps = 1.0;
    let phi_rr = exclusion_attack_phi(&OsdpRrModel { epsilon: eps }, &policy, 8);
    let phi_suppress = exclusion_attack_phi(&SuppressModel { tau: 10.0 }, &policy, 8);
    let phi_truthful = exclusion_attack_phi(&TruthfulModel, &policy, 8);
    assert!(phi_rr < phi_suppress);
    assert!(phi_suppress.is_finite());
    assert!(phi_truthful.is_infinite());

    // And the OSDP checker agrees with the nominal budgets.
    assert!(verify_osdp_on_singletons(&OsdpRrModel { epsilon: eps }, &policy, 8).satisfies(eps));
    assert!(!verify_osdp_on_singletons(&SuppressModel { tau: 10.0 }, &policy, 8).satisfies(eps));
}

#[test]
fn dp_mechanisms_ignore_the_policy_split_and_osdp_mechanisms_use_it() {
    let mut rng = ChaCha12Rng::seed_from_u64(5);
    let full = Histogram::from_counts(vec![40.0, 10.0, 0.0, 25.0]);
    let derive = |non_sensitive: Histogram| {
        histogram_session(full.clone(), non_sensitive)
            .build()
            .unwrap()
            .derive_task(&SessionQuery::bound())
            .unwrap()
    };
    let all_ns = derive(full.clone());
    let all_sens = derive(Histogram::zeros(full.len()));

    // Identical seeds: the DP Laplace release must not change with the policy.
    let dp = DpLaplaceHistogram::new(1.0).unwrap();
    let a = dp.release(&all_ns, &mut ChaCha12Rng::seed_from_u64(9));
    let b = dp.release(&all_sens, &mut ChaCha12Rng::seed_from_u64(9));
    assert_eq!(a, b);

    // The one-sided mechanism collapses to zero when everything is sensitive.
    let osdp = OsdpLaplaceL1::new(1.0).unwrap();
    let est = osdp.release(&all_sens, &mut rng);
    assert_eq!(est.counts(), &[0.0, 0.0, 0.0, 0.0]);
}
