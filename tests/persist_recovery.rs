//! Crash-recovery tests for the durable budget plane.
//!
//! Every test drives a real on-disk WAL shard (under the OS temp dir) and
//! checks the recovery contract end to end:
//!
//! * **bit-for-bit counters** — a recovered accountant's fixed-point spent
//!   total equals an *independent* read of the durable ledger
//!   (`TenantLedger::peek`), and equals the recovered audit log's ε-unit
//!   total, so `verify_ledger` balances over the recovered state;
//! * **prefix-closed loss** — crashing a writer (torn tail, unflushed
//!   buffer) loses at most the un-synced suffix, and only in the safe
//!   direction: the recovered total never exceeds what was admitted, and a
//!   rehammered session still stops at **exactly** the cap;
//! * **fast-path parity** — a durable session with the same seed produces
//!   bitwise-identical estimates to a plain in-memory session, and a
//!   restarted durable session resumes the exact release-index sequence of
//!   an uninterrupted one.

use osdp::attack::verify_ledger;
use osdp::persist::{force_unlock, TenantLedger};
use osdp::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

/// Serving threads for the crash-hammer tests — above the dev container's
/// core count so schedules interleave even on one core.
const THREADS: usize = 8;

/// A fresh, empty scratch directory under the OS temp dir.
fn temp_root(name: &str) -> PathBuf {
    static UNIQUE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "osdp-recovery-{}-{}-{name}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A histogram-backed session builder; ε debits of 1/8 divide the caps used
/// below exactly, so full exhaustion hits the fixed-point cap bit for bit.
fn builder(budget: f64, seed: u64) -> SessionBuilder<Record> {
    let full = Histogram::from_counts(vec![40.0, 10.0, 25.0, 25.0]);
    let ns = Histogram::from_counts(vec![30.0, 10.0, 0.0, 20.0]);
    let mut b = histogram_session(full, ns).policy_label("P-durable").seed(seed);
    if budget > 0.0 {
        b = b.budget(budget);
    }
    b
}

/// Releases until the budget refuses, returning (grants, refusals).
fn drain(session: &OsdpSession, eps: f64, attempts: usize) -> (usize, usize) {
    let mechanism = OsdpLaplaceL1::new(eps).unwrap();
    let mut grants = 0;
    let mut refusals = 0;
    for _ in 0..attempts {
        match session.release(&SessionQuery::bound(), &mechanism) {
            Ok(_) => grants += 1,
            Err(OsdpError::BudgetExhausted { .. }) => refusals += 1,
            Err(other) => panic!("unexpected release error: {other}"),
        }
    }
    (grants, refusals)
}

/// Hammers one session from [`THREADS`] threads, all starting together.
fn hammer(session: &Arc<OsdpSession>, eps: f64, per_thread: usize) -> (usize, usize) {
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let session = Arc::clone(session);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                drain(&session, eps, per_thread)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).fold((0, 0), |(g, r), (tg, tr)| (g + tg, r + tr))
}

#[test]
fn durable_sessions_resume_exactly_after_clean_shutdown() {
    let root = temp_root("clean");
    let dir = root.join("tenant");
    let m = OsdpLaplaceL1::new(0.25).unwrap();

    // Uninterrupted oracle: four releases on one long-lived session.
    let oracle = builder(2.0, 7).build().unwrap();
    let oracle_estimates: Vec<_> =
        (0..4).map(|_| oracle.release(&SessionQuery::bound(), &m).unwrap().estimate).collect();

    // Durable run: two releases, clean drop (flush-on-drop), restart.
    let first = builder(2.0, 7)
        .durable(SessionPersistence::open(&dir, SyncPolicy::Always).unwrap())
        .build()
        .unwrap();
    let mut estimates: Vec<_> =
        (0..2).map(|_| first.release(&SessionQuery::bound(), &m).unwrap().estimate).collect();
    let spent_units = first.accountant().total_spent_units();
    drop(first);

    let persistence = SessionPersistence::open(&dir, SyncPolicy::Always).unwrap();
    let recovered = persistence.recovered();
    assert!(!recovered.is_fresh());
    assert_eq!(recovered.spent_units, spent_units);
    assert_eq!(recovered.grants, 2);
    assert_eq!(recovered.truncated_bytes, 0);
    assert!(!recovered.degraded);

    let second = builder(2.0, 7).durable(persistence).build().unwrap();
    assert_eq!(second.accountant().total_spent_units(), spent_units);
    assert_eq!(second.total_spent(), 0.5);
    assert_eq!(second.remaining_budget(), Some(1.5));
    estimates.extend((0..2).map(|_| second.release(&SessionQuery::bound(), &m).unwrap().estimate));

    // Recovery resumed the release-index sequence, so the post-restart
    // samples are bitwise the uninterrupted session's third and fourth.
    assert_eq!(estimates, oracle_estimates);
    assert_eq!(second.audit_log().total_epsilon_units(), second.accountant().total_spent_units());
    assert!(verify_ledger(&second.audit_ledger(), Some(2.0)).upholds_osdp());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn plain_and_durable_sessions_are_bitwise_identical() {
    let root = temp_root("parity");
    let plain = builder(2.0, 41).build().unwrap();
    let durable = builder(2.0, 41)
        .durable(SessionPersistence::open(root.join("tenant"), SyncPolicy::Always).unwrap())
        .build()
        .unwrap();

    for eps in [0.25, 0.125, 0.5] {
        let m = OsdpLaplaceL1::new(eps).unwrap();
        let a = plain.release(&SessionQuery::bound(), &m).unwrap();
        let b = durable.release(&SessionQuery::bound(), &m).unwrap();
        assert_eq!(a.estimate, b.estimate, "durable overlay must not perturb sampling");
        assert_eq!(a.index, b.index);
    }
    assert_eq!(plain.total_spent(), durable.total_spent());
    assert_eq!(plain.audit_log().records(), durable.audit_log().records());
    assert_eq!(plain.audit_ledger(), durable.audit_ledger());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn refusals_and_snapshots_survive_restart() {
    let root = temp_root("snapshot");
    let dir = root.join("tenant");
    let session = builder(0.5, 3)
        .durable(SessionPersistence::open(&dir, SyncPolicy::Always).unwrap())
        .build()
        .unwrap();
    let (grants, refusals) = drain(&session, 0.25, 4);
    assert_eq!((grants, refusals), (2, 2));
    let spent_units = session.accountant().total_spent_units();

    // Collapse the history into a snapshot generation, then drop.
    session.persistence().unwrap().snapshot().unwrap();
    drop(session);

    let persistence = SessionPersistence::open(&dir, SyncPolicy::Always).unwrap();
    let recovered = persistence.recovered();
    assert_eq!(recovered.spent_units, spent_units);
    assert_eq!(recovered.grants, 2);
    assert_eq!(recovered.refusals, 2);
    // The tail was collapsed into the snapshot: recovery is O(rows), and the
    // base surfaces as aggregate "[recovered]" ledger entries.
    assert!(recovered.tail.is_empty());
    assert!(recovered.base_entries.iter().all(|e| e.label.contains("[recovered")));

    let session = builder(0.5, 3).durable(persistence).build().unwrap();
    assert_eq!(session.accountant().total_spent_units(), spent_units);
    assert_eq!(session.remaining_budget(), Some(0.0));
    // Still exhausted after recovery: the cap holds across restarts.
    assert!(matches!(
        session.release(&SessionQuery::bound(), &OsdpLaplaceL1::new(0.25).unwrap()),
        Err(OsdpError::BudgetExhausted { .. })
    ));
    assert!(verify_ledger(&session.audit_ledger(), Some(0.5)).upholds_osdp());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_second_writer_is_refused_until_force_unlock() {
    let root = temp_root("lock");
    let dir = root.join("tenant");
    let first = SessionPersistence::open(&dir, SyncPolicy::OnDrop).unwrap();
    assert!(SessionPersistence::open(&dir, SyncPolicy::OnDrop).is_err());
    drop(first); // clean drop releases the lock
    let again = SessionPersistence::open(&dir, SyncPolicy::OnDrop).unwrap();
    // A crashed writer leaks the lock by design; force_unlock clears it.
    again.wal().crash(0.0).unwrap();
    drop(again);
    assert!(SessionPersistence::open(&dir, SyncPolicy::OnDrop).is_err());
    assert!(force_unlock(&dir).unwrap());
    SessionPersistence::open(&dir, SyncPolicy::OnDrop).unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

/// The restart-mid-hammer ground truth: 8 threads hammer a durable pool,
/// every writer is crashed without flushing (varying torn-tail fractions),
/// the pool is reopened, and the recovered ledgers must balance — with the
/// recovered spend exactly equal to an independent read of the durable log,
/// and a re-hammer stopping at exactly the cap.
#[test]
fn crashed_pool_recovers_balanced_and_rehammers_to_the_exact_cap() {
    let root = temp_root("crash-hammer");
    let tenants = ["acme", "globex", "initech"];
    let crash_fractions = [0.0, 0.3, 0.7];
    let cap = 1.0;
    let eps = 0.125; // exactly representable: 8 grants hit the cap bit-for-bit

    let pool: SessionPool<Record> = SessionPool::open(&root, SyncPolicy::EveryN(3)).unwrap();
    for (tenant, seed) in tenants.iter().zip(1u64..) {
        let session = pool.open_tenant(tenant, || builder(cap, seed)).unwrap();
        let (grants, refusals) = hammer(&session, eps, 4);
        assert_eq!(grants, 8, "{tenant}: 8 × 0.125 fills the 1.0 cap");
        assert_eq!(refusals, THREADS * 4 - 8);
    }
    // Crash every writer mid-flight: pending frames die (a fraction survives
    // as a torn tail), nothing further is flushed, locks leak.
    for (tenant, fraction) in tenants.iter().zip(crash_fractions) {
        pool.get(tenant).unwrap().persistence().unwrap().crash(fraction).unwrap();
    }
    drop(pool);

    for tenant in tenants {
        assert!(force_unlock(root.join(format!("tenant-{tenant}"))).unwrap());
    }
    let recovered: SessionPool<Record> =
        SessionPool::recover(&root, SyncPolicy::EveryN(3), |_| builder(cap, 99)).unwrap();
    assert_eq!(
        recovered.tenants(),
        tenants.iter().map(|t| Arc::from(*t)).collect::<Vec<Arc<str>>>()
    );
    assert_eq!(
        recovered.persisted_tenants().unwrap(),
        tenants.iter().map(|t| t.to_string()).collect::<Vec<_>>()
    );

    let cap_units = epsilon_to_units(cap);
    for tenant in tenants {
        let session = recovered.get(tenant).unwrap();
        // Bit-for-bit: the live accountant equals an independent read of the
        // durable log, and the audit log agrees with both.
        let peek = TenantLedger::peek(root.join(format!("tenant-{tenant}"))).unwrap();
        assert_eq!(
            session.accountant().total_spent_units(),
            peek.spent_units(),
            "{tenant}: recovered accountant must equal the durable log"
        );
        assert_eq!(
            session.audit_log().total_epsilon_units(),
            session.accountant().total_spent_units(),
            "{tenant}: audit and accountant must agree after recovery"
        );
        // Crash loss is prefix-closed and one-sided: never more than was
        // admitted, always a multiple of the per-grant debit.
        let spent = session.accountant().total_spent_units();
        assert!(spent <= cap_units, "{tenant}: recovery must never overspend");
        assert_eq!(spent % epsilon_to_units(eps), 0);

        // Rehammer: the recovered session must stop at exactly the cap.
        hammer(&session, eps, 4);
        assert_eq!(
            session.accountant().total_spent_units(),
            cap_units,
            "{tenant}: grants must sum to the cap exactly after re-hammering"
        );
        assert_eq!(session.remaining_budget(), Some(0.0));
    }
    let verdict = recovered.verify_all_ledgers();
    assert!(verdict.all_upheld(), "violations: {:?}", verdict.violating_tenants());
    assert_eq!(verdict.parallel_epsilon, cap);

    // The post-rehammer state is durable too: sync, reopen, same counters.
    recovered.sync_all().unwrap();
    drop(recovered);
    let reopened: SessionPool<Record> =
        SessionPool::recover(&root, SyncPolicy::EveryN(3), |_| builder(cap, 99)).unwrap();
    for tenant in tenants {
        assert_eq!(reopened.get(tenant).unwrap().accountant().total_spent_units(), cap_units);
    }
    assert!(reopened.verify_all_ledgers().all_upheld());
    let _ = std::fs::remove_dir_all(&root);
}

/// Group commit under full concurrency is `Always`-grade: 8 threads hammer
/// a GroupCommit pool to the exact cap, every writer is crashed with nothing
/// buffered, and recovery is bit-for-bit — accountant == audit == an
/// independent `TenantLedger::peek` of the shard, at exactly the cap.
#[test]
fn group_commit_hammer_recovers_bit_for_bit_at_the_exact_cap() {
    let root = temp_root("group-hammer");
    let tenants = ["acme", "globex"];
    let cap = 1.0;
    let eps = 0.125;

    let pool: SessionPool<Record> = SessionPool::open(&root, SyncPolicy::group_commit()).unwrap();
    for (tenant, seed) in tenants.iter().zip(1u64..) {
        let session = pool.open_tenant(tenant, || builder(cap, seed)).unwrap();
        let (grants, _) = hammer(&session, eps, 4);
        assert_eq!(grants, 8, "{tenant}: 8 × 0.125 fills the 1.0 cap");
        let stats = session.persistence().unwrap().group_commit_stats();
        // Quiescent: every submitted frame is at or below the watermark.
        assert_eq!(stats.durable_frames, stats.submitted_frames);
        assert!(stats.batches >= 1 && stats.largest_batch >= 1);
        // 8 grants + the refusals that were logged.
        assert!(stats.durable_frames >= 8);
    }
    // Crash every writer: under group commit nothing is buffered (every
    // returned append was fsync'd), so zero grants may be lost.
    for tenant in tenants {
        pool.get(tenant).unwrap().persistence().unwrap().crash(0.0).unwrap();
    }
    drop(pool);

    let cap_units = epsilon_to_units(cap);
    for tenant in tenants {
        let shard = root.join(format!("tenant-{tenant}"));
        assert!(force_unlock(&shard).unwrap());
        let peek = TenantLedger::peek(&shard).unwrap();
        assert_eq!(peek.spent_units(), cap_units, "{tenant}: no returned grant may be lost");
        assert_eq!(peek.truncated_bytes, 0);
    }
    let recovered: SessionPool<Record> =
        SessionPool::recover(&root, SyncPolicy::group_commit(), |_| builder(cap, 99)).unwrap();
    for tenant in tenants {
        let session = recovered.get(tenant).unwrap();
        assert_eq!(session.accountant().total_spent_units(), cap_units);
        assert_eq!(session.audit_log().total_epsilon_units(), cap_units);
        assert_eq!(session.remaining_budget(), Some(0.0));
    }
    assert!(recovered.verify_all_ledgers().all_upheld());
    let _ = std::fs::remove_dir_all(&root);
}

/// Crashing a group-commit writer **mid-batch**, with appends in flight on
/// 8 threads: every grant whose release call returned must be durable, the
/// torn batch tail truncates to whole frames, and recovery never exceeds
/// what the accountant admitted.
#[test]
fn group_commit_crash_mid_batch_loses_only_unacknowledged_grants() {
    let root = temp_root("group-midbatch");
    let dir = root.join("tenant");
    let cap = 16.0; // roomy: the crash interrupts the hammer, not the cap
    let eps = 0.125;
    let sync =
        SyncPolicy::GroupCommit { max_batch: 8, max_wait: std::time::Duration::from_micros(200) };

    let session = Arc::new(
        builder(cap, 21).durable(SessionPersistence::open(&dir, sync).unwrap()).build().unwrap(),
    );
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let session = Arc::clone(&session);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mechanism = OsdpLaplaceL1::new(eps).unwrap();
                barrier.wait();
                let mut ok = 0u64;
                loop {
                    match session.release(&SessionQuery::bound(), &mechanism) {
                        Ok(_) => ok += 1,
                        // The crash severed the batch under this append
                        // (typed persistence error, or the legacy string
                        // form from layers above the WAL).
                        Err(OsdpError::Persist(_)) | Err(OsdpError::Persistence(_)) => break,
                        Err(OsdpError::BudgetExhausted { .. }) => break,
                        Err(other) => panic!("unexpected release error: {other}"),
                    }
                }
                ok
            })
        })
        .collect();
    barrier.wait();
    // Let the hammer run mid-flight, then sever the committer mid-batch:
    // queued-but-unacknowledged frames become a torn tail (60% of bytes).
    thread::sleep(std::time::Duration::from_millis(30));
    session.persistence().unwrap().crash(0.6).unwrap();
    let acknowledged: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let admitted_units = session.accountant().total_spent_units();
    drop(session);

    let grant_units = epsilon_to_units(eps);
    assert!(force_unlock(&dir).unwrap());
    let peek = TenantLedger::peek(&dir).unwrap();
    // Always-grade floor: every acknowledged grant survived the crash.
    assert!(
        peek.spent_units() >= acknowledged * grant_units,
        "durable {} < acknowledged {}",
        peek.spent_units(),
        acknowledged * grant_units
    );
    // Conservative ceiling: recovery never invents spend beyond what the
    // accountant admitted (in-flight debits included).
    assert!(peek.spent_units() <= admitted_units);
    // The torn batch tail truncated to whole frames: the durable total is
    // an exact multiple of the per-grant debit.
    assert_eq!(peek.spent_units() % grant_units, 0);

    // The recovered session still stops at exactly the cap.
    let recovered = SessionPersistence::open(&dir, sync).unwrap();
    assert_eq!(recovered.recovered().spent_units, peek.spent_units());
    let session = Arc::new(builder(cap, 21).durable(recovered).build().unwrap());
    assert_eq!(session.audit_log().total_epsilon_units(), peek.spent_units());
    hammer(&session, eps, 24);
    assert_eq!(session.accountant().total_spent_units(), epsilon_to_units(cap));
    assert!(verify_ledger(&session.audit_ledger(), Some(cap)).upholds_osdp());
    let _ = std::fs::remove_dir_all(&root);
}

/// One failing shard must not shadow the rest of a pool maintenance sweep:
/// `sync_all` / `snapshot_all` visit every tenant and report the failures
/// by key.
#[test]
fn pool_maintenance_sweeps_report_per_tenant_failures() {
    let root = temp_root("maintenance");
    let tenants = ["acme", "globex", "initech"];
    let pool: SessionPool<Record> = SessionPool::open(&root, SyncPolicy::Always).unwrap();
    for (tenant, seed) in tenants.iter().zip(1u64..) {
        let session = pool.open_tenant(tenant, || builder(1.0, seed)).unwrap();
        drain(&session, 0.25, 2);
    }
    pool.sync_all().unwrap();
    pool.snapshot_all().unwrap();

    // Crash one shard; the sweeps still run the other two and name the
    // failing tenant precisely.
    pool.get("globex").unwrap().persistence().unwrap().crash(0.0).unwrap();
    let err = pool.sync_all().unwrap_err();
    assert_eq!(err.operation, "sync_all");
    assert_eq!(err.tenants(), vec![Arc::<str>::from("globex")]);
    assert!(err.to_string().contains("globex"), "display names the tenant: {err}");
    let err = pool.snapshot_all().unwrap_err();
    assert_eq!(err.operation, "snapshot_all");
    assert_eq!(err.tenants(), vec![Arc::<str>::from("globex")]);
    // The healthy tenants were synced despite the failure: their shards
    // reopen with the full history after an unclean stop.
    drop(pool);
    for tenant in ["acme", "initech"] {
        let peek = TenantLedger::peek(root.join(format!("tenant-{tenant}"))).unwrap();
        assert_eq!(peek.spent_units(), epsilon_to_units(0.5), "{tenant} survived the sweep");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn recovery_is_idempotent_without_new_writes() {
    let root = temp_root("idempotent");
    let dir = root.join("tenant");
    let session = builder(2.0, 11)
        .durable(SessionPersistence::open(&dir, SyncPolicy::Always).unwrap())
        .build()
        .unwrap();
    drain(&session, 0.25, 3);
    let spent_units = session.accountant().total_spent_units();
    drop(session);

    for _ in 0..3 {
        let persistence = SessionPersistence::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(persistence.recovered().spent_units, spent_units);
        let session = builder(2.0, 11).durable(persistence).build().unwrap();
        assert_eq!(session.accountant().total_spent_units(), spent_units);
        assert_eq!(
            session.audit_log().total_epsilon_units(),
            spent_units,
            "recovering with zero new writes must be a fixed point"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any grant sequence, under **any of the four sync policies**, crashed
    /// at any point, recovers to a state where the audit total equals the
    /// accountant total (both in exact ε units), never exceeds the cap, and
    /// recovering again without writes changes nothing.
    #[test]
    fn recovery_is_prefix_closed_and_never_overspends(
        epsilons in prop::collection::vec(0.001f64..3.0, 1..24),
        keep in 0.0f64..1.0,
        policy_idx in 0usize..4,
    ) {
        let policy = [
            SyncPolicy::OnDrop,
            SyncPolicy::EveryN(2),
            SyncPolicy::Always,
            SyncPolicy::GroupCommit {
                max_batch: 4,
                max_wait: std::time::Duration::from_micros(100),
            },
        ][policy_idx];
        let root = temp_root("prop");
        let dir = root.join("tenant");
        let cap = 4.0;

        let session = builder(cap, 5)
            .durable(SessionPersistence::open(&dir, policy).unwrap())
            .build()
            .unwrap();
        for &eps in &epsilons {
            let mechanism = OsdpLaplaceL1::new(eps).unwrap();
            match session.release(&SessionQuery::bound(), &mechanism) {
                Ok(_) | Err(OsdpError::BudgetExhausted { .. }) => {}
                Err(other) => panic!("unexpected release error: {other}"),
            }
        }
        let live_units = session.accountant().total_spent_units();
        session.persistence().unwrap().crash(keep).unwrap();
        drop(session);

        prop_assert!(force_unlock(&dir).unwrap());
        let persistence = SessionPersistence::open(&dir, policy).unwrap();
        let recovered_units = persistence.recovered().spent_units;
        // Loss is one-sided: recovery never invents spend.
        prop_assert!(recovered_units <= live_units);
        prop_assert!(recovered_units <= epsilon_to_units(cap));
        let session = builder(cap, 5).durable(persistence).build().unwrap();
        prop_assert_eq!(session.accountant().total_spent_units(), recovered_units);
        prop_assert_eq!(session.audit_log().total_epsilon_units(), recovered_units);
        prop_assert!(verify_ledger(&session.audit_ledger(), Some(cap)).upholds_osdp());
        drop(session);

        // Idempotent: a second recovery with no writes is a fixed point.
        let again = SessionPersistence::open(&dir, policy).unwrap();
        prop_assert_eq!(again.recovered().spent_units, recovered_units);
        let _ = std::fs::remove_dir_all(&root);
    }
}
