//! Parity suite for the zero-allocation release plane.
//!
//! The buffer-reuse paths (`HistogramMechanism::release_into`, the arena
//! trial batches, `OsdpSession::release_pool`) are pure mechanical
//! optimizations: their outputs must be **bitwise identical** to the scalar
//! reference paths, which stay in the codebase as oracles. This suite
//! property-tests that contract across all 8 mechanisms of the paper's pool,
//! and probes the one-scan guarantee of `release_pool` with a counting
//! backend.

use osdp::prelude::*;
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The full 8-mechanism pool: 5 OSDP mechanisms, 2 DP baselines, 1 PDP
/// baseline — every registered `HistogramMechanism` of the workspace.
fn full_pool(eps: f64) -> Vec<Box<dyn HistogramMechanism>> {
    pool_from_names(
        &[
            "OsdpRR",
            "OsdpLaplace",
            "OsdpLaplaceL1",
            "Hybrid",
            "DAWAz",
            "Laplace",
            "DAWA",
            "Suppress100",
        ],
        eps,
    )
    .expect("registry pool")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `release_into` == `release` bitwise, for every mechanism, across
    /// random tasks, seeds and budgets — including identical RNG stream
    /// consumption (checked through the residual RNG state).
    #[test]
    fn release_into_matches_release_bitwise_for_all_mechanisms(
        spec in prop::collection::vec((0u32..400, 0.0f64..=1.0), 1..24),
        seed in 0u64..1_000_000_000,
        eps in 0.05f64..2.0,
    ) {
        let full: Vec<f64> = spec.iter().map(|&(c, _)| c as f64).collect();
        let ns: Vec<f64> = spec.iter().map(|&(c, f)| (c as f64 * f).floor()).collect();
        let task = HistogramTask::new(
            Histogram::from_counts(full),
            Histogram::from_counts(ns),
        ).expect("ns dominated by full by construction");

        // One output buffer reused across every mechanism: release_into must
        // resize and fully overwrite it each time.
        let mut out = Histogram::zeros(0);
        for mechanism in full_pool(eps) {
            let mut reference_rng = ChaCha12Rng::seed_from_u64(seed);
            let reference = mechanism.release(&task, &mut reference_rng);
            let mut reuse_rng = ChaCha12Rng::seed_from_u64(seed);
            mechanism.release_into(&task, &mut reuse_rng, &mut out);

            prop_assert_eq!(reference.len(), out.len(), "{}", mechanism.name());
            for (bin, (a, b)) in reference.counts().iter().zip(out.counts()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} drifted at bin {}: {} vs {}",
                    mechanism.name(), bin, a, b
                );
            }
            prop_assert_eq!(
                reference_rng.next_u64(),
                reuse_rng.next_u64(),
                "{} consumed a different number of draws",
                mechanism.name()
            );
        }
    }

    /// The arena-based parallel trial batch reproduces the serial scalar
    /// loop bitwise for every mechanism (same seeds, fresh sessions).
    #[test]
    fn parallel_trials_match_the_serial_oracle(
        seed in 0u64..1_000_000_000,
        trials in 1usize..5,
    ) {
        let full = Histogram::from_counts(vec![120.0, 0.0, 37.0, 4.0, 880.0, 55.0, 0.0, 9.0]);
        let ns = Histogram::from_counts(vec![100.0, 0.0, 30.0, 0.0, 600.0, 55.0, 0.0, 3.0]);
        let session = |s: u64| {
            histogram_session(full.clone(), ns.clone()).seed(s).build().expect("valid pair")
        };
        for mechanism in full_pool(1.0) {
            let parallel = session(seed)
                .release_trials(&SessionQuery::bound(), &mechanism, trials)
                .expect("uncapped");
            let serial = session(seed)
                .release_trials_serial(&SessionQuery::bound(), &mechanism, trials)
                .expect("uncapped");
            prop_assert_eq!(&parallel, &serial, "{} parallel != serial", mechanism.name());
        }
    }
}

/// A backend wrapper counting every scan — the probe behind the
/// one-scan-per-pool guarantee.
struct CountingBackend {
    inner: RowBackend<Record>,
    scans: AtomicUsize,
}

impl Backend<Record> for CountingBackend {
    fn name(&self) -> &'static str {
        "counting"
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn scan(&self, plan: &QueryPlan<Record>) -> Result<HistogramPair, OsdpError> {
        self.scans.fetch_add(1, Ordering::SeqCst);
        self.inner.scan(plan)
    }
    fn database(&self) -> Option<&Database<Record>> {
        self.inner.database()
    }
}

fn counted_session(backend: &Arc<CountingBackend>) -> OsdpSession<Record> {
    SessionBuilder::with_backend(Arc::clone(backend) as Arc<dyn Backend<Record>>)
        .policy(AttributePolicy::int_at_most("v", 49), "lower-half")
        .seed(11)
        .build()
        .expect("valid session")
}

#[test]
fn release_pool_performs_exactly_one_backend_scan() {
    let db: Database<Record> =
        (0..200).map(|i| Record::builder().field("v", Value::Int(i % 100)).build()).collect();
    let backend =
        Arc::new(CountingBackend { inner: RowBackend::new(db), scans: AtomicUsize::new(0) });
    let session = counted_session(&backend);
    let query = SessionQuery::count_by_int_linear("deciles", "v", 0, 10, 10);

    let mechanisms = full_pool(1.0);
    let pool: Vec<&dyn HistogramMechanism> = mechanisms.iter().map(|m| m.as_ref()).collect();
    let releases = session.release_pool(&query, &pool, 3).expect("uncapped");
    assert_eq!(releases.len(), 8);
    assert!(releases.iter().all(|r| r.estimates.len() == 3));
    assert_eq!(
        backend.scans.load(Ordering::SeqCst),
        1,
        "an 8-mechanism pool batch must scan exactly once"
    );

    // A second pool batch over the same query: served from the task cache.
    session.release_pool(&query, &pool, 2).expect("uncapped");
    assert_eq!(backend.scans.load(Ordering::SeqCst), 1, "cache hit, no re-scan");

    // A different query identity does scan again.
    let narrower = SessionQuery::count_by_int_linear("halves", "v", 0, 50, 2);
    session.release_pool(&narrower, &pool, 1).expect("uncapped");
    assert_eq!(backend.scans.load(Ordering::SeqCst), 2);
}

#[test]
fn release_pool_matches_sequential_trials_on_histogram_sessions() {
    let full = Histogram::from_counts(vec![300.0, 12.0, 0.0, 77.0, 4096.0]);
    let ns = Histogram::from_counts(vec![290.0, 0.0, 0.0, 60.0, 4000.0]);
    let mechanisms = full_pool(0.5);
    let pool: Vec<&dyn HistogramMechanism> = mechanisms.iter().map(|m| m.as_ref()).collect();

    let batched = histogram_session(full.clone(), ns.clone()).seed(5).build().unwrap();
    let releases = batched.release_pool(&SessionQuery::bound(), &pool, 4).unwrap();

    let sequential = histogram_session(full, ns).seed(5).build().unwrap();
    for (mechanism, release) in pool.iter().zip(&releases) {
        let expected = sequential.release_trials(&SessionQuery::bound(), mechanism, 4).unwrap();
        assert_eq!(release.estimates, expected, "{}", release.mechanism);
    }
    assert_eq!(batched.total_spent(), sequential.total_spent());
    assert_eq!(batched.audit_ledger(), sequential.audit_ledger());
    assert_eq!(batched.audit_records(), sequential.audit_records());
}
