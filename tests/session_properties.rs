//! Property-based tests (proptest) of `OsdpSession` budget accounting: the
//! session must uphold sequential composition (never over-spend a cap),
//! parallel composition (a disjoint-partition block costs the max branch,
//! Theorem 10.2), and hard refusal after exhaustion.

use osdp::prelude::*;
use proptest::prelude::*;

fn capped_session(limit: f64) -> OsdpSession {
    histogram_session(
        Histogram::from_counts(vec![50.0, 30.0, 20.0, 0.0]),
        Histogram::from_counts(vec![40.0, 10.0, 20.0, 0.0]),
    )
    .policy_label("P-test")
    .budget(limit)
    .seed(99)
    .build()
    .expect("valid capped session")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequential_composition_never_over_spends(
        epsilons in prop::collection::vec(0.01f64..0.6, 1..12),
        limit in 0.5f64..2.0,
    ) {
        let session = capped_session(limit);
        let mut accepted = 0.0;
        let mut accepted_count = 0usize;
        for &eps in &epsilons {
            let mechanism = OsdpLaplaceL1::new(eps).unwrap();
            if session.release(&SessionQuery::bound(), &mechanism).is_ok() {
                accepted += eps;
                accepted_count += 1;
            }
        }
        // The cap is never exceeded, the accountant agrees with what was
        // accepted, and the audit log has exactly one record per grant.
        prop_assert!(session.total_spent() <= limit + 1e-9);
        prop_assert!((session.total_spent() - accepted).abs() < 1e-9);
        prop_assert_eq!(session.audit_records().len(), accepted_count);
        let verdict = osdp::attack::verify_ledger(&session.audit_ledger(), Some(limit));
        prop_assert!(verdict.upholds_osdp());
    }

    #[test]
    fn batched_trials_never_over_spend(
        eps in 0.01f64..0.4,
        trials in 1usize..12,
        limit in 0.5f64..2.0,
    ) {
        let session = capped_session(limit);
        let mechanism = OsdpLaplace::new(eps).unwrap();
        let batch_cost = eps * trials as f64;
        let granted = session
            .release_trials(&SessionQuery::bound(), &mechanism, trials)
            .is_ok();
        // All-or-nothing: either the whole batch fit, or nothing was spent.
        if granted {
            prop_assert!((session.total_spent() - batch_cost).abs() < 1e-9);
            prop_assert!(batch_cost <= limit + 1e-9);
        } else {
            prop_assert_eq!(session.total_spent(), 0.0);
            prop_assert!(batch_cost > limit - 1e-9);
        }
    }

    #[test]
    fn parallel_composition_costs_the_max_branch(
        branches in prop::collection::vec(0.01f64..1.5, 1..8),
    ) {
        // Theorem 10.2: mechanisms over disjoint partitions compose with
        // max(eps_i), not the sum. The session's accountant implements the
        // parallel block; its cost must equal the worst branch exactly.
        let session = histogram_session(
            Histogram::from_counts(vec![10.0, 20.0]),
            Histogram::from_counts(vec![10.0, 0.0]),
        )
        .seed(1)
        .build()
        .unwrap();
        let parts: Vec<(String, f64)> = branches
            .iter()
            .enumerate()
            .map(|(i, &eps)| (format!("partition-{i}"), eps))
            .collect();
        let part_refs: Vec<(&str, &str, f64)> =
            parts.iter().map(|(label, eps)| (label.as_str(), "P-part", *eps)).collect();
        session
            .accountant()
            .spend_parallel("per-partition release", PrivacyGuarantee::ExtendedOneSided, &part_refs)
            .unwrap();
        let max_branch = branches.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!((session.total_spent() - max_branch).abs() < 1e-12);
    }

    #[test]
    fn releases_after_exhaustion_always_error(
        limit in 0.2f64..1.0,
        follow_ups in prop::collection::vec(0.01f64..2.0, 1..6),
    ) {
        // Exhaust the session exactly, then no follow-up of any size may pass.
        let session = capped_session(limit);
        let exhaust = OsdpLaplaceL1::new(limit).unwrap();
        session.release(&SessionQuery::bound(), &exhaust).unwrap();
        prop_assert!(session.remaining_budget().unwrap() < 1e-9);
        for &eps in &follow_ups {
            let mechanism = OsdpLaplaceL1::new(eps).unwrap();
            let err = session.release(&SessionQuery::bound(), &mechanism);
            prop_assert!(matches!(err, Err(OsdpError::BudgetExhausted { .. })));
            let batch = session.release_trials(&SessionQuery::bound(), &mechanism, 3);
            prop_assert!(matches!(batch, Err(OsdpError::BudgetExhausted { .. })));
            let records = SessionBuilder::new((0..10u32).collect::<Database<u32>>())
                .policy(NoneSensitive, "Pnone")
                .budget(limit)
                .build()
                .unwrap();
            // Record sessions behave identically once drained.
            records.accountant().spend("drain", "Pnone", limit, PrivacyGuarantee::OneSided).unwrap();
            prop_assert!(records
                .release_records(&OsdpRr::new(eps).unwrap())
                .is_err());
        }
        // The audit log still only contains the one granted release.
        prop_assert_eq!(session.audit_records().len(), 1);
    }
}
