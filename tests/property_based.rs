//! Property-based tests (proptest) of the core invariants.

use osdp::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Strategy: a histogram with up to 64 bins of bounded non-negative counts.
fn histogram_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0u32..500, 1..64).prop_map(|v| v.into_iter().map(f64::from).collect())
}

/// Strategy: a (full, non-sensitive) pair with the domination invariant.
fn task_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((0u32..500, 0.0f64..=1.0), 1..64).prop_map(|v| {
        let full: Vec<f64> = v.iter().map(|(c, _)| f64::from(*c)).collect();
        let ns: Vec<f64> = v.iter().map(|(c, frac)| (f64::from(*c) * frac).floor()).collect();
        (full, ns)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn osdp_laplace_l1_output_is_non_negative_and_preserves_zero_bins(
        (full, ns) in task_strategy(), seed in 0u64..1000, eps in 0.05f64..4.0
    ) {
        let task = histogram_session(Histogram::from_counts(full), Histogram::from_counts(ns.clone()))
            .build()
            .unwrap()
            .derive_task(&SessionQuery::bound())
            .unwrap();
        let mechanism = OsdpLaplaceL1::new(eps).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let estimate = mechanism.release(&task, &mut rng);
        prop_assert_eq!(estimate.len(), task.bins());
        prop_assert!(estimate.is_non_negative());
        for (i, &count) in ns.iter().enumerate() {
            if count == 0.0 {
                prop_assert_eq!(estimate.get(i), 0.0);
            }
        }
    }

    #[test]
    fn osdp_laplace_never_exceeds_the_non_sensitive_counts(
        (full, ns) in task_strategy(), seed in 0u64..1000
    ) {
        let task = histogram_session(Histogram::from_counts(full), Histogram::from_counts(ns))
            .build()
            .unwrap()
            .derive_task(&SessionQuery::bound())
            .unwrap();
        let mechanism = OsdpLaplace::new(1.0).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let estimate = mechanism.release(&task, &mut rng);
        prop_assert!(estimate.dominated_by(task.non_sensitive()).unwrap());
    }

    #[test]
    fn osdp_rr_histogram_is_a_sub_histogram_of_the_non_sensitive_part(
        (full, ns) in task_strategy(), seed in 0u64..1000, eps in 0.05f64..4.0
    ) {
        let task = histogram_session(Histogram::from_counts(full), Histogram::from_counts(ns))
            .build()
            .unwrap()
            .derive_task(&SessionQuery::bound())
            .unwrap();
        let mechanism = OsdpRrHistogram::new(eps).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let estimate = mechanism.release(&task, &mut rng);
        prop_assert!(estimate.dominated_by(task.non_sensitive()).unwrap());
        prop_assert!(estimate.is_non_negative());
    }

    #[test]
    fn dawaz_zeroes_every_truly_empty_bin(counts in histogram_strategy(), seed in 0u64..1000) {
        let full = Histogram::from_counts(counts.clone());
        let task = histogram_session(full.clone(), full)
            .build()
            .unwrap()
            .derive_task(&SessionQuery::bound())
            .unwrap();
        let mechanism = Dawaz::new(1.0).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let estimate = mechanism.release(&task, &mut rng);
        for (i, &count) in counts.iter().enumerate() {
            if count == 0.0 {
                prop_assert_eq!(estimate.get(i), 0.0);
            }
        }
    }

    #[test]
    fn mre_is_zero_iff_estimates_match(counts in histogram_strategy()) {
        let hist = Histogram::from_counts(counts.clone());
        prop_assert_eq!(mean_relative_error(&hist, &hist).unwrap(), 0.0);
        // Perturbing any single bin by 1 produces strictly positive error.
        let mut perturbed = counts;
        perturbed[0] += 1.0;
        let other = Histogram::from_counts(perturbed);
        prop_assert!(mean_relative_error(&hist, &other).unwrap() > 0.0);
    }

    #[test]
    fn laplace_noise_is_symmetric_in_distribution(scale in 0.1f64..10.0, seed in 0u64..1000) {
        let noise = Laplace::centered(scale).unwrap();
        prop_assert!((noise.cdf(0.0) - 0.5).abs() < 1e-12);
        // pdf symmetry at a few points
        for x in [0.3, 1.0, 2.5] {
            prop_assert!((noise.pdf(x) - noise.pdf(-x)).abs() < 1e-12);
        }
        // sampling stays finite
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let v: f64 = rand::distributions::Distribution::sample(&noise, &mut rng);
        prop_assert!(v.is_finite());
    }

    #[test]
    fn one_sided_noise_is_never_positive(scale in 0.05f64..10.0, seed in 0u64..1000) {
        let noise = OneSidedLaplace::new(scale).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..32 {
            let v: f64 = rand::distributions::Distribution::sample(&noise, &mut rng);
            prop_assert!(v <= 0.0);
        }
    }

    #[test]
    fn regret_table_minimum_is_always_one(errors in prop::collection::vec(0.01f64..100.0, 2..6)) {
        let mut table = RegretTable::new();
        for (i, e) in errors.iter().enumerate() {
            table.record("input", format!("alg{i}"), *e);
        }
        let best = table
            .average_regrets()
            .into_iter()
            .map(|(_, r)| r)
            .fold(f64::INFINITY, f64::min);
        prop_assert!((best - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_accountant_never_overspends(spends in prop::collection::vec(0.01f64..0.5, 1..10)) {
        let accountant = BudgetAccountant::with_limit(1.0).unwrap();
        let mut accepted = 0.0;
        for (i, eps) in spends.iter().enumerate() {
            // Ceiling rounding: the fixed-point debit of every valid spend
            // covers its ε — the accountant can never under-charge.
            prop_assert!(
                osdp::core::budget::epsilon_to_units(*eps) as f64
                    * BudgetAccountant::RESOLUTION
                    >= *eps
            );
            if accountant
                .spend(format!("m{i}"), "P", *eps, PrivacyGuarantee::OneSided)
                .is_ok()
            {
                accepted += eps;
            }
        }
        prop_assert!(accepted <= 1.0 + 1e-9);
        prop_assert!((accountant.total_spent() - accepted).abs() < 1e-9);
        prop_assert!(accountant.total_spent() >= accepted - 1e-12, "never undercounts");
    }
}
