//! Supervisor fault-plane tests: the autonomous maintenance loop over a
//! durable [`SessionPool`], driven end to end on a deterministic
//! [`ManualClock`] against seeded [`FaultVfs`] fault plans.
//!
//! * **autonomous heal** — a seeded `ENOSPC` quarantines a tenant; the
//!   supervisor heals it with **no caller intervention**, and the jittered
//!   exponential backoff between probes is observed tick by tick on the
//!   mock clock (a probe before its due-time does nothing, bit for bit
//!   reproducibly);
//! * **shared-device correlation** — one device-wide write storm
//!   quarantines exactly the affected tenants, opens exactly one
//!   [`DeviceIncident`], collapses probing to a single canary while the
//!   incident is open, and releases the herd once the canary heals;
//! * **scrub-before-recovery** — seeded cold-segment bit rot is detected
//!   by the periodic scrub and quarantines the tenant *before* any
//!   recovery path reads the corrupt frame; the subsequent heal truncates
//!   to the provably-valid prefix and the healed accountant equals the
//!   audit log equals an independent ledger peek, bit for bit.

use osdp::persist::{FaultKind, FaultPlan, FaultVfs, TenantLedger};
use osdp::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fresh, empty scratch directory under the OS temp dir.
fn temp_root(name: &str) -> PathBuf {
    static UNIQUE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "osdp-supervisor-{}-{}-{name}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A histogram-backed session builder; ε debits of 1/8 keep every spent
/// total an exact multiple of one grant's fixed-point units.
fn builder(budget: f64, seed: u64) -> SessionBuilder<Record> {
    let full = Histogram::from_counts(vec![40.0, 10.0, 25.0, 25.0]);
    let ns = Histogram::from_counts(vec![30.0, 10.0, 0.0, 20.0]);
    histogram_session(full, ns).policy_label("P-supervised").seed(seed).budget(budget)
}

/// One ε = 0.125 release through the pool's routed (health-observed) path.
fn grant(pool: &SessionPool<Record>, tenant: &str) -> Result<Release, OsdpError> {
    pool.release(tenant, &SessionQuery::bound(), &OsdpLaplaceL1::new(0.125).unwrap())
}

/// A breaker that never half-opens on its own: every recovery in these
/// tests must come from the supervisor, not the pool's probe cooldown.
fn sticky() -> HealthPolicy {
    HealthPolicy { quarantine_after: 3, probe_cooldown: Duration::from_secs(3600) }
}

/// Fast, deterministic supervisor tuning; periodic maintenance off unless
/// a test turns it on.
fn config() -> SupervisorConfig {
    SupervisorConfig {
        probe_base: Duration::from_millis(200),
        probe_max: Duration::from_secs(10),
        max_heal_attempts: 5,
        jitter_seed: 0xA11CE,
        sync_every: None,
        snapshot_every: None,
        scrub_every: None,
        incident_tenants: 3,
        incident_window: Duration::from_secs(30),
    }
}

/// The tenants probed (with attempt numbers) in a tick report.
fn attempts(report: &TickReport) -> Vec<(String, u32, bool)> {
    report
        .events
        .iter()
        .filter_map(|event| match event {
            SupervisorEvent::HealAttempted { tenant, attempt, outcome, .. } => {
                Some((tenant.to_string(), *attempt, matches!(outcome, HealOutcome::Healed)))
            }
            _ => None,
        })
        .collect()
}

/// Asserts the serving invariant after healing: the accountant, the audit
/// log, and an independent ledger peek agree bit for bit.
fn assert_bitwise_consistent(pool: &SessionPool<Record>, root: &std::path::Path, tenant: &str) {
    let session = pool.get(tenant).unwrap();
    let spent = session.accountant().total_spent_units();
    assert_eq!(
        session.audit_log().total_epsilon_units(),
        spent,
        "{tenant}: audit log diverged from accountant"
    );
    let peek = TenantLedger::peek(root.join(format!("tenant-{tenant}"))).unwrap();
    assert_eq!(peek.spent_units(), spent, "{tenant}: durable ledger diverged from accountant");
}

/// The e2e acceptance path: a seeded fault quarantines a tenant; the
/// supervisor heals it with no caller intervention, and the jittered
/// exponential backoff between probes is observed on the mock clock.
#[test]
fn supervisor_heals_a_quarantined_tenant_with_jittered_backoff() {
    let root = temp_root("backoff-heal");
    let plan = FaultPlan::new()
        // Third wal.log write (after open's set_len + header) is the first
        // grant frame: it dies with ENOSPC — permanent, instant quarantine.
        .fail_nth(PersistOp::Write, "tenant-acme/wal.log", 2, FaultKind::DiskFull)
        // Heal reopens read the WAL (the initial open saw no file yet, so
        // heal attempt 1 is read #0): the first two heal attempts fail,
        // the third finds the device healthy.
        .fail_window(
            PersistOp::Read,
            "tenant-acme/wal.log",
            0,
            2,
            FaultKind::Fail(FaultClass::Permanent),
        );
    let pool: Arc<SessionPool<Record>> = Arc::new(
        SessionPool::open_with(
            &root,
            SyncPolicy::Always,
            LedgerOptions::default(),
            FaultVfs::new(plan),
        )
        .unwrap()
        .with_health_policy(sticky()),
    );
    pool.open_tenant("acme", || builder(1.0, 7)).unwrap();

    let err = grant(&pool, "acme").unwrap_err();
    assert!(matches!(err, OsdpError::Persist(ref p) if p.op == PersistOp::Write));
    assert_eq!(pool.health("acme"), TenantHealth::Quarantined);
    // The breaker refuses fast while quarantined: serving stays fail-closed.
    assert!(matches!(grant(&pool, "acme"), Err(OsdpError::TenantQuarantined { .. })));

    let clock = Arc::new(ManualClock::new());
    let supervisor = PoolSupervisor::with_clock(
        Arc::clone(&pool),
        |_| builder(1.0, 7),
        config(),
        Arc::clone(&clock) as Arc<dyn SupervisorClock>,
    )
    .unwrap();

    // Tick 1 schedules (never runs) the first probe, at exactly the
    // jittered backoff the supervisor's seed dictates.
    let due1 = supervisor.backoff_delay("acme", 1);
    let report = supervisor.tick();
    assert!(attempts(&report).is_empty());
    assert!(report.events.iter().any(|e| matches!(
        e,
        SupervisorEvent::HealScheduled { attempt: 1, due, .. } if *due == due1
    )));

    // Jittered backoff is observed, not assumed: one millisecond before the
    // due-time, a tick does nothing at all.
    clock.advance(due1 - Duration::from_millis(1));
    assert!(supervisor.tick().events.is_empty());
    assert_eq!(pool.health("acme"), TenantHealth::Quarantined);

    // Attempt 1 (due) fails on the injected read fault and reschedules with
    // a strictly longer, still-deterministic backoff.
    clock.advance(Duration::from_millis(2));
    let report = supervisor.tick();
    assert_eq!(attempts(&report), vec![("acme".to_string(), 1, false)]);
    let due2 = supervisor.backoff_delay("acme", 2);
    assert!(due2 > due1, "backoff grows between attempts");
    assert!(report.events.iter().any(|e| matches!(
        e,
        SupervisorEvent::HealScheduled { attempt: 2, due, .. } if *due == report.at + due2
    )));

    // Attempt 2 fails the same way; attempt 3 finds the fault window
    // cleared and heals — no caller ever touched the pool.
    clock.advance(due2);
    assert_eq!(attempts(&supervisor.tick()), vec![("acme".to_string(), 2, false)]);
    clock.advance(supervisor.backoff_delay("acme", 3));
    let report = supervisor.tick();
    assert_eq!(attempts(&report), vec![("acme".to_string(), 3, true)]);
    assert_eq!(report.healed, vec![Arc::<str>::from("acme")]);
    assert_eq!(pool.health("acme"), TenantHealth::Healthy);

    // The healed tenant serves again, and the recovered counters agree
    // with the durable ledger bit for bit. The spend is three grants: the
    // refused grant's frame was conservatively retained in the writer and
    // landed at eviction (over-counting is the safe direction), plus the
    // two fresh grants.
    grant(&pool, "acme").unwrap();
    grant(&pool, "acme").unwrap();
    assert_eq!(
        pool.get("acme").unwrap().accountant().total_spent_units(),
        3 * epsilon_to_units(0.125)
    );
    assert_bitwise_consistent(&pool, &root, "acme");
    std::fs::remove_dir_all(&root).ok();
}

/// Shared-device storm: one `FaultVfs` backs every tenant shard; a
/// device-wide `ENOSPC` burst quarantines exactly the affected tenants,
/// opens exactly one incident, probes only the canary while it is open,
/// and heals everyone once the device recovers.
#[test]
fn device_storm_opens_one_incident_and_heals_exactly_the_affected_tenants() {
    let root = temp_root("device-storm");
    let mut plan = FaultPlan::new();
    // The same storm hits each affected shard's fourth wal.log write (the
    // second grant frame) — the shape of one device running out of space
    // under three tenants at once. "delta" shares the device but happens
    // not to write during the storm: it must stay untouched.
    for tenant in ["acme", "bravo", "casa"] {
        plan = plan.fail_window(
            PersistOp::Write,
            &format!("tenant-{tenant}/wal.log"),
            3,
            4,
            FaultKind::DiskFull,
        );
    }
    // The canary's first heal still fails (device not yet recovered); the
    // heal's WAL read is read #0 — the initial open found no file.
    plan = plan.fail_nth(
        PersistOp::Read,
        "tenant-acme/wal.log",
        0,
        FaultKind::Fail(FaultClass::Permanent),
    );
    let pool: Arc<SessionPool<Record>> = Arc::new(
        SessionPool::open_with(
            &root,
            SyncPolicy::Always,
            LedgerOptions::default(),
            FaultVfs::new(plan),
        )
        .unwrap()
        .with_health_policy(sticky()),
    );
    for (i, tenant) in ["acme", "bravo", "casa", "delta"].iter().enumerate() {
        pool.open_tenant(tenant, || builder(1.0, 7 + i as u64)).unwrap();
        grant(&pool, tenant).unwrap();
    }

    // The storm: every affected tenant's next grant dies with the device
    // signature (permanent write fault).
    for tenant in ["acme", "bravo", "casa"] {
        let err = grant(&pool, tenant).unwrap_err();
        assert!(matches!(err, OsdpError::Persist(ref p) if p.is_device_signature()));
    }
    // Exactly the affected tenants quarantine — delta is untouched and
    // keeps serving through the storm.
    let snapshot: Vec<_> = pool
        .health_snapshot()
        .into_iter()
        .filter(|r| r.health == TenantHealth::Quarantined)
        .map(|r| r.tenant.to_string())
        .collect();
    assert_eq!(snapshot, ["acme", "bravo", "casa"]);
    grant(&pool, "delta").unwrap();

    let clock = Arc::new(ManualClock::new());
    let supervisor = PoolSupervisor::with_clock(
        Arc::clone(&pool),
        |_| builder(1.0, 7),
        config(),
        Arc::clone(&clock) as Arc<dyn SupervisorClock>,
    )
    .unwrap();
    let mut reports = Vec::new();

    // Tick 1 correlates the burst: one incident, exactly the affected
    // tenants, canary = lexicographically first.
    let report = supervisor.tick();
    assert!(report.incident_open);
    let incident = supervisor.incident().unwrap();
    assert_eq!(
        incident.tenants.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        ["acme", "bravo", "casa"]
    );
    assert_eq!(&*incident.canary, "acme");
    // The tick published the incident into the pool: the health snapshot
    // now says not just *quarantined* but *why the probes stopped* —
    // affected tenants report the open incident, bystanders do not.
    for r in pool.health_snapshot() {
        let affected = ["acme", "bravo", "casa"].contains(&&*r.tenant);
        assert_eq!(r.in_open_incident, affected, "tenant {}", r.tenant);
    }
    reports.push(report);

    // Every probe is past due, but the open incident collapses probing to
    // the canary alone — no probe-storming a dying device. Its heal fails
    // (injected read fault), so the incident stays open.
    let max_due =
        ["acme", "bravo", "casa"].iter().map(|t| supervisor.backoff_delay(t, 1)).max().unwrap();
    clock.advance(max_due + Duration::from_millis(1));
    let report = supervisor.tick();
    assert_eq!(attempts(&report), vec![("acme".to_string(), 1, false)]);
    assert!(report.incident_open);
    reports.push(report);

    // The canary's retry succeeds: the device recovered, the incident
    // closes — still without probing anyone else this tick.
    clock.advance(supervisor.backoff_delay("acme", 2));
    let report = supervisor.tick();
    assert_eq!(attempts(&report), vec![("acme".to_string(), 2, true)]);
    assert!(!report.incident_open);
    assert!(report.events.iter().any(|e| matches!(e, SupervisorEvent::IncidentClosed { .. })));
    reports.push(report);

    // With the incident closed, the next tick releases the herd.
    let report = supervisor.tick();
    let mut healed: Vec<_> = report.healed.iter().map(|t| t.to_string()).collect();
    healed.sort();
    assert_eq!(healed, ["bravo", "casa"]);
    // Incident closed and mirrored out of the pool: nobody reports it.
    assert!(pool.health_snapshot().iter().all(|r| !r.in_open_incident));
    reports.push(report);

    // The incident opened exactly once across the whole storm.
    let opened = reports
        .iter()
        .flat_map(|r| r.events.iter())
        .filter(|e| matches!(e, SupervisorEvent::IncidentOpened { .. }))
        .count();
    assert_eq!(opened, 1);

    // Everyone serves again; every tenant's counters agree with its own
    // durable shard bit for bit.
    for tenant in ["acme", "bravo", "casa", "delta"] {
        assert_eq!(pool.health(tenant), TenantHealth::Healthy);
        grant(&pool, tenant).unwrap();
        assert_bitwise_consistent(&pool, &root, tenant);
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Cold-segment bit rot is found by the periodic scrub **before** any
/// recovery path reads the corrupt frame; the supervisor then heals onto
/// the provably-valid prefix.
#[test]
fn periodic_scrub_detects_cold_bit_rot_before_recovery_reads_it() {
    let root = temp_root("scrub-rot");
    let pool: Arc<SessionPool<Record>> = Arc::new(
        SessionPool::open(&root, SyncPolicy::Always).unwrap().with_health_policy(sticky()),
    );
    pool.open_tenant("acme", || builder(1.0, 11)).unwrap();
    grant(&pool, "acme").unwrap();
    grant(&pool, "acme").unwrap();

    // Silent rot: flip one payload bit in the (cold, durable) last frame.
    let wal = root.join("tenant-acme").join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();

    let clock = Arc::new(ManualClock::new());
    let supervisor = PoolSupervisor::with_clock(
        Arc::clone(&pool),
        |_| builder(1.0, 11),
        SupervisorConfig { scrub_every: Some(Duration::from_secs(60)), ..config() },
        Arc::clone(&clock) as Arc<dyn SupervisorClock>,
    )
    .unwrap();

    // The first scrub sweep finds the rot and quarantines the tenant —
    // before any heal ran, so no recovery path has read the corrupt frame.
    let report = supervisor.tick();
    assert!(attempts(&report).is_empty());
    assert!(report.events.iter().any(|e| matches!(
        e,
        SupervisorEvent::ScrubCompleted { shards: 1, findings: 1, failures: 0, .. }
    )));
    let health = pool.health_snapshot().into_iter().find(|r| &*r.tenant == "acme").unwrap();
    assert_eq!(health.health, TenantHealth::Quarantined);
    let last_error = health.last_error.unwrap();
    assert_eq!(last_error.op, PersistOp::Read);
    assert!(last_error.detail.contains("scrub"), "scrub taxonomy: {last_error}");
    // Serving is fail-closed on the rotten shard.
    assert!(matches!(grant(&pool, "acme"), Err(OsdpError::TenantQuarantined { .. })));

    // The next tick schedules the heal; once due, recovery truncates to
    // the valid prefix (the first grant) and restores service.
    clock.advance(Duration::from_millis(1));
    supervisor.tick();
    clock.advance(supervisor.backoff_delay("acme", 1));
    let report = supervisor.tick();
    assert_eq!(attempts(&report), vec![("acme".to_string(), 1, true)]);
    assert_eq!(pool.health("acme"), TenantHealth::Healthy);
    assert_eq!(
        pool.get("acme").unwrap().accountant().total_spent_units(),
        epsilon_to_units(0.125),
        "recovery keeps exactly the provably-valid prefix"
    );
    assert_bitwise_consistent(&pool, &root, "acme");

    // Service resumes, and the next periodic sweep scrubs clean.
    grant(&pool, "acme").unwrap();
    clock.advance(Duration::from_secs(60));
    let report = supervisor.tick();
    assert!(report
        .events
        .iter()
        .any(|e| matches!(e, SupervisorEvent::ScrubCompleted { findings: 0, failures: 0, .. })));
    assert_bitwise_consistent(&pool, &root, "acme");
    std::fs::remove_dir_all(&root).ok();
}
