//! Integration: every workload shape the experiment runners use produces
//! identical numerical output on `RowBackend` and `ColumnarBackend` — same
//! seeds, same histograms, same audit trail.

use osdp::prelude::*;
use osdp_data::sampling::{sample_policy, PolicyKind};
use osdp_data::tippers::occupancy::{ARRIVAL_FIELD, DURATION_FIELD};
use osdp_data::tippers::{generate_dataset, policy_for_ratio, TippersConfig};
use osdp_data::BenchmarkDataset;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Record-level sessions: a database released through both backends with the
/// same seed yields identical tasks, estimates, batches and audit logs.
#[test]
fn record_sessions_agree_across_backends() {
    let db: Database<Record> = (0..2_000)
        .map(|i| {
            Record::builder()
                .field("age", Value::Int(i % 95))
                .field("zone", Value::Categorical((i % 13) as u32))
                .build()
        })
        .collect();
    let policy = || AttributePolicy::int_at_most("age", 17);
    let build = |columnar: bool| {
        let mut b = SessionBuilder::new(db.clone());
        if columnar {
            b = b.columnar();
        }
        b.policy(policy(), "minors").seed(4242).build().unwrap()
    };
    let row = build(false);
    let col = build(true);
    assert_eq!(row.backend_name(), Some("row"));
    assert_eq!(col.backend_name(), Some("columnar"));

    let queries = [
        SessionQuery::count_by_categorical("by-zone", "zone", 13),
        SessionQuery::count_by_int_linear("by-decade", "age", 0, 10, 10),
        SessionQuery::count_by("by-closure", 5, |r: &Record| {
            r.int("age").ok().map(|a| (a % 5) as usize)
        }),
    ];
    let mechanism = OsdpLaplaceL1::new(0.8).unwrap();
    for query in &queries {
        assert_eq!(row.derive_task(query).unwrap(), col.derive_task(query).unwrap());
        assert_eq!(row.scan(query).unwrap(), col.scan(query).unwrap());
        let a = row.release(query, &mechanism).unwrap();
        let b = col.release(query, &mechanism).unwrap();
        assert_eq!(a.estimate, b.estimate, "query {:?}", query.label());
        assert_eq!(
            row.release_trials(query, &mechanism, 5).unwrap(),
            col.release_trials(query, &mechanism, 5).unwrap()
        );
    }
    assert_eq!(row.total_spent(), col.total_spent());
    assert_eq!(row.audit_records().len(), col.audit_records().len());
}

/// The DPBench runner path: a sampled `(x, x_ns)` pair released through the
/// weighted-frame columnar session equals the legacy histogram-backed
/// session bin for bin, mechanism for mechanism.
#[test]
fn pair_frame_sessions_reproduce_histogram_sessions_on_dpbench() {
    let mut rng = ChaCha12Rng::seed_from_u64(2020);
    let full = BenchmarkDataset::Medcost.generate(&mut rng);
    for kind in [PolicyKind::Close, PolicyKind::Far] {
        let policy = sample_policy(kind, &full, 0.75, &mut rng).unwrap();
        let bound = histogram_session(full.clone(), policy.non_sensitive.clone())
            .policy_label("P-sampled")
            .seed(7)
            .build()
            .unwrap();
        let columnar = pair_session(&full, &policy.non_sensitive)
            .unwrap()
            .policy_label("P-sampled")
            .seed(7)
            .build()
            .unwrap();
        let query = pair_query(full.len());
        // Exact pair reconstruction (integer counts -> exact f64 sums)...
        let task = columnar.derive_task(&query).unwrap();
        assert_eq!(task.full(), &full);
        assert_eq!(task.non_sensitive(), &policy.non_sensitive);
        // ...hence identical estimates for the whole pool.
        for name in ["OsdpLaplaceL1", "DAWAz", "DAWA", "Laplace"] {
            let pool = pool_from_names(&[name], 1.0).unwrap();
            let a = bound.release_trials(&SessionQuery::bound(), &pool[0], 3).unwrap();
            let b = columnar.release_trials(&query, &pool[0], 3).unwrap();
            assert_eq!(a, b, "{name} under the {} policy", kind.name());
        }
    }
}

/// The TIPPERS occupancy workload: the same trajectories scanned as a row
/// database of occupancy records and as a directly-built Mask64 frame give
/// identical releases under an access-point policy.
#[test]
fn tippers_occupancy_agrees_across_representations() {
    let mut rng = ChaCha12Rng::seed_from_u64(31);
    let dataset = generate_dataset(&TippersConfig::small(), &mut rng);
    let ap_policy = policy_for_ratio(&dataset, 0.75);

    let row = SessionBuilder::new(dataset.occupancy_records())
        .policy(ap_policy.record_policy(), ap_policy.label())
        .seed(55)
        .build()
        .unwrap();
    let frame = SessionBuilder::from_frame(dataset.occupancy_frame())
        .policy(ap_policy.record_policy(), ap_policy.label())
        .seed(55)
        .build()
        .unwrap();

    let arrival_hours = SessionQuery::count_by_int_linear("arrival-hour", ARRIVAL_FIELD, 0, 6, 24);
    let durations = SessionQuery::count_by_int_linear("duration", DURATION_FIELD, 0, 12, 12);
    let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
    for query in [&arrival_hours, &durations] {
        assert_eq!(row.scan(query).unwrap(), frame.scan(query).unwrap());
        assert_eq!(
            row.release(query, &mechanism).unwrap().estimate,
            frame.release(query, &mechanism).unwrap().estimate
        );
    }

    // The record-level policy classifies exactly like the trajectory-level
    // policy it projects: the non-sensitive mass equals the trajectory count
    // the original policy clears (durations always fit the 12 × 12 domain,
    // so nothing drops).
    let cleared = dataset.trajectories().iter().filter(|t| ap_policy.is_non_sensitive(t)).count();
    let pair = row.scan(&durations).unwrap();
    assert_eq!(pair.dropped, 0.0);
    assert_eq!(pair.non_sensitive.total(), cleared as f64);
}
