//! Fault-injection tests for the durable budget plane.
//!
//! Every test here drives real on-disk shards through
//! [`osdp::persist::FaultVfs`], the deterministic seeded fault injector,
//! and checks the failure-model contract end to end:
//!
//! * **typed faults** — every injected failure surfaces as a
//!   [`PersistError`] carrying the operation, the path and a
//!   transient/permanent class;
//! * **bounded retry** — transient write faults (torn writes included) are
//!   absorbed by the WAL's truncate-and-retry boundary logic, invisibly to
//!   the caller and without duplicating bytes;
//! * **fsync is permanent** — one failed fsync poisons the handle; the
//!   ledger never re-fsyncs the descriptor, and recovery is the only
//!   continuation;
//! * **no appender blocks forever** — group-commit waiters are bounded by
//!   a configurable deadline, and a dying committer fails every blocked
//!   appender with a typed error;
//! * **prefix-closed, never-overspending recovery** — under arbitrary
//!   seeded fault plans and all four sync policies, recovery replays a
//!   prefix of the admitted history, never exceeds what the accountant
//!   admitted, and (for the always-durable policies) never loses an
//!   acknowledged grant.

use osdp::persist::{
    force_unlock, scrub_shard, FaultKind, FaultPlan, FaultVfs, GrantRecord, GuaranteeTag,
    ScrubFinding, StdVfs, TenantLedger, Vfs,
};
use osdp::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// A fresh, empty scratch directory under the OS temp dir.
fn temp_root(name: &str) -> PathBuf {
    static UNIQUE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "osdp-faults-{}-{}-{name}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A grant of 100 fixed-point units with release index `index`.
fn grant(index: u64) -> GrantRecord {
    GrantRecord {
        index,
        units: 100,
        epsilon: 1e-10,
        trials: 1,
        bins: 4,
        guarantee: GuaranteeTag::Osdp,
        mechanism: "osdp-laplace".into(),
        policy: "P".into(),
        query: "q".into(),
        policy_version: 0,
    }
}

/// Ledger options with a fast, test-sized retry schedule.
fn fast_retry() -> LedgerOptions {
    LedgerOptions {
        retry: RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        },
        ..LedgerOptions::default()
    }
}

/// The typed persistence error inside an [`OsdpError`], or a panic.
fn typed(err: &OsdpError) -> &PersistError {
    match err {
        OsdpError::Persist(p) => p,
        other => panic!("expected a typed PersistError, got {other:?}"),
    }
}

#[test]
fn transient_torn_write_is_retried_invisibly() {
    let root = temp_root("torn-retry");
    // Write ops #0–#1 on wal.log are the open-time rewrite (set_len +
    // write); op #2 is the first grant frame. Tear it after 3 bytes with a
    // *transient* class: the boundary logic must truncate the torn prefix
    // and the retry must land the full frame.
    let plan = FaultPlan::new().fail_nth(
        PersistOp::Write,
        "wal.log",
        2,
        FaultKind::TornWrite { keep_bytes: 3, class: FaultClass::Transient },
    );
    let vfs = FaultVfs::new(plan);
    let (ledger, recovered) = TenantLedger::open_with_vfs(
        root.clone(),
        SyncPolicy::Always,
        fast_retry(),
        Arc::<FaultVfs>::clone(&vfs),
    )
    .unwrap();
    assert_eq!(recovered.spent_units(), 0);
    for i in 0..3 {
        ledger.append_grant(&grant(i)).unwrap();
    }
    assert_eq!(vfs.injected_faults(), 1, "the torn write fired exactly once");
    drop(ledger);

    // The retry did not duplicate the torn prefix: recovery replays
    // exactly the three acknowledged grants.
    let recovered = TenantLedger::peek(&root).unwrap();
    assert_eq!(recovered.spent_units(), 300);
    assert_eq!(
        recovered.grants.iter().map(|g| g.index).collect::<Vec<_>>(),
        vec![0, 1, 2],
        "prefix-closed, gapless replay"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn failed_fsync_poisons_the_handle_and_never_refsyncs() {
    let root = temp_root("fsync-poison");
    // Fsync #0 on wal.log is the open-time rewrite; #1 is the first
    // append's. The rule is one-shot, so if the ledger ever re-fsynced the
    // poisoned descriptor the retry would *succeed* — the assertions below
    // would then see a second grant acknowledged.
    let plan = FaultPlan::new().fail_nth(PersistOp::Fsync, "wal.log", 1, FaultKind::FsyncFail);
    let vfs = FaultVfs::new(plan);
    let (ledger, _) = TenantLedger::open_with_vfs(
        root.clone(),
        SyncPolicy::Always,
        fast_retry(),
        Arc::<FaultVfs>::clone(&vfs),
    )
    .unwrap();

    let err = ledger.append_grant(&grant(0)).unwrap_err();
    let p = typed(&err);
    assert_eq!(p.class, FaultClass::Permanent, "a failed fsync is permanent for the handle");
    assert_eq!(p.op, PersistOp::Fsync);

    // Every later operation on the handle fails fast from the poison —
    // without touching the descriptor again (the one-shot fault stays the
    // only injected one, so a re-fsync would have succeeded and acked).
    assert!(ledger.append_grant(&grant(1)).is_err());
    assert!(ledger.sync().is_err());
    assert!(ledger.rotate_snapshot().is_err());
    assert_eq!(vfs.injected_faults(), 1, "the poisoned handle was never re-fsynced");
    drop(ledger);

    // Reopen + recover is the continuation: the un-acknowledged frame may
    // or may not have reached the platter (its write landed, its fsync did
    // not) — recovery may conservatively over-count it, never lose
    // acknowledged history, and stays internally consistent.
    let recovered = TenantLedger::peek(&root).unwrap();
    assert!(recovered.spent_units() <= 100, "at most the retained un-acked frame");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn injected_enospc_is_typed_permanent() {
    let root = temp_root("enospc");
    let plan = FaultPlan::new().fail_nth(PersistOp::Write, "wal.log", 2, FaultKind::DiskFull);
    let vfs = FaultVfs::new(plan);
    let (ledger, _) = TenantLedger::open_with_vfs(
        root.clone(),
        SyncPolicy::Always,
        fast_retry(),
        Arc::<FaultVfs>::clone(&vfs),
    )
    .unwrap();
    let err = ledger.append_grant(&grant(0)).unwrap_err();
    let p = typed(&err);
    assert_eq!(p.class, FaultClass::Permanent, "ENOSPC does not retry");
    assert_eq!(p.op, PersistOp::Write);
    assert!(p.path.contains("wal.log"), "the typed error names the file: {}", p.path);
    assert_eq!(vfs.injected_faults(), 1, "permanent faults are not retried");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn read_bit_flip_truncates_to_a_valid_prefix() {
    let root = temp_root("bit-flip");
    {
        let (ledger, _) = TenantLedger::open(&root, SyncPolicy::Always).unwrap();
        for i in 0..5 {
            ledger.append_grant(&grant(i)).unwrap();
        }
    }
    let clean = TenantLedger::peek(&root).unwrap();
    assert_eq!(clean.spent_units(), 500);

    // Re-read the shard through a bit-flipping VFS: silent media
    // corruption in the middle of the WAL. The CRCs catch it and replay
    // keeps exactly the frames before the flipped one.
    let plan = FaultPlan::new().fail_nth(
        PersistOp::Read,
        "wal.log",
        0,
        FaultKind::BitFlip { bit_index: 150 * 8 },
    );
    let vfs = FaultVfs::new(plan);
    let corrupt = TenantLedger::peek_with_vfs(&root, &*vfs).unwrap();
    assert!(corrupt.spent_units() < 500, "the flipped frame (and its suffix) must drop");
    assert_eq!(corrupt.spent_units() % 100, 0, "whole frames only — no partial debits");
    let replayed: Vec<u64> = corrupt.grants.iter().map(|g| g.index).collect();
    assert_eq!(replayed, (0..replayed.len() as u64).collect::<Vec<_>>(), "prefix-closed");
    assert!(corrupt.truncated_bytes > 0, "the torn suffix is reported");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rename_failure_during_rotation_is_typed_and_loses_nothing() {
    let root = temp_root("rename-fail");
    let plan =
        FaultPlan::new().fail_nth(PersistOp::Rename, "snapshot.tmp", 0, FaultKind::RenameFail);
    let vfs = FaultVfs::new(plan);
    let (ledger, _) = TenantLedger::open_with_vfs(
        root.clone(),
        SyncPolicy::Always,
        fast_retry(),
        Arc::<FaultVfs>::clone(&vfs),
    )
    .unwrap();
    for i in 0..4 {
        ledger.append_grant(&grant(i)).unwrap();
    }
    let err = ledger.rotate_snapshot().unwrap_err();
    let p = typed(&err);
    assert_eq!(p.op, PersistOp::Rename);
    assert_eq!(p.class, FaultClass::Permanent);
    drop(ledger);

    // The failed rotation is crash-consistent: the WAL still holds every
    // acknowledged grant, so recovery loses nothing.
    let _ = force_unlock(&root);
    let recovered = TenantLedger::peek(&root).unwrap();
    assert_eq!(recovered.spent_units(), 400, "no acknowledged grant lost to the failed rotation");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn scrub_finds_cold_bit_rot_and_the_next_open_repairs_it() {
    let root = temp_root("scrub-rot");
    {
        let (ledger, _) = TenantLedger::open(root.clone(), SyncPolicy::Always).unwrap();
        for i in 0..6 {
            ledger.append_grant(&grant(i)).unwrap();
        }
    }

    // Silent rot: flip one payload bit in the last (cold, acknowledged)
    // frame, the kind of damage no crash ever produces.
    let wal = root.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    std::fs::write(&wal, &bytes).unwrap();

    // The scrubber pins the rot to its frame — without decoding a record
    // or writing a byte (the rotten file is bit-identical afterwards).
    let report = scrub_shard(&StdVfs, &root).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.findings.len(), 1);
    match &report.findings[0] {
        ScrubFinding::WalCorruption { surviving_frames, .. } => {
            assert_eq!(*surviving_frames, 5, "the five frames before the rot are recoverable");
        }
        other => panic!("unexpected finding: {other}"),
    }
    assert_eq!(std::fs::read(&wal).unwrap(), bytes, "scrubbing is read-only");

    // Recovery truncates to the provably-valid prefix; the repaired shard
    // serves again and scrubs clean.
    let (ledger, recovered) = TenantLedger::open(root.clone(), SyncPolicy::Always).unwrap();
    assert_eq!(recovered.grants.len(), 5);
    ledger.append_grant(&grant(6)).unwrap();
    drop(ledger);
    assert_eq!(TenantLedger::peek(&root).unwrap().spent_units(), 600);
    assert!(scrub_shard(&StdVfs, &root).unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn scrub_runs_against_a_live_serving_ledger() {
    let root = temp_root("scrub-live");
    let (ledger, _) = TenantLedger::open(root.clone(), SyncPolicy::Always).unwrap();
    for i in 0..4 {
        ledger.append_grant(&grant(i)).unwrap();
    }

    // Lock held, writer live: the scrubber needs neither.
    let report = ledger.scrub().unwrap();
    assert!(report.is_clean());
    assert_eq!(report.wal_frames, 4);

    // Cold rot behind the live writer's position is still found, and the
    // writer keeps serving — the scrub took nothing it holds.
    let wal = root.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let tail = bytes.len() - 1;
    bytes[tail] ^= 0x40;
    std::fs::write(&wal, &bytes).unwrap();
    assert_eq!(ledger.scrub().unwrap().findings.len(), 1);
    ledger.append_grant(&grant(4)).unwrap();
    drop(ledger);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn group_commit_waiter_deadline_bounds_the_wait() {
    let root = temp_root("gc-deadline");
    // A one-shot *transient* write fault parks the committer in a 300 ms
    // retry backoff; the appender's own 50 ms deadline must fire first
    // with a typed timeout. (The commit itself succeeds on retry — the
    // caller has already conservatively treated the grant as refused,
    // which is the documented over-counting direction.)
    let plan = FaultPlan::new().fail_nth(
        PersistOp::Write,
        "wal.log",
        2,
        FaultKind::Fail(FaultClass::Transient),
    );
    let options = LedgerOptions {
        retry: RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(300),
            max_delay: Duration::from_millis(300),
        },
        commit_deadline: Duration::from_millis(50),
        ..LedgerOptions::default()
    };
    let (ledger, _) = TenantLedger::open_with_vfs(
        root.clone(),
        SyncPolicy::group_commit(),
        options,
        FaultVfs::new(plan),
    )
    .unwrap();

    let start = Instant::now();
    let err = ledger.append_grant(&grant(0)).unwrap_err();
    let elapsed = start.elapsed();
    let p = typed(&err);
    assert_eq!(p.class, FaultClass::Transient, "a deadline expiry is retryable by the caller");
    assert!(p.detail.contains("deadline"), "the timeout names itself: {}", p.detail);
    assert!(
        elapsed < Duration::from_secs(5),
        "the waiter must not block past its deadline (waited {elapsed:?})"
    );
    drop(ledger);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dying_committer_fails_every_blocked_appender() {
    let root = temp_root("gc-killed");
    const APPENDERS: usize = 8;
    // Fsync #0 on wal.log is the open-time rewrite; every committer batch
    // fsync after it fails, killing the committer under the first batch —
    // with appenders from 8 threads racing into the queue.
    let plan = FaultPlan::new().fail_from(PersistOp::Fsync, "wal.log", 1, FaultKind::FsyncFail);
    let options =
        LedgerOptions { commit_deadline: Duration::from_secs(10), ..LedgerOptions::default() };
    let (ledger, _) = TenantLedger::open_with_vfs(
        root.clone(),
        SyncPolicy::group_commit(),
        options,
        FaultVfs::new(plan),
    )
    .unwrap();
    let ledger = Arc::new(ledger);

    let start = Instant::now();
    let barrier = Arc::new(Barrier::new(APPENDERS));
    let handles: Vec<_> = (0..APPENDERS)
        .map(|t| {
            let ledger = Arc::clone(&ledger);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let mut acked = 0u64;
                for i in 0..4u64 {
                    match ledger.append_grant(&grant(t as u64 * 100 + i)) {
                        Ok(()) => acked += 100,
                        Err(err) => {
                            // Typed, not a hang and not a panic.
                            assert!(
                                matches!(err, OsdpError::Persist(_)),
                                "expected a typed failure, got {err:?}"
                            );
                            break;
                        }
                    }
                }
                acked
            })
        })
        .collect();
    let acked_units: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "no appender may block forever behind a dead committer"
    );
    assert_eq!(acked_units, 0, "nothing can be acknowledged once the first fsync fails");

    // The committer is gone: later appends refuse fast with the stashed
    // typed error instead of queueing into nowhere.
    let fast = Instant::now();
    let err = ledger.append_grant(&grant(9999)).unwrap_err();
    assert!(matches!(err, OsdpError::Persist(_)));
    assert!(fast.elapsed() < Duration::from_secs(5));
    drop(ledger);

    // Recovery after the massacre: consistent, and conservative (frames
    // whose fsync never succeeded may or may not have reached the disk —
    // none were acknowledged, so any replayed subset is an over-count in
    // the safe direction, bounded by what was attempted).
    let _ = force_unlock(&root);
    let recovered = TenantLedger::peek(&root).unwrap();
    assert!(recovered.spent_units() <= APPENDERS as u64 * 4 * 100);
    let _ = std::fs::remove_dir_all(&root);
}

/// A histogram-backed session builder (same substrate as the recovery
/// tests; ε debits of 1/8 divide the 1.0 cap exactly).
fn builder(seed: u64) -> SessionBuilder<Record> {
    let full = Histogram::from_counts(vec![40.0, 10.0, 25.0, 25.0]);
    let ns = Histogram::from_counts(vec![30.0, 10.0, 0.0, 20.0]);
    histogram_session(full, ns).policy_label("P-faults").seed(seed).budget(1.0)
}

/// One fault-sweep case: a seeded fault plan under one sync policy, driven
/// through the full engine grant path. Checks the recovery invariants that
/// must hold under **any** fault schedule.
fn sweep_case(seed: u64, policy: SyncPolicy, tag: &str) {
    let root = temp_root(tag);
    let vfs: Arc<dyn Vfs> = FaultVfs::new(FaultPlan::seeded(seed));
    let options = LedgerOptions { commit_deadline: Duration::from_secs(5), ..fast_retry() };
    // An open refused by an injected fault admits nothing — nothing to
    // verify for this schedule.
    let Ok(persistence) =
        SessionPersistence::open_with_vfs(root.clone(), policy, options, Arc::clone(&vfs))
    else {
        let _ = std::fs::remove_dir_all(&root);
        return;
    };
    let session = builder(seed ^ 0x5eed).durable(persistence).build().unwrap();
    let mechanism = OsdpLaplaceL1::new(0.125).unwrap();
    let mut acked_units = 0u64;
    for _ in 0..12 {
        if session.release(&SessionQuery::bound(), &mechanism).is_ok() {
            acked_units += osdp::core::budget::epsilon_to_units(0.125);
        }
    }
    let admitted_units = session.accountant().total_spent_units();
    // Fail-closed bookkeeping: a WAL-refused grant is refused to the
    // caller but conservatively *kept* by both the accountant and the
    // audit log — so those two stay equal under any fault schedule, and
    // acknowledged grants are a subset of admitted ones.
    assert_eq!(session.audit_total_epsilon_units(), admitted_units);
    assert!(acked_units <= admitted_units);
    assert!(admitted_units <= osdp::core::budget::epsilon_to_units(1.0), "cap holds live");
    drop(session);

    // Recover with the real file system: whatever the fault schedule did,
    // the shard must come back consistent.
    let _ = force_unlock(&root);
    let recovered = TenantLedger::peek(&root)
        .unwrap_or_else(|e| panic!("recovery must survive fault plan seed={seed}: {e}"));
    assert!(
        recovered.spent_units() <= admitted_units,
        "recovery overspent: {} > admitted {} (seed={seed}, {policy:?})",
        recovered.spent_units(),
        admitted_units,
    );
    if matches!(policy, SyncPolicy::Always | SyncPolicy::GroupCommit { .. }) {
        assert!(
            recovered.spent_units() >= acked_units,
            "acknowledged grants lost: {} < acked {} (seed={seed}, {policy:?})",
            recovered.spent_units(),
            acked_units,
        );
    }
    for pair in recovered.grants.windows(2) {
        assert!(pair[0].index < pair[1].index, "replay must be prefix-closed and ordered");
    }

    // A full reopen agrees with the independent peek bit for bit —
    // accountant == audit == ledger.
    let reopened = SessionPersistence::open(root.clone(), SyncPolicy::Always).unwrap();
    let session = builder(1).durable(reopened).build().unwrap();
    assert_eq!(session.accountant().total_spent_units(), session.audit_total_epsilon_units());
    let peek = TenantLedger::peek(&root).unwrap();
    assert_eq!(session.accountant().total_spent_units(), peek.spent_units());
    drop(session);
    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fault sweep (satellite of the failure-model PR): arbitrary
    /// seeded fault plans × all four sync policies.
    #[test]
    fn seeded_fault_plans_never_unbalance_recovery(seed in 0u64..u64::MAX / 2) {
        for (i, policy) in [
            SyncPolicy::Always,
            SyncPolicy::EveryN(3),
            SyncPolicy::OnDrop,
            SyncPolicy::group_commit(),
        ]
        .into_iter()
        .enumerate()
        {
            sweep_case(seed, policy, &format!("sweep-{seed}-{i}"));
        }
    }
}
