//! # osdp — One-sided Differential Privacy
//!
//! A from-scratch Rust implementation of **one-sided differential privacy**
//! (OSDP) as introduced by Doudalis, Kotsogiannis, Haney, Machanavajjhala and
//! Mehrotra in *"One-sided Differential Privacy"*, together with every
//! mechanism, baseline, data substrate and experiment needed to reproduce the
//! paper's evaluation.
//!
//! OSDP targets data sharing when only *part* of the data is sensitive, as
//! declared by an explicit **policy function**. It gives the sensitive
//! records a differential-privacy-style guarantee while still protecting the
//! *fact* that a record is sensitive — ruling out the *exclusion attacks*
//! that plague access control and personalized DP — and it lets mechanisms
//! exploit the non-sensitive records for large accuracy gains, including the
//! release of exact, true records.
//!
//! ## Crate map
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`core`] — policies, records, databases, neighbors,
//!   histograms, budget accounting.
//! * [`engine`] — **the audited front door**: `OsdpSession`
//!   binds database + policy + budget, derives every histogram task from the
//!   bound policy, debits the accountant *before* sampling, logs every
//!   release, and batch-releases trials one-per-core.
//! * [`noise`] — Laplace, one-sided Laplace, exponential,
//!   geometric samplers.
//! * [`mechanisms`] — `OsdpRR`, `OsdpLaplace`,
//!   `OsdpLaplaceL1`, `DAWAz`, the DP Laplace/DAWA baselines and the PDP
//!   `Suppress` baseline.
//! * [`dawa`] — the DAWA two-phase DP histogram algorithm.
//! * [`data`] — DPBench-style benchmark histograms, opt-in/opt-out
//!   samplers, and the TIPPERS-like smart-building trajectory simulator.
//! * [`ml`] — logistic regression, ε-DP objective perturbation,
//!   ROC/AUC, cross-validation.
//! * [`metrics`] — MRE, per-bin relative error percentiles,
//!   regret.
//! * [`attack`] — the exclusion-attack adversary and OSDP
//!   verification tools.
//! * [`persist`] — the durable budget plane: per-tenant
//!   write-ahead ledgers with group-commit batching, snapshot/replay
//!   recovery (std-only, no dependencies beyond `osdp-core`).
//! * [`experiments`] — one runner per table/figure of the
//!   paper.
//!
//! ## Quickstart
//!
//! Everything is released through an [`OsdpSession`](osdp_engine::OsdpSession)
//! — the audited path that binds database, policy and budget, derives `x_ns`
//! from the bound policy, debits the accountant **before** sampling, and
//! refuses releases the budget cannot cover:
//!
//! ```
//! use osdp::prelude::*;
//!
//! // A database in which records of minors are sensitive.
//! let db: Database = (0..1000)
//!     .map(|i| Record::builder().field("age", Value::Int(10 + (i % 60))).build())
//!     .collect();
//! let policy = AttributePolicy::sensitive_when("age", |v| v.as_int().unwrap_or(0) <= 17);
//!
//! let session = SessionBuilder::new(db)
//!     .policy(policy, "minors")
//!     .budget(2.0)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//!
//! // Release a true sample of the non-sensitive records under (P, 1.0)-OSDP.
//! let sample = session.release_records(&OsdpRr::new(1.0).unwrap()).unwrap();
//! assert!(sample.iter().all(|r| r.int("age").unwrap() > 17));
//! assert!(!sample.is_empty());
//!
//! // Answer a histogram query with one-sided noise; the session derives the
//! // task from the bound policy.
//! let ages = SessionQuery::count_by("age-decades", 6, |r: &Record| {
//!     r.int("age").ok().map(|a| ((a - 10) / 10) as usize)
//! });
//! let release = session.release(&ages, &OsdpLaplaceL1::new(1.0).unwrap()).unwrap();
//! assert_eq!(release.estimate.len(), 6);
//!
//! // The 2.0 budget is now spent: further releases are refused up front.
//! assert!(matches!(
//!     session.release(&ages, &OsdpLaplaceL1::new(1.0).unwrap()),
//!     Err(OsdpError::BudgetExhausted { .. })
//! ));
//!
//! // ...and the audit ledger verifies against the composition theorems.
//! let verdict = osdp::attack::verify_ledger(&session.audit_ledger(), Some(2.0));
//! assert!(verdict.upholds_osdp());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use osdp_attack as attack;
pub use osdp_core as core;
pub use osdp_data as data;
pub use osdp_dawa as dawa;
pub use osdp_engine as engine;
pub use osdp_experiments as experiments;
pub use osdp_mechanisms as mechanisms;
pub use osdp_metrics as metrics;
pub use osdp_ml as ml;
pub use osdp_noise as noise;
pub use osdp_persist as persist;

/// The most commonly used items, re-exported flat for convenience.
pub mod prelude {
    pub use osdp_core::{
        budget::{
            dyadic_decomposition, epsilon_to_units, units_to_epsilon, BudgetAccountant, Guarantee,
            PrivacyBudget, PrivacyGuarantee, StreamBudget, StreamBudgetState,
        },
        policy::{
            AllSensitive, AttributePolicy, ClosurePolicy, EpochDirection, MinimumRelaxation,
            NoneSensitive, Policy, PolicyEpoch, Sensitivity, VersionedPolicy,
        },
        BinSpec, ColumnarFrame, Database, FaultClass, Histogram, Histogram2D, OsdpError,
        PersistError, PersistOp, PolicyMask, Record, SparseHistogram, Value,
    };
    pub use osdp_engine::{
        histogram_session, pair_query, pair_session, pool_from_names, pool_from_specs,
        windows_from_databases, AuditLog, AuditRecord, Backend, ColumnarBackend, DeviceIncident,
        EpochTransition, EpochVerdict, GroupCommitStats, HealOutcome, HealthPolicy, HistogramPair,
        LedgerOptions, LedgerVerdict, ManualClock, MechanismSpec, OsdpSession,
        PoolMaintenanceError, PoolRelease, PoolScrubReport, PoolSupervisor, PoolVerdict,
        PoolWindowOutcome, QueryPlan, RecoveryReport, Release, ReleaseStamp, RetryPolicy,
        RowBackend, SessionBuilder, SessionPersistence, SessionPool, SessionQuery, SessionWal,
        StreamSession, StreamSessionBuilder, SupervisorClock, SupervisorConfig, SupervisorEvent,
        SupervisorHandle, SyncPolicy, SyntheticWindows, SystemClock, TenantHealth,
        TenantHealthReport, TenantVerdict, TickReport, Window, WindowOutcome, WindowSource,
    };
    pub use osdp_mechanisms::{
        DawaHistogram, Dawaz, DpLaplaceHistogram, HistogramMechanism, HistogramTask, HybridLaplace,
        OsdpLaplace, OsdpLaplaceL1, OsdpRr, OsdpRrHistogram, Suppress, TruncatedNgramLaplace,
    };
    pub use osdp_metrics::{
        l1_error, mean_relative_error, relative_error_percentile, RegretTable, ResultRow,
        ResultTable, REL50, REL95,
    };
    pub use osdp_noise::{Laplace, OneSidedLaplace, SeedSequence};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
        let task = HistogramTask::all_non_sensitive(Histogram::from_counts(vec![50.0; 16]));
        let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
        let estimate = mechanism.release(&task, &mut rng);
        let mre = mean_relative_error(task.full(), &estimate).unwrap();
        assert!(mre < 1.0);
        let budget = PrivacyBudget::new(1.0).unwrap();
        assert_eq!(budget.epsilon(), 1.0);
    }
}
