//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a minimal derive that emits **marker** impls of the
//! vendored `serde::Serialize` / `serde::Deserialize` traits. The derives are
//! hand-rolled on top of `proc_macro` (no `syn`/`quote`) and support structs
//! and enums with lifetimes, type parameters (including defaults and bounds)
//! and const generics — everything the OSDP workspace derives on.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, Trait::Serialize)
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, Trait::Deserialize)
}

enum Trait {
    Serialize,
    Deserialize,
}

/// One parsed generic parameter of the deriving type.
struct Param {
    /// The parameter as usable in `impl<...>`: bounds kept, default stripped.
    decl: String,
    /// The bare name as usable in `Type<...>` (`'a`, `T`, `N`).
    name: String,
}

fn derive_marker(input: TokenStream, which: Trait) -> TokenStream {
    let (name, params) = parse_type_header(input);
    let impl_params: Vec<&str> = params.iter().map(|p| p.decl.as_str()).collect();
    let type_args: Vec<&str> = params.iter().map(|p| p.name.as_str()).collect();
    let type_for = if type_args.is_empty() {
        name.clone()
    } else {
        format!("{}<{}>", name, type_args.join(", "))
    };
    let output = match which {
        Trait::Serialize => {
            let generics = if impl_params.is_empty() {
                String::new()
            } else {
                format!("<{}>", impl_params.join(", "))
            };
            format!("impl{generics} ::serde::Serialize for {type_for} {{}}")
        }
        Trait::Deserialize => {
            let mut all = vec!["'de".to_string()];
            all.extend(impl_params.iter().map(|s| s.to_string()));
            format!("impl<{}> ::serde::Deserialize<'de> for {type_for} {{}}", all.join(", "))
        }
    };
    output.parse().expect("generated impl must parse")
}

/// Extracts the type name and generic parameter list from a
/// `struct`/`enum`/`union` item.
fn parse_type_header(input: TokenStream) -> (String, Vec<Param>) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility until the struct/enum/union keyword.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name.expect("derive input must be a struct, enum or union");

    // If the next token is `<`, collect the generic parameter tokens.
    let mut params = Vec::new();
    let opens_generics = matches!(
        tokens.peek(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<'
    );
    if opens_generics {
        tokens.next();
        let mut depth = 1usize;
        let mut prev_dash = false;
        let mut current: Vec<TokenTree> = Vec::new();
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !prev_dash => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => {
                        params.push(parse_param(&current));
                        current.clear();
                        prev_dash = false;
                        continue;
                    }
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            } else {
                prev_dash = false;
            }
            current.push(tt);
        }
        if !current.is_empty() {
            params.push(parse_param(&current));
        }
    }
    (name, params)
}

/// Parses one generic parameter: strips a trailing `= default` and extracts
/// the bare name (`'a`, `T`, `N`).
fn parse_param(tokens: &[TokenTree]) -> Param {
    // Strip the default value: truncate at the first depth-0 `=` that is not
    // part of a `==`/`>=`/`<=` (which cannot occur at depth 0 here anyway).
    let mut depth = 0usize;
    let mut end = tokens.len();
    for (i, tt) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                '=' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
    }
    let kept = &tokens[..end];
    let decl = render_tokens(kept);

    // The name: for lifetimes, the leading `'ident`; for `const N: usize`,
    // the ident after `const`; otherwise the first ident.
    let mut name = String::new();
    let mut iter = kept.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                if let Some(TokenTree::Ident(id)) = iter.next() {
                    name = format!("'{id}");
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "const" => {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = n.to_string();
                }
                break;
            }
            TokenTree::Ident(id) => {
                name = id.to_string();
                break;
            }
            _ => {}
        }
    }
    Param { decl, name }
}

/// Renders tokens back to source, honouring `Joint` punct spacing so that
/// multi-character tokens like lifetimes (`'a`) and `::` survive round-trips.
fn render_tokens(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    let mut glue_next = false;
    for tt in tokens {
        if !out.is_empty() && !glue_next {
            out.push(' ');
        }
        glue_next = false;
        match tt {
            TokenTree::Group(g) => {
                let inner_tokens: Vec<TokenTree> = g.stream().into_iter().collect();
                let inner = render_tokens(&inner_tokens);
                match g.delimiter() {
                    Delimiter::Parenthesis => out.push_str(&format!("({inner})")),
                    Delimiter::Brace => out.push_str(&format!("{{{inner}}}")),
                    Delimiter::Bracket => out.push_str(&format!("[{inner}]")),
                    Delimiter::None => out.push_str(&inner),
                }
            }
            TokenTree::Punct(p) => {
                out.push(p.as_char());
                glue_next = p.spacing() == proc_macro::Spacing::Joint;
            }
            other => out.push_str(&other.to_string()),
        }
    }
    out
}
