//! Offline stand-in for `rayon`.
//!
//! Provides genuinely parallel `into_par_iter()/par_iter()` + `map` +
//! `collect`/`sum`/`for_each` over vectors, slices and ranges, implemented
//! with `std::thread::scope` and an atomic work-stealing index instead of a
//! work-stealing deque. Each call site fans its items out over
//! `available_parallelism()` OS threads, which is exactly the granularity the
//! OSDP workspace needs (one mechanism release per work item).

#![allow(clippy::all)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon-style prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads a parallel call will use: the
/// `RAYON_NUM_THREADS` environment variable if set (matching the real
/// crate), otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Conversion into a parallel iterator (mirror of rayon's trait).
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `par_iter()` over borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

macro_rules! range_par_iter {
    ($($t:ty),*) => {
        $(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*
    };
}

range_par_iter!(u32, u64, usize, i32, i64);

/// An eager parallel iterator: the items are materialised, the work happens
/// at the `collect`/`for_each`/`sum` terminal.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` (lazily; composes with further `map`s).
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, impl Fn(T) -> U + Sync> {
        ParMap { items: self.items, f }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        self.map(|x| {
            f(x);
        })
        .collect::<Vec<()>>();
    }

    /// Collects the items (no-op pipeline).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel pipeline over materialised items.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
    /// Chains another map stage.
    pub fn map<V: Send, G: Fn(U) -> V + Sync>(self, g: G) -> ParMap<T, impl Fn(T) -> V + Sync> {
        let f = self.f;
        ParMap { items: self.items, f: move |x| g(f(x)) }
    }

    /// Runs the pipeline across threads, preserving input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        run_parallel(self.items, &self.f).into_iter().collect()
    }

    /// Runs the pipeline for its side effects.
    pub fn for_each(self)
    where
        U: Send,
    {
        let _: Vec<U> = self.collect();
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        run_parallel(self.items, &self.f).into_iter().sum()
    }

    /// Reduces with `identity` and `op` (sequential fold over parallel
    /// results; associative ops only, as in rayon).
    pub fn reduce<ID: Fn() -> U, OP: Fn(U, U) -> U>(self, identity: ID, op: OP) -> U {
        run_parallel(self.items, &self.f).into_iter().fold(identity(), op)
    }
}

/// Fans `items` out over OS threads, applying `f`, preserving order.
fn run_parallel<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    run_parallel_with_threads(items, f, current_num_threads())
}

/// [`run_parallel`] with an explicit worker count (tests force it so the
/// concurrency proof does not depend on the host's core count or env vars).
fn run_parallel_with_threads<T: Send, U: Send, F: Fn(T) -> U + Sync>(
    items: Vec<T>,
    f: &F,
    threads: usize,
) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("each slot is drained exactly once");
                let out = f(item);
                *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner().unwrap_or_else(|p| p.into_inner()).expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<usize> = (0usize..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0usize..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<String> =
            vec![1, 2, 3].into_par_iter().map(|i| i + 1).map(|i| i.to_string()).collect();
        assert_eq!(out, vec!["2", "3", "4"]);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f64, 2.0, 3.0];
        let total: f64 = data.par_iter().map(|&x| x * 2.0).sum();
        assert_eq!(total, 12.0);
    }

    #[test]
    fn blocking_work_overlaps_across_workers() {
        // Even on a single-CPU host, forcing the worker count proves the
        // work items genuinely run concurrently: with 8 workers over 8
        // blocking items, at some instant more than one item is in flight.
        // (Occupancy counting, not wall-clock: load-insensitive.)
        use std::sync::atomic::{AtomicUsize, Ordering};
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<usize> = (0..8).collect();
        super::run_parallel_with_threads(
            items,
            &|_i| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(20));
                in_flight.fetch_sub(1, Ordering::SeqCst);
            },
            8,
        );
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "8 workers over 8 blocking items never overlapped"
        );
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        super::run_parallel_with_threads(
            items,
            &|_i| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                seen.lock().unwrap().insert(std::thread::current().id());
            },
            4,
        );
        assert!(seen.lock().unwrap().len() > 1, "expected multiple worker threads");
    }
}
