//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so this vendored
//! crate provides the `Serialize`/`Deserialize` **marker** traits plus the
//! matching derive macros. Types in the workspace keep their
//! `#[derive(Serialize, Deserialize)]` annotations (so they stay
//! serde-friendly for a future swap to the real crate), while actual
//! serialisation in the workspace is hand-rolled (see
//! `osdp_metrics::ResultTable::to_json` and the engine audit log).

#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serialisable types (stand-in for `serde::Serialize`).
pub trait Serialize {}

/// Marker for deserialisable types (stand-in for `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {}

/// Stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    (),
    bool,
    char,
    f32,
    f64,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    String,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<'a, T: Serialize + ?Sized> Serialize for &'a T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
