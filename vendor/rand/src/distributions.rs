//! The `rand::distributions` subset: [`Distribution`] and [`Standard`].

use crate::{Rng, RngCore};

/// A distribution over values of type `T` (mirror of
/// `rand::distributions::Distribution`).
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Draws an infinite iterator of samples.
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        Self: Sized,
        R: RngCore,
    {
        DistIter { distr: self, rng, _marker: std::marker::PhantomData }
    }
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// Iterator over samples, returned by [`Distribution::sample_iter`].
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: std::marker::PhantomData<T>,
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// The "natural" uniform distribution of a type: uniform bits for integers,
/// uniform `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $m:ident),*) => {
        $(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$m() as $t
                }
            }
        )*
    };
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    isize => next_u64);

/// Uniform distribution over a range (mirror of
/// `rand::distributions::Uniform`; `new` is half-open, `new_inclusive`
/// includes the upper bound).
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new requires low < high");
        Self { low, high, inclusive: false }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(low <= high, "Uniform::new_inclusive requires low <= high");
        Self { low, high, inclusive: true }
    }
}

impl<T: crate::SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(self.low, self.high, self.inclusive, rng)
    }
}
