//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the `rand` 0.8 API surface the OSDP workspace
//! uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`, `fill`), `distributions::Distribution`
//! with the `Standard` distribution, and `seq::SliceRandom`
//! (`shuffle`/`choose`). Semantics match `rand` (uniform ranges, 53-bit
//! uniform floats); exact bit-streams are *not* guaranteed to match the real
//! crate, which is fine because the workspace pins all determinism to
//! `ChaCha12Rng` seeds rather than golden values.

#![allow(clippy::all)]

pub mod distributions;
pub mod seq;

pub use distributions::Distribution;

/// The core of a random number generator (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 exactly
    /// like `rand_core::SeedableRng::seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (public domain), as used by rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(bytes.iter()) {
                *dst = *src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range (mirror of
/// `rand::distributions::uniform::SampleUniform`, collapsed into one trait so
/// that `Range<T>: SampleRange<T>` is a single generic impl — which is what
/// lets integer-literal ranges unify with the surrounding expression type).
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {
        $(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let span =
                        (high as i128 - low as i128 + if inclusive { 1 } else { 0 }) as u128;
                    let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (low as i128 + v as i128) as $t
                }
            }
        )*
    };
}

int_sample_uniform!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {
        $(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let u = if inclusive {
                        unit_f64_inclusive(rng)
                    } else {
                        unit_f64(rng)
                    } as $t;
                    low + u * (high - low)
                }
            }
        )*
    };
}

float_sample_uniform!(f32, f64);

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f64` in `[0, 1]`.
#[inline]
pub(crate) fn unit_f64_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// Extension methods on [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
    {
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills an integer slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Stand-in for `rand::rngs` exposing a `StdRng` pinned to a deterministic
/// xorshift-based generator (the workspace pins `ChaCha12Rng` everywhere, so
/// this exists only for API completeness).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64-based).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                for (dst, src) in chunk.iter_mut().zip(bytes.iter()) {
                    *dst = *src;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Self { state: u64::from_le_bytes(seed) }
        }
    }
}
