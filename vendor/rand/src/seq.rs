//! The `rand::seq` subset: [`SliceRandom`].

use crate::Rng;

/// Random operations on slices (mirror of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
