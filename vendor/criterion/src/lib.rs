//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the criterion API shape
//! used by the workspace benches: `Criterion` with
//! `sample_size`/`warm_up_time`/`measurement_time`, `bench_function`,
//! `benchmark_group` + `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros. Results
//! (mean iteration time over the measurement window) are printed to stdout in
//! a `name ... time: <mean>` format.

#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns the argument, opaque to the optimiser.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// No-op for CLI compatibility with the real crate.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher::new(
            self.criterion.sample_size,
            self.criterion.warm_up,
            self.criterion.measurement,
        );
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher::new(
            self.criterion.sample_size,
            self.criterion.warm_up,
            self.criterion.measurement,
        );
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (mirror of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", function.into(), parameter))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Times closures (mirror of `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mean_ns: Option<f64>,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize, warm_up: Duration, measurement: Duration) -> Self {
        Self { sample_size, warm_up, measurement, mean_ns: None, iters: 0 }
    }

    /// Times `f`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size the samples so the measurement window is roughly respected.
        let budget = self.measurement.as_secs_f64();
        let total_iters = ((budget / per_iter.max(1e-9)) as u64).max(self.sample_size as u64);
        let iters_per_sample = (total_iters / self.sample_size as u64).max(1);

        let mut total = Duration::ZERO;
        let mut timed_iters: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total += start.elapsed();
            timed_iters += iters_per_sample;
        }
        self.mean_ns = Some(total.as_nanos() as f64 / timed_iters as f64);
        self.iters = timed_iters;
    }

    /// Times `f` with per-batch setup, like `criterion::Bencher::iter_batched`.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut timed_iters: u64 = 0;
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(f(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            total += start.elapsed();
            timed_iters += 1;
        }
        self.mean_ns = Some(total.as_nanos() as f64 / timed_iters as f64);
        self.iters = timed_iters;
    }

    fn report(&self, name: &str) {
        match self.mean_ns {
            Some(ns) => println!("{name:<60} time: {:>12} ({} iters)", format_ns(ns), self.iters),
            None => println!("{name:<60} time: <no measurement>"),
        }
    }
}

/// Batch sizing hint (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Inputs of one element.
    PerIteration,
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions (mirror of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` (mirror of criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
