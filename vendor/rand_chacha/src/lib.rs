//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha stream cipher core (D. J. Bernstein) with 8,
//! 12 and 20 double-round variants behind the `rand` shim's
//! `RngCore`/`SeedableRng` traits. Output is a high-quality deterministic
//! stream keyed by the 256-bit seed; it is **not** bit-identical to the real
//! `rand_chacha` crate (which the workspace never relies on — determinism is
//! pinned to seeds, not golden values).

#![allow(clippy::all)]

use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($name:ident, $doc:literal, $rounds:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.core.next_u32()
            }
            #[inline]
            fn next_u64(&mut self) -> u64 {
                // Little-endian composition of two 32-bit outputs, matching
                // the rand_core BlockRngCore convention.
                let lo = self.core.next_u32() as u64;
                let hi = self.core.next_u32() as u64;
                lo | (hi << 32)
            }
            #[inline]
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                self.core.fill_bytes(dest)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Self { core: ChaChaCore::new(&seed) }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, "ChaCha with 8 rounds.", 4);
chacha_rng!(ChaCha12Rng, "ChaCha with 12 rounds.", 6);
chacha_rng!(ChaCha20Rng, "ChaCha with 20 rounds.", 10);

/// Number of independent ChaCha blocks computed per refill. The quarter
/// rounds are written element-wise over `[u32; LANES]` vectors, which LLVM
/// auto-vectorizes to 128-bit integer SIMD (baseline SSE2 on x86_64, NEON on
/// aarch64) — no intrinsics, no feature detection. The emitted keystream is
/// **bit-identical** to the one-block-at-a-time implementation: lane `l` of a
/// refill is exactly the standard ChaCha block at counter `base + l`, and the
/// blocks are emitted in counter order (guarded by the golden-keystream
/// regression test below).
const LANES: usize = 4;

/// The ChaCha block function, parameterised by the number of double rounds.
#[derive(Debug, Clone)]
struct ChaChaCore<const DOUBLE_ROUNDS: usize> {
    state: [u32; 16],
    buffer: [u32; 16 * LANES],
    index: usize,
}

/// One element-wise quarter round over four lane vectors.
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn quarter_round_lanes(working: &mut [[u32; LANES]; 16], a: usize, b: usize, c: usize, d: usize) {
    for l in 0..LANES {
        working[a][l] = working[a][l].wrapping_add(working[b][l]);
    }
    for l in 0..LANES {
        working[d][l] = (working[d][l] ^ working[a][l]).rotate_left(16);
    }
    for l in 0..LANES {
        working[c][l] = working[c][l].wrapping_add(working[d][l]);
    }
    for l in 0..LANES {
        working[b][l] = (working[b][l] ^ working[c][l]).rotate_left(12);
    }
    for l in 0..LANES {
        working[a][l] = working[a][l].wrapping_add(working[b][l]);
    }
    for l in 0..LANES {
        working[d][l] = (working[d][l] ^ working[a][l]).rotate_left(8);
    }
    for l in 0..LANES {
        working[c][l] = working[c][l].wrapping_add(working[d][l]);
    }
    for l in 0..LANES {
        working[b][l] = (working[b][l] ^ working[c][l]).rotate_left(7);
    }
}

impl<const DOUBLE_ROUNDS: usize> ChaChaCore<DOUBLE_ROUNDS> {
    fn new(seed: &[u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Block counter (words 12–13) and stream id (words 14–15) start at 0.
        Self { state, buffer: [0u32; 16 * LANES], index: 16 * LANES }
    }

    fn refill(&mut self) {
        let base = self.state[12] as u64 | ((self.state[13] as u64) << 32);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline, so the intrinsics are
        // always available on this architecture.
        unsafe {
            self.refill_sse2(base);
        }
        #[cfg(not(target_arch = "x86_64"))]
        self.refill_lanes(base);
        let advanced = base.wrapping_add(LANES as u64);
        self.state[12] = advanced as u32;
        self.state[13] = (advanced >> 32) as u32;
        self.index = 0;
    }

    /// Lane-parallel scalar refill (portable fallback; auto-vectorizes on
    /// targets whose baseline the compiler trusts with SIMD).
    #[cfg(not(target_arch = "x86_64"))]
    fn refill_lanes(&mut self, base: u64) {
        // Transpose the per-lane start states: `working[i][l]` is word `i`
        // of the block at counter `base + l`.
        let mut working = [[0u32; LANES]; 16];
        let mut start = [[0u32; LANES]; 16];
        for l in 0..LANES {
            let counter = base.wrapping_add(l as u64);
            for i in 0..16 {
                start[i][l] = match i {
                    12 => counter as u32,
                    13 => (counter >> 32) as u32,
                    _ => self.state[i],
                };
            }
        }
        working.copy_from_slice(&start);
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round_lanes(&mut working, 0, 4, 8, 12);
            quarter_round_lanes(&mut working, 1, 5, 9, 13);
            quarter_round_lanes(&mut working, 2, 6, 10, 14);
            quarter_round_lanes(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round_lanes(&mut working, 0, 5, 10, 15);
            quarter_round_lanes(&mut working, 1, 6, 11, 12);
            quarter_round_lanes(&mut working, 2, 7, 8, 13);
            quarter_round_lanes(&mut working, 3, 4, 9, 14);
        }
        // Emit the blocks in counter order.
        for l in 0..LANES {
            for i in 0..16 {
                self.buffer[16 * l + i] = working[i][l].wrapping_add(start[i][l]);
            }
        }
    }

    /// SSE2 refill: `v[i]` holds word `i` of all four blocks, one block per
    /// 32-bit lane, so every quarter-round instruction advances four blocks
    /// at once. Emits the bit-identical keystream of four sequential
    /// single-block refills (golden-tested).
    #[cfg(target_arch = "x86_64")]
    unsafe fn refill_sse2(&mut self, base: u64) {
        use std::arch::x86_64::*;

        #[inline(always)]
        unsafe fn rol<const L: i32, const R: i32>(x: __m128i) -> __m128i {
            _mm_or_si128(_mm_slli_epi32::<L>(x), _mm_srli_epi32::<R>(x))
        }

        #[inline(always)]
        unsafe fn quarter_round(v: &mut [__m128i; 16], a: usize, b: usize, c: usize, d: usize) {
            v[a] = _mm_add_epi32(v[a], v[b]);
            v[d] = rol::<16, 16>(_mm_xor_si128(v[d], v[a]));
            v[c] = _mm_add_epi32(v[c], v[d]);
            v[b] = rol::<12, 20>(_mm_xor_si128(v[b], v[c]));
            v[a] = _mm_add_epi32(v[a], v[b]);
            v[d] = rol::<8, 24>(_mm_xor_si128(v[d], v[a]));
            v[c] = _mm_add_epi32(v[c], v[d]);
            v[b] = rol::<7, 25>(_mm_xor_si128(v[b], v[c]));
        }

        // Per-lane counters (the u64 add may carry into the high word).
        let counters: [u64; LANES] =
            [base, base.wrapping_add(1), base.wrapping_add(2), base.wrapping_add(3)];
        let mut start = [_mm_setzero_si128(); 16];
        for (i, slot) in start.iter_mut().enumerate() {
            *slot = match i {
                // _mm_set_epi32 takes lanes most-significant first.
                12 => _mm_set_epi32(
                    counters[3] as u32 as i32,
                    counters[2] as u32 as i32,
                    counters[1] as u32 as i32,
                    counters[0] as u32 as i32,
                ),
                13 => _mm_set_epi32(
                    (counters[3] >> 32) as u32 as i32,
                    (counters[2] >> 32) as u32 as i32,
                    (counters[1] >> 32) as u32 as i32,
                    (counters[0] >> 32) as u32 as i32,
                ),
                _ => _mm_set1_epi32(self.state[i] as i32),
            };
        }
        let mut v = start;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut v, 0, 4, 8, 12);
            quarter_round(&mut v, 1, 5, 9, 13);
            quarter_round(&mut v, 2, 6, 10, 14);
            quarter_round(&mut v, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut v, 0, 5, 10, 15);
            quarter_round(&mut v, 1, 6, 11, 12);
            quarter_round(&mut v, 2, 7, 8, 13);
            quarter_round(&mut v, 3, 4, 9, 14);
        }
        // Add the start state and scatter lane `l` of `v[i]` to
        // `buffer[16·l + i]` — blocks emitted in counter order.
        for i in 0..16 {
            let summed = _mm_add_epi32(v[i], start[i]);
            let mut lanes = [0u32; LANES];
            _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, summed);
            for (l, &lane) in lanes.iter().enumerate() {
                self.buffer[16 * l + i] = lane;
            }
        }
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 * LANES {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    /// Bulk byte generation: consumes the keystream exactly like the
    /// per-chunk `next_u32` loop (each 4-byte chunk of `dest` takes one
    /// buffered word, little-endian; a ragged tail consumes a full word and
    /// writes its leading bytes), but copies whole buffered runs per
    /// iteration instead of paying a call and an index check per word. This
    /// is the hot path of the noise crate's block fill kernels.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        let mut pending: usize = chunks.len();
        while pending > 0 {
            if self.index >= 16 * LANES {
                self.refill();
            }
            let take = (16 * LANES - self.index).min(pending);
            for word in &self.buffer[self.index..self.index + take] {
                let chunk = chunks.next().expect("counted above");
                chunk.copy_from_slice(&word.to_le_bytes());
            }
            self.index += take;
            pending -= take;
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            for (dst, src) in tail.iter_mut().zip(bytes.iter()) {
                *dst = *src;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden keystream values captured from the one-block-at-a-time
    /// reference implementation: the lane-parallel refill must emit the
    /// bit-identical stream (words 0–5 and 34–39 cross the old 16-word
    /// refill boundary and the first lane-group boundary).
    #[test]
    fn lane_parallel_refill_matches_the_reference_keystream() {
        fn check<R: RngCore>(mut rng: R, head: [u32; 6], tail: [u32; 6]) {
            let stream: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
            assert_eq!(&stream[..6], &head);
            assert_eq!(&stream[34..], &tail);
        }
        check(
            ChaCha8Rng::seed_from_u64(0),
            [3561426318, 2941922952, 140090701, 1812399852, 372196052, 1460329083],
            [2096143936, 479288469, 3088531737, 4156079450, 1652471937, 1538577659],
        );
        check(
            ChaCha12Rng::seed_from_u64(0),
            [122525605, 793263083, 1732627808, 596249967, 3963059724, 3009702452],
            [709920924, 883516989, 934713979, 2174146965, 3099820069, 2383524739],
        );
        check(
            ChaCha12Rng::seed_from_u64(7),
            [1538782788, 2063621452, 2175064746, 1787716130, 2348365046, 3559847147],
            [3139216864, 136606814, 1917622844, 3493156019, 231745330, 2262123893],
        );
        check(
            ChaCha12Rng::seed_from_u64(123456789),
            [834289022, 1688394300, 3911349226, 1283342354, 1743281435, 2450133257],
            [3508802538, 2782001192, 3185286108, 2072349545, 2919589669, 4062534603],
        );
        check(
            ChaCha20Rng::seed_from_u64(0),
            [3104780436, 3556145185, 1869797111, 1751127580, 1951439846, 1435794904],
            [3042286934, 1083535257, 3671603077, 4114109030, 1096038819, 3918854516],
        );
        check(
            ChaCha20Rng::seed_from_u64(123456789),
            [2026333869, 300174550, 2630169268, 3234399590, 1044122990, 1542506070],
            [1187671850, 1385402006, 1494244711, 541880518, 1948359390, 2850009797],
        );
    }

    #[test]
    fn fill_bytes_matches_the_word_stream() {
        // fill_bytes is specified to emit the next_u32 word stream in LE
        // bytes, including across refill boundaries and ragged tails.
        let mut words = ChaCha12Rng::seed_from_u64(99);
        let mut bytes = ChaCha12Rng::seed_from_u64(99);
        let mut buf = vec![0u8; 4 * 150];
        bytes.fill_bytes(&mut buf);
        for chunk in buf.chunks_exact(4) {
            assert_eq!(u32::from_le_bytes(chunk.try_into().unwrap()), words.next_u32());
        }
        // Ragged tail: consumes one word, emits its leading bytes.
        let mut tail = [0u8; 3];
        bytes.fill_bytes(&mut tail);
        assert_eq!(tail, words.next_u32().to_le_bytes()[..3]);
        // Both generators remain aligned afterwards.
        assert_eq!(bytes.next_u32(), words.next_u32());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let mut c = ChaCha12Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_known_answer() {
        // RFC 8439 test vector 2.3.2: key 00..1f, counter 1, nonce
        // 000000090000004a00000000. Our stream-id layout differs from the RFC
        // nonce layout, so instead verify the keystream changes across blocks
        // and the state layout constants are correct.
        let seed: [u8; 32] = std::array::from_fn(|i| i as u8);
        let mut rng = ChaCha20Rng::from_seed(seed);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second, "blocks must differ as the counter advances");
    }

    #[test]
    fn fill_bytes_covers_ragged_lengths() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
