//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha stream cipher core (D. J. Bernstein) with 8,
//! 12 and 20 double-round variants behind the `rand` shim's
//! `RngCore`/`SeedableRng` traits. Output is a high-quality deterministic
//! stream keyed by the 256-bit seed; it is **not** bit-identical to the real
//! `rand_chacha` crate (which the workspace never relies on — determinism is
//! pinned to seeds, not golden values).

#![allow(clippy::all)]

use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($name:ident, $doc:literal, $rounds:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                // Little-endian composition of two 32-bit outputs, matching
                // the rand_core BlockRngCore convention.
                let lo = self.core.next_u32() as u64;
                let hi = self.core.next_u32() as u64;
                lo | (hi << 32)
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let bytes = self.core.next_u32().to_le_bytes();
                    for (dst, src) in chunk.iter_mut().zip(bytes.iter()) {
                        *dst = *src;
                    }
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Self { core: ChaChaCore::new(&seed) }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, "ChaCha with 8 rounds.", 4);
chacha_rng!(ChaCha12Rng, "ChaCha with 12 rounds.", 6);
chacha_rng!(ChaCha20Rng, "ChaCha with 20 rounds.", 10);

/// The ChaCha block function, parameterised by the number of double rounds.
#[derive(Debug, Clone)]
struct ChaChaCore<const DOUBLE_ROUNDS: usize> {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaCore<DOUBLE_ROUNDS> {
    fn new(seed: &[u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Block counter (words 12–13) and stream id (words 14–15) start at 0.
        Self { state, buffer: [0u32; 16], index: 16 }
    }

    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = working[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let mut c = ChaCha12Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_known_answer() {
        // RFC 8439 test vector 2.3.2: key 00..1f, counter 1, nonce
        // 000000090000004a00000000. Our stream-id layout differs from the RFC
        // nonce layout, so instead verify the keystream changes across blocks
        // and the state layout constants are correct.
        let seed: [u8; 32] = std::array::from_fn(|i| i as u8);
        let mut rng = ChaCha20Rng::from_seed(seed);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second, "blocks must differ as the counter advances");
    }

    #[test]
    fn fill_bytes_covers_ragged_lengths() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
