//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape used by the workspace (`lock()`
//! without poisoning) on top of the standard library primitives. Poisoned
//! locks are recovered transparently, matching `parking_lot`'s behaviour of
//! not propagating panics through locks.

#![allow(clippy::all)]

use std::fmt;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning `lock()`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
