//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: range and tuple [`Strategy`]s, `prop_map`, `prop::collection::vec`,
//! `Just`, the [`proptest!`] macro with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and
//! `prop_assert!`/`prop_assert_eq!`. Unlike the real crate there is no input
//! shrinking — failing cases report the generated inputs via the panic
//! message instead — which keeps the vendored dependency tiny while
//! preserving the tests' coverage.

#![allow(clippy::all)]

/// Re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    /// Mirror of `proptest::prelude::prop` (the crate itself).
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Mirror of `proptest::collection`.
pub mod collection {
    use crate::{SizeRange, Strategy, TestRng};

    /// Strategy for vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a deterministic generator from a label (the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in label.as_bytes() {
            state ^= u64::from(*b);
            state = state.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generation strategy for one input of a property.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*
    };
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    start + (rng.unit_f64() as $t) * (end - start)
                }
            }
        )*
    };
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// The size specification accepted by [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.max_exclusive - self.min).max(1);
        self.min + (rng.next_u64() as usize) % span
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max_exclusive: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max_exclusive: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

/// Defines property tests (mirror of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property (mirror of `prop_assert!`; panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality (mirror of `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality (mirror of `prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0.0f64..=1.0, (a, b) in (0u64..5, 1i64..4)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(a < 5 && (1..4).contains(&b));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(0u32..100, 1..16).prop_map(|v| v.len())) {
            prop_assert!((1..16).contains(&v));
        }
    }
}
