//! Quickstart: define a policy, release true records with `OsdpRR`, answer a
//! histogram query with one-sided noise, and keep the budget accounted.
//!
//! Run with: `cargo run --example quickstart`

use osdp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(2024);

    // ------------------------------------------------------------------
    // 1. A database in which some records are sensitive by policy.
    //    Here: people who opted out of data sharing, plus all minors.
    // ------------------------------------------------------------------
    let db: Database = (0..5_000u32)
        .map(|i| {
            Record::builder()
                .field("age", Value::Int(15 + (i % 60) as i64))
                .field("opt_in", Value::Bool(i % 10 != 0))
                .field("zone", Value::Categorical(i % 16))
                .build()
        })
        .collect();

    let minors = AttributePolicy::sensitive_when("age", |v| v.as_int().unwrap_or(0) <= 17);
    let opt_outs = AttributePolicy::opt_in("opt_in");
    // A record is protected if *either* policy marks it sensitive, i.e. it is
    // non-sensitive only when both agree it is — the minimum relaxation is the
    // policy under which a composed release is accounted.
    let policy = ClosurePolicy::new("minors-or-opt-outs", move |r: &Record| {
        minors.is_sensitive(r) || opt_outs.is_sensitive(r)
    });

    println!("database size          : {}", db.len());
    println!("sensitive records      : {}", db.count_sensitive(&policy));
    println!("non-sensitive records  : {}", db.count_non_sensitive(&policy));

    // ------------------------------------------------------------------
    // 2. Release TRUE records with OsdpRR under (P, 1.0)-OSDP.
    // ------------------------------------------------------------------
    let accountant = BudgetAccountant::with_limit(2.0).expect("valid budget");
    let rr = OsdpRr::new(1.0).expect("valid epsilon");
    let sample = rr.release(&db, &policy, &mut rng);
    accountant
        .spend("OsdpRR", "minors-or-opt-outs", rr.epsilon(), PrivacyGuarantee::OneSided)
        .expect("within budget");
    println!(
        "\nOsdpRR released {} true records ({:.1}% of the non-sensitive ones; expected {:.1}%)",
        sample.len(),
        100.0 * sample.len() as f64 / db.count_non_sensitive(&policy) as f64,
        100.0 * rr.keep_probability(),
    );

    // ------------------------------------------------------------------
    // 3. Answer a 16-bin histogram query (count per zone) with one-sided
    //    Laplace noise on the non-sensitive records.
    // ------------------------------------------------------------------
    let full = db.histogram_by(16, |r| r.categorical("zone").ok().map(|z| z as usize));
    let non_sensitive = db
        .non_sensitive_subset(&policy)
        .histogram_by(16, |r| r.categorical("zone").ok().map(|z| z as usize));
    let task = HistogramTask::new(full.clone(), non_sensitive).expect("x_ns is a sub-histogram");

    let one_sided = OsdpLaplaceL1::new(1.0).expect("valid epsilon");
    let estimate = one_sided.release(&task, &mut rng);
    accountant
        .spend("OsdpLaplaceL1", "minors-or-opt-outs", 1.0, PrivacyGuarantee::OneSided)
        .expect("within budget");

    let dp_baseline = DpLaplaceHistogram::new(1.0).expect("valid epsilon");
    let dp_estimate = dp_baseline.release(&task, &mut rng);

    println!("\nzone histogram (first 8 bins):");
    println!("  true        : {:?}", &full.counts()[..8].iter().map(|c| *c as i64).collect::<Vec<_>>());
    println!("  OSDP        : {:?}", &estimate.counts()[..8].iter().map(|c| c.round() as i64).collect::<Vec<_>>());
    println!("  DP Laplace  : {:?}", &dp_estimate.counts()[..8].iter().map(|c| c.round() as i64).collect::<Vec<_>>());
    println!(
        "  MRE: OSDP = {:.4}, DP = {:.4}",
        mean_relative_error(&full, &estimate).unwrap(),
        mean_relative_error(&full, &dp_estimate).unwrap(),
    );

    // ------------------------------------------------------------------
    // 4. The accountant has tracked the composition (Theorem 3.3).
    // ------------------------------------------------------------------
    let (total, policies) = accountant.composed_guarantee();
    println!("\ntotal budget spent: {total} under the minimum relaxation of {policies:?}");
    println!("remaining         : {:?}", accountant.remaining());
}
