//! Quickstart: open an `OsdpSession` — the audited front door that binds
//! database, policy and budget — then release true records with `OsdpRR`,
//! answer a histogram query with one-sided noise, and let the session refuse
//! anything the budget cannot cover.
//!
//! Run with: `cargo run --example quickstart`

use osdp::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A database in which some records are sensitive by policy.
    //    Here: people who opted out of data sharing, plus all minors.
    // ------------------------------------------------------------------
    let db: Database = (0..5_000u32)
        .map(|i| {
            Record::builder()
                .field("age", Value::Int(15 + (i % 60) as i64))
                .field("opt_in", Value::Bool(i % 10 != 0))
                .field("zone", Value::Categorical(i % 16))
                .build()
        })
        .collect();

    let minors = AttributePolicy::sensitive_when("age", |v| v.as_int().unwrap_or(0) <= 17);
    let opt_outs = AttributePolicy::opt_in("opt_in");
    // A record is protected if *either* policy marks it sensitive.
    let policy = ClosurePolicy::new("minors-or-opt-outs", move |r: &Record| {
        minors.is_sensitive(r) || opt_outs.is_sensitive(r)
    });

    println!("database size          : {}", db.len());
    println!("sensitive records      : {}", db.count_sensitive(&policy));
    println!("non-sensitive records  : {}", db.count_non_sensitive(&policy));
    let non_sensitive = db.count_non_sensitive(&policy);

    // ------------------------------------------------------------------
    // 2. Open the session: database + policy + a 2.0 budget cap. Every
    //    release below debits this budget *before* sampling and lands in
    //    the audit log. `.columnar()` snapshots the records into a
    //    ColumnarFrame; the closure policy above has no compiled form, so
    //    scans transparently fall back to the retained rows (and cache the
    //    policy partition) — the output is identical to the row backend.
    // ------------------------------------------------------------------
    let session = SessionBuilder::new(db)
        .columnar()
        .policy(policy, "minors-or-opt-outs")
        .budget(2.0)
        .seed(2024)
        .build()
        .expect("valid session");

    // ------------------------------------------------------------------
    // 3. Release TRUE records with OsdpRR under (P, 1.0)-OSDP.
    // ------------------------------------------------------------------
    let rr = OsdpRr::new(1.0).expect("valid epsilon");
    let sample = session.release_records(&rr).expect("within budget");
    println!(
        "\nOsdpRR released {} true records ({:.1}% of the non-sensitive ones; expected {:.1}%)",
        sample.len(),
        100.0 * sample.len() as f64 / non_sensitive as f64,
        100.0 * rr.keep_probability(),
    );

    // ------------------------------------------------------------------
    // 4. Answer a 16-bin histogram query (count per zone) with one-sided
    //    Laplace noise. The session derives x and x_ns from the bound
    //    policy — callers never assemble the task by hand.
    // ------------------------------------------------------------------
    let zones = SessionQuery::count_by("zone-histogram", 16, |r: &Record| {
        r.categorical("zone").ok().map(|z| z as usize)
    });
    let one_sided = OsdpLaplaceL1::new(1.0).expect("valid epsilon");
    let release = session.release(&zones, &one_sided).expect("within budget");
    println!(
        "\nzone histogram (first 8 bins, {}):",
        release.guarantee // e.g. "(P, 1)-OSDP"
    );
    println!(
        "  OSDP estimate : {:?}",
        &release.estimate.counts()[..8].iter().map(|c| c.round() as i64).collect::<Vec<_>>()
    );

    // ------------------------------------------------------------------
    // 5. The budget is exhausted: the session REFUSES the next release.
    //    Nothing is sampled, nothing can leak.
    // ------------------------------------------------------------------
    let refused = session.release(&zones, &one_sided);
    println!("\nthird release: {refused:?}");
    assert!(matches!(refused, Err(OsdpError::BudgetExhausted { .. })));

    // ------------------------------------------------------------------
    // 6. The audit trail: composition (Theorem 3.3) + the attack-side
    //    verifier agree the session upheld its contract.
    // ------------------------------------------------------------------
    let (total, policies) = session.composed_guarantee();
    println!("\ntotal budget spent: {total} under the minimum relaxation of {policies:?}");
    println!("remaining         : {:?}", session.remaining_budget());
    let verdict = osdp::attack::verify_ledger(&session.audit_ledger(), Some(2.0));
    println!(
        "audit verdict     : within_limit = {}, exclusion-attack surface = {:?}",
        verdict.within_limit, verdict.pdp_entries
    );
    println!("\naudit log:\n{}", session.audit_json());
}
