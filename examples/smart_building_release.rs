//! Smart-building scenario (the paper's running example): release true daily
//! trajectories from an indoor-localisation deployment while protecting the
//! trajectories that pass through sensitive locations.
//!
//! The example simulates a 64-access-point building, defines the paper's
//! access-point-level policies `Pρ`, releases a trajectory sample with
//! `OsdpRR`, and shows (a) why the naive "publish everything non-sensitive"
//! strategy is an exclusion attack waiting to happen and (b) how much
//! analytical value the OSDP sample still carries (n-gram statistics).
//!
//! Run with: `cargo run --release --example smart_building_release`

use osdp::data::tippers::{generate_dataset, policy_for_ratio, NgramCounts, TippersConfig};
use osdp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(42);

    // Simulate a month of movement in the building.
    let config = TippersConfig { users: 600, days: 12, ..TippersConfig::default() };
    let dataset = generate_dataset(&config, &mut rng);
    println!(
        "simulated {} daily trajectories for {} people over {} days",
        dataset.len(),
        dataset.population().len(),
        config.days
    );

    // The policy: trajectories passing through a sensitive access point
    // (lounges, restrooms) are sensitive. P90 leaves ~90% non-sensitive.
    let policy = policy_for_ratio(&dataset, 0.90);
    let db: Database<_> = dataset.trajectories().to_vec().into_iter().collect();
    println!(
        "policy {} marks {} access points sensitive; {:.1}% of trajectories are non-sensitive",
        policy.label(),
        policy.sensitive_aps().len(),
        100.0 * db.non_sensitive_ratio(&policy)
    );

    // The exclusion-attack problem with access control / personalized DP:
    // releasing ALL non-sensitive trajectories lets an observer conclude that
    // every missing person was somewhere sensitive.
    let phi_truthful = osdp::attack::exclusion_attack_phi(
        &osdp::attack::TruthfulModel,
        &ClosurePolicy::new("demo", |&v: &u32| v >= 4),
        8,
    );
    println!(
        "\ntruthful release of non-sensitive data: exclusion-attack exponent phi = {phi_truthful} (unbounded!)"
    );

    // OsdpRR instead releases a true sample under (P, eps)-OSDP, through an
    // audited session that binds the trajectory database to the AP policy
    // and enforces the building's release budget.
    let epsilon = 1.0;
    let db_len = db.len();
    let session = SessionBuilder::new(db)
        .policy(policy.clone(), policy.label())
        .budget(epsilon)
        .seed(42)
        .build()
        .expect("valid session");
    let rr = OsdpRr::new(epsilon).expect("valid epsilon");
    let released = session.release_records(&rr).expect("within the building budget");
    println!(
        "OsdpRR(eps = {epsilon}) released {} true trajectories ({:.1}% of the database), phi = {epsilon}",
        released.len(),
        100.0 * released.len() as f64 / db_len as f64
    );
    // The budget is spent: a second sample is refused outright.
    assert!(session.release_records(&rr).is_err());

    // The released sample supports real analyses: 3-gram mobility statistics.
    let ap_count = dataset.building().ap_count();
    let truth =
        NgramCounts::from_trajectories(dataset.trajectories(), 3, ap_count, None).into_counts();
    let sample_counts =
        NgramCounts::from_trajectories(released.iter(), 3, ap_count, None).into_counts();
    println!(
        "\n3-gram mobility statistics: {} distinct true 3-grams, {} observed in the sample",
        truth.support_size(),
        sample_counts.support_size()
    );
    println!(
        "full-domain MRE of the sampled 3-gram histogram: {:.6}",
        truth.mean_relative_error(&sample_counts)
    );

    // The most common corridors (3-grams) survive the sampling with their
    // ranking intact — the kind of aggregate facility managers actually use.
    let mut top_true: Vec<(u64, f64)> = truth.iter().collect();
    top_true.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop corridors (3-gram id: true users vs users in released sample):");
    for (gram, count) in top_true.into_iter().take(5) {
        println!("  {gram:>12}: {:>5} vs {:>5}", count, sample_counts.get(gram));
    }
}
