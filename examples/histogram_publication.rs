//! Publishing a 1-D histogram under OSDP: compares the whole algorithm pool
//! of the paper (4 OSDP + 2 DP mechanisms) on a benchmark dataset, under both
//! a "Close" and a "Far" opt-in/opt-out policy.
//!
//! Run with: `cargo run --release --example histogram_publication`

use osdp::data::sampling::{sample_policy, PolicyKind};
use osdp::data::BenchmarkDataset;
use osdp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let epsilon = 1.0;
    let dataset = BenchmarkDataset::Adult;
    let full = dataset.generate(&mut rng);
    println!(
        "dataset {}: {} bins, scale {}, sparsity {:.2}",
        dataset.name(),
        full.len(),
        full.total(),
        full.sparsity()
    );

    let pool: Vec<Box<dyn HistogramMechanism>> = vec![
        Box::new(OsdpRrHistogram::new(epsilon).unwrap()),
        Box::new(OsdpLaplace::new(epsilon).unwrap()),
        Box::new(OsdpLaplaceL1::new(epsilon).unwrap()),
        Box::new(Dawaz::new(epsilon).unwrap()),
        Box::new(DpLaplaceHistogram::new(epsilon).unwrap()),
        Box::new(DawaHistogram::new(epsilon).unwrap()),
    ];

    for kind in [PolicyKind::Close, PolicyKind::Far] {
        for rho in [0.9, 0.5] {
            let policy = sample_policy(kind, &full, rho, &mut rng).expect("valid parameters");
            let task = HistogramTask::new(full.clone(), policy.non_sensitive)
                .expect("sampled sub-histogram");
            println!(
                "\npolicy = {:>5}, non-sensitive ratio = {:.0}% (achieved {:.1}%)",
                kind.name(),
                rho * 100.0,
                100.0 * task.non_sensitive_ratio()
            );
            println!("  {:<16} {:>10} {:>10} {:>10}", "algorithm", "MRE", "Rel50", "Rel95");
            for mechanism in &pool {
                // Average a few runs so the ranking is stable.
                let mut mre = 0.0;
                let mut rel50 = 0.0;
                let mut rel95 = 0.0;
                let trials = 5;
                for _ in 0..trials {
                    let estimate = mechanism.release(&task, &mut rng);
                    mre += mean_relative_error(task.full(), &estimate).unwrap();
                    rel50 += relative_error_percentile(task.full(), &estimate, REL50).unwrap();
                    rel95 += relative_error_percentile(task.full(), &estimate, REL95).unwrap();
                }
                println!(
                    "  {:<16} {:>10.4} {:>10.4} {:>10.4}",
                    mechanism.name(),
                    mre / trials as f64,
                    rel50 / trials as f64,
                    rel95 / trials as f64
                );
            }
        }
    }

    println!(
        "\nTakeaway: with mostly non-sensitive records the one-sided mechanisms dominate the \
         DP baselines; as the sensitive share grows (or the policy becomes value-correlated) \
         DAWAz — which uses both the non-sensitive records and a DP pass over everything — \
         is the safest choice."
    );
}
