//! Publishing a 1-D histogram under OSDP: compares the whole algorithm pool
//! of the paper (4 OSDP + 2 DP mechanisms) on a benchmark dataset, under both
//! a "Close" and a "Far" opt-in/opt-out policy.
//!
//! Run with: `cargo run --release --example histogram_publication`

use osdp::data::sampling::{sample_policy, PolicyKind};
use osdp::data::BenchmarkDataset;
use osdp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let epsilon = 1.0;
    let dataset = BenchmarkDataset::Adult;
    let full = dataset.generate(&mut rng);
    println!(
        "dataset {}: {} bins, scale {}, sparsity {:.2}",
        dataset.name(),
        full.len(),
        full.total(),
        full.sparsity()
    );

    // The Section 6.3.3 pool (4 OSDP + 2 DP algorithms), resolved by name
    // through the MechanismSpec registry.
    let pool = pool_from_names(
        &["OsdpRR", "OsdpLaplace", "OsdpLaplaceL1", "DAWAz", "Laplace", "DAWA"],
        epsilon,
    )
    .expect("registry pool");

    for kind in [PolicyKind::Close, PolicyKind::Far] {
        for rho in [0.9, 0.5] {
            let policy = sample_policy(kind, &full, rho, &mut rng).expect("valid parameters");
            let achieved = policy.non_sensitive.total() / full.total();
            // One audited session per sampled policy; every mechanism
            // releases against the session-held (x, x_ns) pair.
            let session = histogram_session(full.clone(), policy.non_sensitive)
                .policy_label(format!("{}-{rho}", kind.name()))
                .seed(7 ^ (rho * 100.0) as u64 ^ kind.name().len() as u64)
                .build()
                .expect("sampled sub-histogram");
            println!(
                "\npolicy = {:>5}, non-sensitive ratio = {:.0}% (achieved {:.1}%)",
                kind.name(),
                rho * 100.0,
                100.0 * achieved
            );
            println!(
                "  {:<16} {:<5} {:>10} {:>10} {:>10}",
                "algorithm", "kind", "MRE", "Rel50", "Rel95"
            );
            for mechanism in &pool {
                // Average a few runs so the ranking is stable; the session
                // runs the trials one per core.
                let trials = 5;
                let estimates = session
                    .release_trials(&SessionQuery::bound(), mechanism, trials)
                    .expect("uncapped session");
                let mut mre = 0.0;
                let mut rel50 = 0.0;
                let mut rel95 = 0.0;
                for estimate in &estimates {
                    mre += mean_relative_error(&full, estimate).unwrap();
                    rel50 += relative_error_percentile(&full, estimate, REL50).unwrap();
                    rel95 += relative_error_percentile(&full, estimate, REL95).unwrap();
                }
                println!(
                    "  {:<16} {:<5} {:>10.4} {:>10.4} {:>10.4}",
                    mechanism.name(),
                    mechanism.guarantee().label(),
                    mre / trials as f64,
                    rel50 / trials as f64,
                    rel95 / trials as f64
                );
            }
        }
    }

    println!(
        "\nTakeaway: with mostly non-sensitive records the one-sided mechanisms dominate the \
         DP baselines; as the sensitive share grows (or the policy becomes value-correlated) \
         DAWAz — which uses both the non-sensitive records and a DP pass over everything — \
         is the safest choice."
    );
}
