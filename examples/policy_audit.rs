//! Auditing release strategies for exclusion attacks.
//!
//! Given a value-correlated policy (the upper half of the value domain is
//! sensitive), this example computes — exactly — the exclusion-attack
//! exponent φ (Definition 3.4) and the tightest OSDP ε of several release
//! strategies, and shows the Bayesian posterior an adversary reaches after
//! observing that a target record was withheld.
//!
//! Run with: `cargo run --example policy_audit`

use osdp::attack::release_models::Outcome;
use osdp::attack::{
    exclusion_attack_phi, posterior_odds_ratio, verify_osdp_on_singletons, DpGeometricModel,
    OsdpRrModel, ProductPrior, ReleaseModel, SuppressModel, TruthfulModel,
};
use osdp::prelude::*;

fn main() {
    const DOMAIN: u32 = 8;
    let epsilon = 1.0;
    // Records with values in the upper half of the domain are sensitive
    // (think: locations 4..8 are the restrooms and the smoker's lounge).
    let policy = ClosurePolicy::new("upper-half-sensitive", |&v: &u32| v >= DOMAIN / 2);

    let strategies: Vec<(&str, Box<dyn ReleaseModel>)> = vec![
        ("OsdpRR (eps=1)", Box::new(OsdpRrModel { epsilon })),
        ("plain DP (eps=1)", Box::new(DpGeometricModel { epsilon })),
        ("Suppress tau=10", Box::new(SuppressModel { tau: 10.0 })),
        ("Suppress tau=100", Box::new(SuppressModel { tau: 100.0 })),
        ("truthful non-sensitive release", Box::new(TruthfulModel)),
    ];

    println!("{:<34} {:>12} {:>22}", "strategy", "phi", "tightest OSDP epsilon");
    println!("{}", "-".repeat(70));
    for (name, model) in &strategies {
        let phi = exclusion_attack_phi(model.as_ref(), &policy, DOMAIN);
        let osdp = verify_osdp_on_singletons(model.as_ref(), &policy, DOMAIN);
        println!("{:<34} {:>12.4} {:>22.4}", name, phi, osdp.tightest_epsilon);
    }

    // The adversary's view: Bob's record did not appear in the release.
    // How much do the odds shift towards "Bob was somewhere sensitive"?
    let prior = ProductPrior::uniform(DOMAIN as usize).expect("non-empty domain");
    let sensitive_value = 5u32; // e.g. the smoker's lounge
    let innocuous_value = 1u32; // e.g. an office
    println!(
        "\nAfter observing that the target record was withheld, the odds of \
         'value = {sensitive_value} (sensitive)' against 'value = {innocuous_value}' change by:"
    );
    for (name, model) in &strategies {
        let ratio = posterior_odds_ratio(
            model.as_ref(),
            &policy,
            &prior,
            Outcome::Suppressed,
            sensitive_value,
            innocuous_value,
        );
        match ratio {
            Some(r) if r.is_infinite() => {
                println!("  {name:<34} certainty — the adversary KNOWS the record was sensitive")
            }
            Some(r) => println!("  {name:<34} x{r:.3}"),
            None => println!("  {name:<34} (this strategy never produces that observation)"),
        }
    }

    println!(
        "\nOnly the OSDP and DP strategies keep the shift bounded by e^eps = {:.3}; \
         Suppress pays e^tau, and the truthful release hands the adversary certainty.",
        epsilon.exp()
    );
}
