//! The session task cache: derive each [`HistogramTask`] once, serve it to
//! every release that asks the same question.
//!
//! Pool runners (the regret and crossover experiments of Section 6.3.3.2)
//! release the *same query under the same policy* through every mechanism of
//! a pool; before this cache each `release_trials` call re-ran the backend
//! scan, so an 8-mechanism pool paid for 8 identical scans. The cache keys a
//! derived task by the **identities** that determine the scan's result —
//! query (bin count + bin-closure allocation), policy allocation, and backend
//! allocation; the human-readable query/policy labels are projections of
//! those identities and never influence a scan's output. Each entry retains
//! the `Arc`s whose addresses key it, so an address can never be recycled
//! into a colliding key while the entry lives (the same no-ABA argument as
//! the backend partition cache).
//!
//! Data behind a backend is immutable for the backend's lifetime, so entries
//! never go stale; the cache is capacity-bounded and cleared when full (a
//! pure cache: results are recomputed, never wrong).

use crate::backend::Backend;
use osdp_core::error::Result;
use osdp_core::frame::BinSpec;
use osdp_core::policy::Policy;
use osdp_mechanisms::HistogramTask;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cap on cached tasks per session (a pool experiment uses one entry per
/// bound query; 64 covers any realistic workload with room to spare).
const TASK_CACHE_CAP: usize = 64;

/// Identity key: `(bins, bin-closure, policy, backend)` allocations, plus
/// the query's compiled bin spec **by value** — a hand-built query can pair
/// an existing closure `Arc` with a different spec, and columnar backends
/// scan through the spec, so spec-divergent queries must not share an entry.
type TaskKey = (usize, usize, usize, usize, Option<BinSpec>);

/// The row-level bin assignment closure, as stored by queries and plans.
type BinOf<R> = Arc<dyn Fn(&R) -> Option<usize> + Send + Sync>;

/// A cached derivation plus the pinned allocations that key it.
struct TaskEntry<R> {
    /// Pinned so the closure allocation outlives the entry (no ABA).
    _bin_of: BinOf<R>,
    /// Pinned so the policy allocation outlives the entry (no ABA).
    _policy: Arc<dyn Policy<R>>,
    /// Pinned so the backend allocation outlives the entry (no ABA).
    _backend: Arc<dyn Backend<R>>,
    task: Arc<HistogramTask>,
}

/// The per-session task cache.
pub(crate) struct TaskCache<R> {
    entries: Mutex<HashMap<TaskKey, TaskEntry<R>>>,
}

impl<R> TaskCache<R> {
    /// An empty cache.
    pub(crate) fn new() -> Self {
        Self { entries: Mutex::new(HashMap::new()) }
    }

    /// Number of live entries (test probe).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Returns the cached task for the identity key, deriving it with
    /// `derive` (the backend scan) on a miss. The scan runs outside the
    /// cache lock; two racing derivations of one key produce equal tasks, so
    /// keeping the first inserted is safe.
    pub(crate) fn get_or_derive(
        &self,
        bins: usize,
        bin_of: &BinOf<R>,
        spec: Option<&BinSpec>,
        policy: &Arc<dyn Policy<R>>,
        backend: &Arc<dyn Backend<R>>,
        derive: impl FnOnce() -> Result<HistogramTask>,
    ) -> Result<Arc<HistogramTask>> {
        let key: TaskKey = (
            bins,
            Arc::as_ptr(bin_of) as *const () as usize,
            Arc::as_ptr(policy) as *const () as usize,
            Arc::as_ptr(backend) as *const () as usize,
            spec.cloned(),
        );
        if let Some(entry) = self.entries.lock().get(&key) {
            return Ok(Arc::clone(&entry.task));
        }
        let task = Arc::new(derive()?);
        let mut entries = self.entries.lock();
        if entries.len() >= TASK_CACHE_CAP {
            entries.clear();
        }
        let entry = entries.entry(key).or_insert_with(|| TaskEntry {
            _bin_of: Arc::clone(bin_of),
            _policy: Arc::clone(policy),
            _backend: Arc::clone(backend),
            task,
        });
        Ok(Arc::clone(&entry.task))
    }
}

impl<R> std::fmt::Debug for TaskCache<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskCache").field("entries", &self.entries.lock().len()).finish()
    }
}
