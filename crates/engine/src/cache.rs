//! The session task cache: derive each [`HistogramTask`] once, serve it to
//! every release that asks the same question.
//!
//! Pool runners (the regret and crossover experiments of Section 6.3.3.2)
//! release the *same query under the same policy* through every mechanism of
//! a pool; before this cache each `release_trials` call re-ran the backend
//! scan, so an 8-mechanism pool paid for 8 identical scans. The cache keys a
//! derived task by the **identities** that determine the scan's result —
//! query (bin count + bin-closure allocation), policy allocation, and backend
//! allocation; the human-readable query/policy labels are projections of
//! those identities and never influence a scan's output. Each entry retains
//! the `Arc`s whose addresses key it, so an address can never be recycled
//! into a colliding key while the entry lives (the same no-ABA argument as
//! the backend partition cache).
//!
//! Data behind a backend is immutable for the backend's lifetime, so entries
//! never go stale; the cache is capacity-bounded per shard and cleared when
//! full (a pure cache: results are recomputed, never wrong). Entries live in
//! hash-sharded maps holding per-key derivation slots: concurrent
//! derivations of *distinct* queries run in parallel, while racing
//! derivations of the *same* key serialize on that key's slot and scan
//! exactly once.

use crate::backend::Backend;
use crate::sharding::shard_index;
use osdp_core::error::Result;
use osdp_core::frame::BinSpec;
use osdp_core::policy::Policy;
use osdp_mechanisms::HistogramTask;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Number of cache shards: keys hashing to different shards never contend
/// on the (brief) map locks.
const TASK_SHARDS: usize = 8;

/// Cap on cached tasks per shard. 16 per shard keeps any workload the
/// historical single-map 64-entry cap held fully cached (64 keys spread
/// over 8 shards average 8 per shard; 16 absorbs hash skew) while still
/// bounding the pinned memory; a full shard is cleared (a pure cache:
/// results are recomputed, never wrong).
const TASK_CACHE_CAP_PER_SHARD: usize = 16;

/// Identity key: `(bins, bin-closure, policy, backend)` allocations, the
/// policy epoch **version** the task is derived under, plus the query's
/// compiled bin spec **by value** — a hand-built query can pair an existing
/// closure `Arc` with a different spec, and columnar backends scan through
/// the spec, so spec-divergent queries must not share an entry. The version
/// component means an epoch transition can never serve a pre-transition
/// task to a post-transition release even if the transition re-installs a
/// policy `Arc` at a recycled address: the version is monotone, so stale
/// entries are unreachable the moment the audit counter bumps.
type TaskKey = (usize, usize, usize, usize, u64, Option<BinSpec>);

/// The row-level bin assignment closure, as stored by queries and plans.
type BinOf<R> = Arc<dyn Fn(&R) -> Option<usize> + Send + Sync>;

/// The per-key derivation slot: `None` until the first successful scan
/// fills it. Racing callers of one key serialize on this slot's own lock —
/// not the shard map lock — so a slow derivation never blocks hits or
/// derivations of other keys.
type TaskSlot = Arc<Mutex<Option<Arc<HistogramTask>>>>;

/// A cached derivation slot plus the pinned allocations that key it.
struct TaskEntry<R> {
    /// Pinned so the closure allocation outlives the entry (no ABA).
    _bin_of: BinOf<R>,
    /// Pinned so the policy allocation outlives the entry (no ABA).
    _policy: Arc<dyn Policy<R>>,
    /// Pinned so the backend allocation outlives the entry (no ABA).
    _backend: Arc<dyn Backend<R>>,
    slot: TaskSlot,
}

/// The per-session task cache, sharded by key hash.
pub(crate) struct TaskCache<R> {
    shards: Vec<Mutex<HashMap<TaskKey, TaskEntry<R>>>>,
}

impl<R> TaskCache<R> {
    /// An empty cache.
    pub(crate) fn new() -> Self {
        Self { shards: (0..TASK_SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    /// Number of live entries (test probe).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Drops every entry. For sources whose data **can** change between
    /// releases (the streaming plane swaps a new window behind its backend),
    /// this restores the cache's staleness invariant at the swap point:
    /// in-flight derivations keep their slot `Arc`s and finish unaffected;
    /// later callers re-derive against the new data (pure-cache semantics —
    /// results are recomputed, never wrong).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// The shard a key hashes to.
    fn shard_of(&self, key: &TaskKey) -> &Mutex<HashMap<TaskKey, TaskEntry<R>>> {
        &self.shards[shard_index(key, TASK_SHARDS)]
    }

    /// Returns the cached task for the identity key, deriving it with
    /// `derive` (the backend scan) on a miss.
    ///
    /// Exactly-once, without blocking the shard: the shard map lock is held
    /// only long enough to find or insert the key's **slot**, and the scan
    /// runs under that slot's own lock — so threads racing the *same* key
    /// serialize and derive once (the historical lock → miss → unlock →
    /// relock sequence let two threads scan the same task concurrently),
    /// while hits and derivations of *other* keys, even on the same shard,
    /// never wait behind a slow scan. A failed derivation leaves the slot
    /// empty, so errors are retried by the next caller.
    // The parameters ARE the cache key (plus the derivation closure); a
    // struct wrapper would just restate `TaskKey` with worse call sites.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn get_or_derive(
        &self,
        bins: usize,
        bin_of: &BinOf<R>,
        spec: Option<&BinSpec>,
        policy: &Arc<dyn Policy<R>>,
        policy_version: u64,
        backend: &Arc<dyn Backend<R>>,
        derive: impl FnOnce() -> Result<HistogramTask>,
    ) -> Result<Arc<HistogramTask>> {
        let key: TaskKey = (
            bins,
            Arc::as_ptr(bin_of) as *const () as usize,
            Arc::as_ptr(policy) as *const () as usize,
            Arc::as_ptr(backend) as *const () as usize,
            policy_version,
            spec.cloned(),
        );
        let slot: TaskSlot = {
            let mut entries = self.shard_of(&key).lock();
            if let Some(entry) = entries.get(&key) {
                Arc::clone(&entry.slot)
            } else {
                if entries.len() >= TASK_CACHE_CAP_PER_SHARD {
                    // In-flight derivations keep their slot Arc and finish
                    // unaffected; their results are simply re-derived by
                    // later callers (pure-cache semantics).
                    entries.clear();
                }
                let entry = entries.entry(key).or_insert_with(|| TaskEntry {
                    _bin_of: Arc::clone(bin_of),
                    _policy: Arc::clone(policy),
                    _backend: Arc::clone(backend),
                    slot: Arc::new(Mutex::new(None)),
                });
                Arc::clone(&entry.slot)
            }
        };
        let mut slot = slot.lock();
        if let Some(task) = &*slot {
            return Ok(Arc::clone(task));
        }
        let task = Arc::new(derive()?);
        *slot = Some(Arc::clone(&task));
        Ok(task)
    }
}

impl<R> std::fmt::Debug for TaskCache<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries: usize = self.shards.iter().map(|s| s.lock().len()).sum();
        f.debug_struct("TaskCache").field("entries", &entries).finish()
    }
}
