//! [`PoolSupervisor`]: the autonomous maintenance plane over a durable
//! [`SessionPool`].
//!
//! PR 8 gave the pool a per-tenant circuit breaker and a caller-driven
//! repair verb ([`SessionPool::try_heal`]). This module closes the loop:
//! a supervisor owns the *when* — probing quarantined tenants with
//! **jittered exponential backoff**, running periodic `sync_all` /
//! `snapshot_all` / scrub maintenance, and correlating simultaneous
//! fault bursts across tenants into a single [`DeviceIncident`] — so the
//! pool detects, correlates, and repairs its own faults while serving
//! traffic, with no operator in the loop.
//!
//! ## Scheduling is a seam
//!
//! Every time-dependent behavior reads an injectable [`SupervisorClock`]
//! and a seeded jitter stream: under [`ManualClock`] a test advances time
//! explicitly and observes the exact same backoff growth, incident
//! open/close transitions, and probe budget every run. [`SystemClock`]
//! is the production clock; [`PoolSupervisor::run_background`] drives
//! [`PoolSupervisor::tick`] from a thread at a fixed cadence.
//!
//! ## Why jitter
//!
//! When one shared device takes down many tenant shards at once, their
//! breakers open together — and without jitter their heal probes would
//! re-arrive in lockstep forever, hammering a recovering disk at the worst
//! cadence. Each tenant's backoff is therefore stretched by a
//! deterministic per-(seed, tenant, attempt) factor in `[1, 2)`
//! ([`PoolSupervisor::backoff_delay`]), decorrelating the herd while
//! keeping every delay reproducible under test.
//!
//! ## Incident semantics
//!
//! Quarantines whose last typed error carries the **device signature** — a
//! permanent `Write`/`Fsync` failure
//! ([`PersistError::is_device_signature`]) — and whose onset falls within
//! one correlation window are counted together; at
//! [`SupervisorConfig::incident_tenants`] of them the supervisor opens a
//! [`DeviceIncident`] **once** and stops fanning probes out: only a single
//! canary tenant is probed until it heals, which closes the incident and
//! releases the rest of the herd back to normal backoff. Tenants whose
//! faults do not match the signature are never swept into the incident —
//! quarantine stays exactly as wide as the evidence.

use crate::pool::{SessionPool, TenantHealth};
use crate::session::SessionBuilder;
use osdp_core::error::{OsdpError, PersistError, Result};
use osdp_core::Record;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The supervisor's injectable time source: a monotone reading since an
/// arbitrary epoch. All scheduling (backoff due-times, maintenance
/// cadences, incident windows) compares these readings, so swapping the
/// implementation swaps real time for test time with no other change.
pub trait SupervisorClock: Send + Sync {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
}

/// The production clock: monotone time since construction.
#[derive(Debug)]
pub struct SystemClock {
    anchor: Instant,
}

impl SystemClock {
    /// A clock anchored at the moment of construction.
    pub fn new() -> Self {
        Self { anchor: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SupervisorClock for SystemClock {
    fn now(&self) -> Duration {
        self.anchor.elapsed()
    }
}

/// A hand-cranked clock for deterministic tests: time moves only when the
/// test calls [`ManualClock::advance`] (or [`ManualClock::set`]), so every
/// backoff expiry and incident window edge is observed exactly.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    /// A clock at epoch zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `by`.
    pub fn advance(&self, by: Duration) {
        *self.now.lock() += by;
    }

    /// Jumps time to an absolute reading (monotonicity is the test's
    /// responsibility).
    pub fn set(&self, to: Duration) {
        *self.now.lock() = to;
    }
}

impl SupervisorClock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }
}

/// Tuning for a [`PoolSupervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Backoff before the first heal probe of a freshly-quarantined tenant;
    /// doubles per failed attempt.
    pub probe_base: Duration,
    /// Upper bound on the un-jittered backoff (jitter may stretch a delay
    /// to just under twice this).
    pub probe_max: Duration,
    /// Heal attempts per quarantine episode before the supervisor gives up
    /// and leaves the tenant to the operator (≥ 1). The counter resets when
    /// the tenant returns to service.
    pub max_heal_attempts: u32,
    /// Seed of the deterministic per-(tenant, attempt) jitter stream.
    pub jitter_seed: u64,
    /// Run [`SessionPool::sync_all`] at this cadence (`None` = never).
    pub sync_every: Option<Duration>,
    /// Run [`SessionPool::snapshot_all`] at this cadence (`None` = never).
    pub snapshot_every: Option<Duration>,
    /// Run [`SessionPool::scrub_all`] at this cadence (`None` = never).
    pub scrub_every: Option<Duration>,
    /// Simultaneously-quarantined tenants with the device fault signature
    /// that open a [`DeviceIncident`] (≥ 2; shared-device correlation needs
    /// at least a pair).
    pub incident_tenants: usize,
    /// How close together (by onset) the matching quarantines must be to
    /// correlate into one incident.
    pub incident_window: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            probe_base: Duration::from_millis(250),
            probe_max: Duration::from_secs(30),
            max_heal_attempts: 6,
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
            sync_every: None,
            snapshot_every: Some(Duration::from_secs(60)),
            scrub_every: Some(Duration::from_secs(300)),
            incident_tenants: 3,
            incident_window: Duration::from_secs(10),
        }
    }
}

/// The typed outcome of one supervisor-driven heal attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum HealOutcome {
    /// The shard reopened through snapshot + replay and the tenant is back
    /// in service.
    Healed,
    /// The attempt failed; the tenant stays quarantined and the next probe
    /// is scheduled with a longer (jittered) backoff.
    Failed {
        /// Why the reopen failed.
        error: OsdpError,
    },
    /// This failure exhausted [`SupervisorConfig::max_heal_attempts`]: the
    /// supervisor stops probing this quarantine episode and leaves the
    /// tenant to the operator.
    Exhausted {
        /// The final failure.
        error: OsdpError,
    },
}

/// One correlated shared-device fault burst: several tenants quarantined
/// within one window, all with the same permanent write-side signature.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceIncident {
    /// When the supervisor opened the incident (supervisor-clock reading).
    pub opened_at: Duration,
    /// The affected tenants, sorted — exactly the quarantined tenants whose
    /// faults carry the device signature, and no others.
    pub tenants: Vec<Arc<str>>,
    /// The canary: the one tenant still probed while the incident is open.
    /// Its heal is the evidence the device recovered.
    pub canary: Arc<str>,
}

/// What the supervisor did (and observed) during ticks, timestamped with
/// the supervisor clock.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisorEvent {
    /// A heal probe was scheduled for a quarantined tenant.
    HealScheduled {
        /// When the decision was made.
        at: Duration,
        /// The quarantined tenant.
        tenant: Arc<str>,
        /// The upcoming attempt number (1-based).
        attempt: u32,
        /// When the probe becomes due — `at` + the jittered backoff.
        due: Duration,
    },
    /// A heal probe ran.
    HealAttempted {
        /// When the probe ran.
        at: Duration,
        /// The probed tenant.
        tenant: Arc<str>,
        /// The attempt number (1-based).
        attempt: u32,
        /// What happened.
        outcome: HealOutcome,
    },
    /// Enough correlated quarantines accumulated to open an incident.
    IncidentOpened {
        /// When it opened.
        at: Duration,
        /// The affected tenants, sorted.
        tenants: Vec<Arc<str>>,
    },
    /// The open incident closed (canary healed, or every affected tenant
    /// left quarantine).
    IncidentClosed {
        /// When it closed.
        at: Duration,
    },
    /// A periodic maintenance sweep ran.
    MaintenanceCompleted {
        /// When it ran.
        at: Duration,
        /// `"sync_all"` or `"snapshot_all"`.
        operation: &'static str,
        /// Tenants that failed the sweep (each already fed into the health
        /// machine by the pool).
        failures: usize,
    },
    /// A periodic pool-wide scrub ran.
    ScrubCompleted {
        /// When it ran.
        at: Duration,
        /// Shards scrubbed.
        shards: usize,
        /// Shards with at least one corruption finding (each already
        /// quarantined by the pool's scrub glue).
        findings: usize,
        /// Shards the scrubber could not read at all.
        failures: usize,
    },
}

/// What one [`PoolSupervisor::tick`] did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    /// The tick's clock reading.
    pub at: Duration,
    /// Everything that happened, in order.
    pub events: Vec<SupervisorEvent>,
    /// Tenants restored to service this tick.
    pub healed: Vec<Arc<str>>,
    /// Whether a [`DeviceIncident`] is open after this tick.
    pub incident_open: bool,
}

/// Per-tenant probe bookkeeping for one quarantine episode.
#[derive(Debug)]
struct ProbeState {
    /// Heal attempts made this episode.
    attempts: u32,
    /// When the next probe is due.
    due: Duration,
    /// Probes stopped: the attempt budget is spent.
    exhausted: bool,
}

/// The supervisor's mutable state, behind one mutex (ticks are serial; the
/// pool's own locks guard the shared serving state).
#[derive(Debug, Default)]
struct SupervisorState {
    probes: HashMap<Arc<str>, ProbeState>,
    /// When each tenant's current quarantine episode was first observed —
    /// the onset used for incident-window correlation (the pool's own
    /// `opened_at` is an `Instant`, which a mock clock cannot drive).
    first_seen: HashMap<Arc<str>, Duration>,
    incident: Option<DeviceIncident>,
    last_sync: Option<Duration>,
    last_snapshot: Option<Duration>,
    last_scrub: Option<Duration>,
}

/// The session factory a supervisor rebuilds healed tenants with.
type SessionFactory<R> = Box<dyn Fn(&str) -> SessionBuilder<R> + Send + Sync>;

/// The background maintenance loop over a durable [`SessionPool`] — see
/// the module docs. Construct with [`PoolSupervisor::new`] (or
/// [`PoolSupervisor::with_clock`] for tests), then either call
/// [`PoolSupervisor::tick`] yourself or hand the supervisor to a thread
/// with [`PoolSupervisor::run_background`].
pub struct PoolSupervisor<R = Record> {
    pool: Arc<SessionPool<R>>,
    /// The session factory heals rebuild tenants with — same shape as
    /// [`SessionPool::recover`]'s.
    make: SessionFactory<R>,
    config: SupervisorConfig,
    clock: Arc<dyn SupervisorClock>,
    state: Mutex<SupervisorState>,
}

impl<R> std::fmt::Debug for PoolSupervisor<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolSupervisor")
            .field("pool", &self.pool)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// SplitMix64: a tiny, statistically-solid mixer — one multiply-xor chain
/// per draw, no state to store.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the tenant key: folds the tenant identity into the jitter
/// stream so co-quarantined tenants decorrelate.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl<R> PoolSupervisor<R> {
    /// A supervisor over `pool`, healing with the sessions `make` builds,
    /// on the production [`SystemClock`]. Fails unless the pool is durable
    /// ([`SessionPool::open`]) — an in-memory pool has no shards to heal,
    /// scrub, or correlate.
    pub fn new(
        pool: Arc<SessionPool<R>>,
        make: impl Fn(&str) -> SessionBuilder<R> + Send + Sync + 'static,
        config: SupervisorConfig,
    ) -> Result<Self> {
        Self::with_clock(pool, make, config, Arc::new(SystemClock::new()))
    }

    /// [`PoolSupervisor::new`] on an explicit clock — the determinism seam
    /// tests drive with [`ManualClock`].
    pub fn with_clock(
        pool: Arc<SessionPool<R>>,
        make: impl Fn(&str) -> SessionBuilder<R> + Send + Sync + 'static,
        config: SupervisorConfig,
        clock: Arc<dyn SupervisorClock>,
    ) -> Result<Self> {
        if pool.persist_dir().is_none() {
            return Err(OsdpError::Persistence(
                "PoolSupervisor needs a durable pool: construct it with SessionPool::open".into(),
            ));
        }
        Ok(Self {
            pool,
            make: Box::new(make),
            config: SupervisorConfig {
                max_heal_attempts: config.max_heal_attempts.max(1),
                incident_tenants: config.incident_tenants.max(2),
                ..config
            },
            clock,
            state: Mutex::new(SupervisorState::default()),
        })
    }

    /// The supervised pool.
    pub fn pool(&self) -> &Arc<SessionPool<R>> {
        &self.pool
    }

    /// The effective configuration (after floor clamps).
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// The open incident, if any.
    pub fn incident(&self) -> Option<DeviceIncident> {
        self.state.lock().incident.clone()
    }

    /// The deterministic jitter factor minus one: a value in `[0, 1)`
    /// drawn from `(seed, tenant, attempt)` — same inputs, same jitter,
    /// every run.
    fn jitter_unit(&self, tenant: &str, attempt: u32) -> f64 {
        let draw = splitmix64(
            self.config.jitter_seed ^ fnv1a(tenant) ^ u64::from(attempt).rotate_left(32),
        );
        // 53 high bits → a uniform dyadic rational in [0, 1).
        (draw >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The jittered backoff before heal attempt `attempt` (1-based) of
    /// `tenant`: `min(base · 2^(attempt−1), max)` stretched by the
    /// deterministic per-(seed, tenant, attempt) factor in `[1, 2)`.
    /// Exposed so tests compute expected due-times independently.
    pub fn backoff_delay(&self, tenant: &str, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let exp =
            self.config.probe_base.saturating_mul(1u32 << doublings).min(self.config.probe_max);
        exp + exp.mul_f64(self.jitter_unit(tenant, attempt))
    }
}

impl<R: Send + Sync + 'static> PoolSupervisor<R> {
    /// One maintenance pass: reconcile probe state with the pool's health
    /// snapshot, correlate fault bursts into (or close) a
    /// [`DeviceIncident`], run due heal probes, and run due periodic
    /// maintenance. Deterministic given the clock and the pool state;
    /// cheap when nothing is due (one health snapshot, no IO).
    pub fn tick(&self) -> TickReport {
        let now = self.clock.now();
        let mut report = TickReport { at: now, ..TickReport::default() };
        let mut state = self.state.lock();
        let snapshot = self.pool.health_snapshot();

        // Reconcile: tenants back in service drop their episode state;
        // fresh quarantines get an onset stamp and a first jittered probe.
        let mut quarantined: Vec<&crate::pool::TenantHealthReport> = Vec::new();
        for tenant_report in &snapshot {
            let tenant = &tenant_report.tenant;
            if tenant_report.health == TenantHealth::Quarantined {
                state.first_seen.entry(Arc::clone(tenant)).or_insert(now);
                if !state.probes.contains_key(tenant) {
                    let due = now + self.backoff_delay(tenant, 1);
                    state.probes.insert(
                        Arc::clone(tenant),
                        ProbeState { attempts: 0, due, exhausted: false },
                    );
                    report.events.push(SupervisorEvent::HealScheduled {
                        at: now,
                        tenant: Arc::clone(tenant),
                        attempt: 1,
                        due,
                    });
                }
                quarantined.push(tenant_report);
            } else {
                state.first_seen.remove(tenant);
                state.probes.remove(tenant);
            }
        }

        // Close an incident whose tenants all left quarantine (healed by
        // the canary path below on an earlier tick, or externally).
        if let Some(incident) = &state.incident {
            let still_down =
                incident.tenants.iter().any(|t| quarantined.iter().any(|q| q.tenant == *t));
            if !still_down {
                state.incident = None;
                report.events.push(SupervisorEvent::IncidentClosed { at: now });
            }
        }

        // Correlate: enough fresh quarantines with the device signature
        // inside one window is one shared device failing, not N shards.
        if state.incident.is_none() {
            let mut affected: Vec<Arc<str>> = quarantined
                .iter()
                .filter(|q| {
                    q.last_error.as_ref().is_some_and(PersistError::is_device_signature)
                        && state.first_seen.get(&q.tenant).is_some_and(|&seen| {
                            now.saturating_sub(seen) <= self.config.incident_window
                        })
                })
                .map(|q| Arc::clone(&q.tenant))
                .collect();
            affected.sort();
            if affected.len() >= self.config.incident_tenants {
                let canary = Arc::clone(&affected[0]);
                report
                    .events
                    .push(SupervisorEvent::IncidentOpened { at: now, tenants: affected.clone() });
                state.incident = Some(DeviceIncident { opened_at: now, tenants: affected, canary });
            }
        }

        // Probe due tenants. While an incident is open, only the canary is
        // probed — a dying shared device must not be probe-stormed by the
        // whole herd.
        let canary_only: Option<Arc<str>> = state.incident.as_ref().map(|i| Arc::clone(&i.canary));
        let due: Vec<Arc<str>> = state
            .probes
            .iter()
            .filter(|(tenant, probe)| {
                !probe.exhausted
                    && probe.due <= now
                    && canary_only.as_ref().is_none_or(|c| c == *tenant)
            })
            .map(|(tenant, _)| Arc::clone(tenant))
            .collect();
        let mut due = due;
        due.sort();
        for tenant in due {
            let attempt = state.probes.get(&tenant).map(|p| p.attempts + 1).unwrap_or(1);
            let outcome = match self.pool.try_heal(&tenant, || (self.make)(&tenant)) {
                Ok(_) => {
                    state.probes.remove(&tenant);
                    state.first_seen.remove(&tenant);
                    report.healed.push(Arc::clone(&tenant));
                    if state.incident.as_ref().is_some_and(|incident| incident.canary == tenant) {
                        // The canary healing is the device-recovery signal:
                        // close the incident and let the next tick resume
                        // normal probing for the rest of the herd.
                        state.incident = None;
                        report.events.push(SupervisorEvent::IncidentClosed { at: now });
                    }
                    HealOutcome::Healed
                }
                Err(error) => {
                    let probe = state.probes.get_mut(&tenant).expect("probe state exists");
                    probe.attempts = attempt;
                    if attempt >= self.config.max_heal_attempts {
                        probe.exhausted = true;
                        HealOutcome::Exhausted { error }
                    } else {
                        probe.due = now + self.backoff_delay(&tenant, attempt + 1);
                        report.events.push(SupervisorEvent::HealScheduled {
                            at: now,
                            tenant: Arc::clone(&tenant),
                            attempt: attempt + 1,
                            due: probe.due,
                        });
                        HealOutcome::Failed { error }
                    }
                }
            };
            report.events.push(SupervisorEvent::HealAttempted {
                at: now,
                tenant,
                attempt,
                outcome,
            });
        }

        // Periodic maintenance, each on its own cadence.
        if due_now(self.config.sync_every, state.last_sync, now) {
            state.last_sync = Some(now);
            let failures = self.pool.sync_all().map_or_else(|e| e.failures.len(), |()| 0);
            report.events.push(SupervisorEvent::MaintenanceCompleted {
                at: now,
                operation: "sync_all",
                failures,
            });
        }
        if due_now(self.config.snapshot_every, state.last_snapshot, now) {
            state.last_snapshot = Some(now);
            let failures = self.pool.snapshot_all().map_or_else(|e| e.failures.len(), |()| 0);
            report.events.push(SupervisorEvent::MaintenanceCompleted {
                at: now,
                operation: "snapshot_all",
                failures,
            });
        }
        if due_now(self.config.scrub_every, state.last_scrub, now) {
            state.last_scrub = Some(now);
            match self.pool.scrub_all() {
                Ok(sweep) => report.events.push(SupervisorEvent::ScrubCompleted {
                    at: now,
                    shards: sweep.reports.len() + sweep.failures.len(),
                    findings: sweep.tenants_with_findings().len(),
                    failures: sweep.failures.len(),
                }),
                Err(_) => report.events.push(SupervisorEvent::ScrubCompleted {
                    at: now,
                    shards: 0,
                    findings: 0,
                    failures: 1,
                }),
            }
        }

        // Publish the incident state into the pool, so health_snapshot
        // readers see it without holding a supervisor handle.
        self.pool.set_incident(state.incident.clone());
        report.incident_open = state.incident.is_some();
        report
    }

    /// Runs [`PoolSupervisor::tick`] on a background thread every
    /// `interval` until the returned handle is stopped (or dropped). The
    /// serving grant path is untouched: ticks read the health snapshot and
    /// only take pool locks a caller-driven heal would take.
    pub fn run_background(self: Arc<Self>, interval: Duration) -> SupervisorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("osdp-pool-supervisor".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    self.tick();
                    // Sleep in short slices so stop() returns promptly even
                    // under a long interval.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !flag.load(Ordering::Relaxed) {
                        let slice = remaining.min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn supervisor thread");
        SupervisorHandle { stop, thread: Some(thread) }
    }
}

/// Whether a cadence timer is due: never ran, or a full period elapsed.
fn due_now(every: Option<Duration>, last: Option<Duration>, now: Duration) -> bool {
    match every {
        None => false,
        Some(every) => last.is_none_or(|last| now.saturating_sub(last) >= every),
    }
}

/// Stops the background supervisor thread when dropped (or explicitly via
/// [`SupervisorHandle::stop`]).
#[derive(Debug)]
pub struct SupervisorHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SupervisorHandle {
    /// Signals the loop to stop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SupervisorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use osdp_core::policy::ClosurePolicy;
    use osdp_core::Database;
    use osdp_persist::SyncPolicy;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("osdp-supervisor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn builder(_tenant: &str) -> SessionBuilder<u32> {
        let db: Database<u32> = (0..100u32).collect();
        SessionBuilder::new(db)
            .policy(ClosurePolicy::new("upper-half", |&v: &u32| v >= 50), "P50")
            .budget(10.0)
            .seed(7)
    }

    fn test_config() -> SupervisorConfig {
        SupervisorConfig {
            probe_base: Duration::from_millis(100),
            probe_max: Duration::from_secs(5),
            max_heal_attempts: 4,
            jitter_seed: 42,
            sync_every: None,
            snapshot_every: None,
            scrub_every: None,
            incident_tenants: 3,
            incident_window: Duration::from_secs(10),
        }
    }

    #[test]
    fn refuses_in_memory_pools() {
        let pool: Arc<SessionPool<u32>> = Arc::new(SessionPool::new());
        assert!(PoolSupervisor::new(pool, builder, test_config()).is_err());
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let dir = tmp_dir("backoff");
        let pool: Arc<SessionPool<u32>> =
            Arc::new(SessionPool::open(dir.clone(), SyncPolicy::Always).unwrap());
        let a = PoolSupervisor::with_clock(
            Arc::clone(&pool),
            builder,
            test_config(),
            Arc::new(ManualClock::new()),
        )
        .unwrap();
        let b = PoolSupervisor::with_clock(
            Arc::clone(&pool),
            builder,
            test_config(),
            Arc::new(ManualClock::new()),
        )
        .unwrap();
        let base = test_config().probe_base;
        let max = test_config().probe_max;
        let mut last = Duration::ZERO;
        for attempt in 1..=10 {
            let d = a.backoff_delay("acme", attempt);
            // Same seed, same tenant, same attempt → same delay, every run.
            assert_eq!(d, b.backoff_delay("acme", attempt));
            // Jitter stretches the exponential floor by [1, 2).
            let floor = base.saturating_mul(1 << (attempt - 1).min(16)).min(max);
            assert!(d >= floor, "attempt {attempt}: {d:?} under floor {floor:?}");
            assert!(d < floor * 2, "attempt {attempt}: {d:?} over jitter ceiling");
            assert!(d >= last.min(max), "backoff grows until the cap");
            last = d;
        }
        // Distinct tenants draw distinct jitter (decorrelated herd).
        assert_ne!(a.backoff_delay("acme", 1), a.backoff_delay("globex", 1));
        // A different seed moves every delay.
        let c = PoolSupervisor::with_clock(
            pool,
            builder,
            SupervisorConfig { jitter_seed: 43, ..test_config() },
            Arc::new(ManualClock::new()),
        )
        .unwrap();
        assert_ne!(a.backoff_delay("acme", 1), c.backoff_delay("acme", 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manual_clock_drives_maintenance_cadence() {
        let dir = tmp_dir("cadence");
        let pool: Arc<SessionPool<u32>> =
            Arc::new(SessionPool::open(dir.clone(), SyncPolicy::Always).unwrap());
        pool.open_tenant("acme", || builder("acme")).unwrap();
        let clock = Arc::new(ManualClock::new());
        let supervisor = PoolSupervisor::with_clock(
            Arc::clone(&pool),
            builder,
            SupervisorConfig { sync_every: Some(Duration::from_secs(10)), ..test_config() },
            Arc::clone(&clock) as Arc<dyn SupervisorClock>,
        )
        .unwrap();
        // First tick: the timer has never run, so it fires immediately.
        let report = supervisor.tick();
        assert!(report.events.iter().any(|e| matches!(
            e,
            SupervisorEvent::MaintenanceCompleted { operation: "sync_all", failures: 0, .. }
        )));
        // Under a period later: nothing due.
        clock.advance(Duration::from_secs(9));
        assert!(supervisor.tick().events.is_empty());
        // Crossing the period: due again. Deterministic — no wall time read.
        clock.advance(Duration::from_secs(1));
        let report = supervisor.tick();
        assert_eq!(report.events.len(), 1);
        assert!(report.healed.is_empty());
        assert!(!report.incident_open);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ticks_on_a_healthy_pool_do_nothing() {
        let dir = tmp_dir("idle");
        let pool: Arc<SessionPool<u32>> =
            Arc::new(SessionPool::open(dir.clone(), SyncPolicy::Always).unwrap());
        pool.open_tenant("acme", || builder("acme")).unwrap();
        let supervisor = PoolSupervisor::with_clock(
            Arc::clone(&pool),
            builder,
            test_config(),
            Arc::new(ManualClock::new()),
        )
        .unwrap();
        for _ in 0..3 {
            let report = supervisor.tick();
            assert!(report.events.is_empty() && report.healed.is_empty());
        }
        assert!(supervisor.incident().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
