//! The engine face of the durable budget plane: adapters between the
//! on-disk types of `osdp-persist` and the live session objects
//! ([`osdp_core::BudgetAccountant`], [`crate::AuditLog`]).
//!
//! The conversion contract is **all-integer**: every grant record stores
//! the fixed-point debit (`epsilon_to_units(ε × trials)`) the accountant
//! admitted, recovery sums those stored integers, and the reconstructed
//! accountant/audit counters equal the pre-crash ones bit for bit. Floats
//! ride along only as display metadata (ledger entries, reports) — they are
//! never summed to rebuild a counter.

use crate::audit::AuditRecord;
use osdp_core::budget::{epsilon_to_units, units_to_epsilon, LedgerEntry};
use osdp_core::error::Result;
use osdp_core::{Guarantee, PrivacyGuarantee};
use osdp_persist::{
    GrantRecord, GroupCommitStats, GuaranteeTag, LedgerOptions, RecoveredLedger, RecoveryReport,
    RefusalRecord, SnapshotCounters, SyncPolicy, TenantLedger, Vfs,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The WAL tag of an engine guarantee.
fn tag_of(guarantee: Guarantee) -> GuaranteeTag {
    match guarantee {
        Guarantee::Dp { .. } => GuaranteeTag::Dp,
        Guarantee::Osdp { .. } => GuaranteeTag::Osdp,
        Guarantee::Pdp { .. } => GuaranteeTag::Pdp,
    }
}

/// The engine guarantee a WAL tag decodes to, rehydrated with its ε.
fn guarantee_of(tag: GuaranteeTag, eps: f64) -> Guarantee {
    match tag {
        GuaranteeTag::Dp => Guarantee::Dp { eps },
        GuaranteeTag::Osdp => Guarantee::Osdp { eps },
        GuaranteeTag::Pdp => Guarantee::Pdp { eps },
    }
}

/// The ledger [`PrivacyGuarantee`] kind of a WAL tag.
fn kind_of(tag: GuaranteeTag) -> PrivacyGuarantee {
    match tag {
        GuaranteeTag::Dp => PrivacyGuarantee::DifferentialPrivacy,
        GuaranteeTag::Osdp => PrivacyGuarantee::OneSided,
        GuaranteeTag::Pdp => PrivacyGuarantee::Personalized,
    }
}

/// One admitted grant, as the grant path describes it to the WAL: the
/// audit-record metadata plus the guarantee whose ε × `trials` debit the
/// accountant just admitted.
#[derive(Debug, Clone, Copy)]
pub struct GrantEvent<'a> {
    /// The release index the audit log allocated.
    pub index: u64,
    /// Mechanism display name.
    pub mechanism: &'a str,
    /// Policy label.
    pub policy: &'a str,
    /// Query label.
    pub query: &'a str,
    /// Histogram bins of the released estimate.
    pub bins: usize,
    /// Trials covered by this single grant.
    pub trials: usize,
    /// The per-trial guarantee.
    pub guarantee: Guarantee,
    /// Policy epoch version the release was stamped with.
    pub policy_version: u64,
}

/// A session's handle on its tenant WAL shard: the hook the grant path
/// calls **after** the accountant's CAS admits a debit and **before** any
/// noise is sampled. Cloneable (shares the underlying single-writer
/// ledger), so pool routing and the session can hold it together.
#[derive(Debug, Clone)]
pub struct SessionWal {
    ledger: Arc<TenantLedger>,
}

impl SessionWal {
    /// Logs one admitted grant. `units` is re-derived here as
    /// `epsilon_to_units(guarantee ε × trials)` — the **same** f64
    /// expression and ceiling conversion the accountant debited and the
    /// audit log accumulated, so replaying the stored integer reconstructs
    /// both counters exactly.
    pub fn log_grant(&self, event: GrantEvent<'_>) -> Result<()> {
        let total_epsilon = event.guarantee.epsilon() * event.trials as f64;
        self.ledger.append_grant(&GrantRecord {
            index: event.index,
            units: epsilon_to_units(total_epsilon),
            epsilon: event.guarantee.epsilon(),
            trials: event.trials as u64,
            bins: event.bins as u64,
            guarantee: tag_of(event.guarantee),
            mechanism: event.mechanism.to_string(),
            policy: event.policy.to_string(),
            query: event.query.to_string(),
            policy_version: event.policy_version,
        })
    }

    /// Logs a policy epoch transition so recovery can reconstruct the
    /// version history bit for bit. Called **after** the in-memory
    /// transition is live (new epoch installed, audit version bumped): on
    /// WAL failure the error propagates but the in-memory epoch stays in
    /// force — safe for tightenings (serving under a stricter policy than
    /// the durable record claims), and surfaced to the caller for
    /// relaxations.
    pub fn log_epoch_transition(&self, record: &osdp_persist::EpochRecord) -> Result<()> {
        self.ledger.append_epoch_transition(record)
    }

    /// Logs a refused grant (best-effort observability — refusals spend
    /// nothing, so losing one never unbalances recovery).
    pub fn log_refusal(&self, mechanism: &str, epsilon: f64) -> Result<()> {
        self.ledger.append_refusal(&RefusalRecord {
            units: epsilon_to_units(epsilon),
            epsilon,
            mechanism: mechanism.to_string(),
        })
    }

    /// Flushes and fsyncs every buffered frame, regardless of sync policy.
    pub fn sync(&self) -> Result<()> {
        self.ledger.sync()
    }

    /// Collapses the logged history into a new snapshot generation and
    /// resets the WAL ([`TenantLedger::rotate_snapshot`]).
    pub fn snapshot(&self) -> Result<()> {
        self.ledger.rotate_snapshot()
    }

    /// Checksum-verifies this shard's cold data through the ledger's own
    /// VFS ([`TenantLedger::scrub`]): WAL frame CRCs without decoding,
    /// snapshot codecs, no lock taken, no byte written. Safe to call while
    /// the session is serving grants — a racing append is at most a benign
    /// torn-tail warning in the report.
    pub fn scrub(&self) -> Result<osdp_persist::ScrubReport> {
        self.ledger.scrub()
    }

    /// Crash simulation hook ([`TenantLedger::crash`]): drops buffered
    /// frames (optionally writing a torn prefix), leaves the `LOCK` file
    /// behind, and poisons every later append.
    pub fn crash(&self, keep_fraction: f64) -> Result<()> {
        self.ledger.crash(keep_fraction)
    }

    /// The shard directory this WAL writes to.
    pub fn dir(&self) -> &Path {
        self.ledger.dir()
    }

    /// The configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.ledger.sync_policy()
    }

    /// The counters a snapshot taken now would contain (logged state).
    pub fn counters(&self) -> SnapshotCounters {
        self.ledger.counters()
    }

    /// Group-commit observability counters (all zero for the buffered sync
    /// policies): submitted frames, the durable watermark, batches, and the
    /// largest batch — `durable_frames / batches` is the realized fsync
    /// amortization factor.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.ledger.group_commit_stats()
    }
}

/// What recovery reconstructed for one session, in the engine's own types:
/// seed values for [`osdp_core::BudgetAccountant::recovered`] and
/// [`crate::AuditLog::recovered`], plus the replayed tail as
/// `(AuditRecord, stored units)` pairs for [`crate::AuditLog::restore`].
#[derive(Debug, Clone)]
pub struct RecoveredSession {
    /// Total admitted spend in fixed-point units (base + replayed tail) —
    /// the accountant's seed.
    pub spent_units: u64,
    /// The audit sequence the collapsed base history ends at.
    pub base_seq: u64,
    /// The audit ε units of the collapsed base history.
    pub base_units: u64,
    /// Ledger entries summarising the collapsed base history (one per
    /// `(mechanism, policy, guarantee)` aggregate row).
    pub base_entries: Vec<LedgerEntry>,
    /// Replayed tail grants with their stored fixed-point debits.
    pub tail: Vec<(AuditRecord, u64)>,
    /// Refusals logged across base + tail.
    pub refusals: u64,
    /// Grants logged across base + tail.
    pub grants: u64,
    /// Whether recovery fell back to the WAL's snapshot marker (totals
    /// intact, per-mechanism base rows lost).
    pub degraded: bool,
    /// Bytes discarded from a torn WAL tail (0 after a clean shutdown).
    pub truncated_bytes: u64,
    /// Policy epoch transitions recovered from the WAL, sorted by version.
    /// Recovery restores the version **history** (numbers, boundaries,
    /// directions, labels) — policies themselves are code, so the rebuilt
    /// session serves under its builder-bound policy as the current epoch.
    pub transitions: Vec<osdp_persist::EpochRecord>,
    /// The policy epoch version in force at the crash (last transition's
    /// version, or 0).
    pub policy_version: u64,
    /// What recovery had to repair or fall back to — quarantined snapshot,
    /// prev-generation fallback, cleared stale lock (all-default after a
    /// clean open).
    pub report: RecoveryReport,
}

impl RecoveredSession {
    fn from_ledger(recovered: RecoveredLedger) -> Self {
        let spent_units = recovered.spent_units();
        let refusals = recovered.refusal_count();
        let grants = recovered.grant_count();
        let base_entries = recovered
            .base
            .rows
            .iter()
            .map(|row| LedgerEntry {
                label: if row.releases > 1 {
                    format!("{} [recovered x{}]", row.mechanism, row.releases)
                } else {
                    format!("{} [recovered]", row.mechanism)
                },
                policy: row.policy.clone(),
                epsilon: units_to_epsilon(row.units),
                guarantee: kind_of(row.guarantee),
            })
            .collect();
        let tail = recovered
            .grants
            .iter()
            .map(|g| {
                let record = AuditRecord {
                    index: g.index,
                    mechanism: Arc::from(g.mechanism.as_str()),
                    policy: Arc::from(g.policy.as_str()),
                    query: Arc::from(g.query.as_str()),
                    bins: g.bins as usize,
                    trials: g.trials as usize,
                    guarantee: guarantee_of(g.guarantee, g.epsilon),
                    policy_version: g.policy_version,
                };
                (record, g.units)
            })
            .collect();
        let policy_version = recovered.current_policy_version();
        Self {
            spent_units,
            base_seq: recovered.base.counters.audit_seq,
            base_units: recovered.base.counters.audit_units,
            base_entries,
            tail,
            refusals,
            grants,
            degraded: recovered.degraded,
            truncated_bytes: recovered.truncated_bytes,
            transitions: recovered.transitions,
            policy_version,
            report: recovered.report,
        }
    }

    /// Whether the shard held no durable history.
    pub fn is_fresh(&self) -> bool {
        self.grants == 0
            && self.refusals == 0
            && self.spent_units == 0
            && self.transitions.is_empty()
    }
}

/// One tenant's durable budget plane, ready to back a session: the opened
/// WAL shard plus whatever state recovery reconstructed from it. Passed to
/// [`crate::SessionBuilder::durable`]; `build()` seeds the accountant and
/// audit log from [`SessionPersistence::recovered`] and hooks the grant
/// path into the WAL.
#[derive(Debug)]
pub struct SessionPersistence {
    pub(crate) wal: SessionWal,
    pub(crate) recovered: RecoveredSession,
}

impl SessionPersistence {
    /// Opens (creating if absent) the tenant shard at `dir`, acquiring its
    /// single-writer lock and recovering the durable state. Fails if
    /// another live writer holds the shard — or a crashed one left its
    /// `LOCK` behind (see [`osdp_persist::force_unlock`]).
    pub fn open(dir: impl Into<PathBuf>, sync: SyncPolicy) -> Result<Self> {
        Self::open_with(dir, sync, LedgerOptions::default())
    }

    /// [`SessionPersistence::open`] with explicit [`LedgerOptions`] —
    /// e.g. `auto_snapshot_every` to bound recovery replay for long-lived
    /// tenants.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        sync: SyncPolicy,
        options: LedgerOptions,
    ) -> Result<Self> {
        let (ledger, recovered) = TenantLedger::open_with(dir, sync, options)?;
        Ok(Self {
            wal: SessionWal { ledger: Arc::new(ledger) },
            recovered: RecoveredSession::from_ledger(recovered),
        })
    }

    /// [`SessionPersistence::open_with`] over an explicit file system —
    /// the injection point for [`osdp_persist::FaultVfs`] in fault tests
    /// and the path durable pools use so every shard shares the pool's
    /// file system.
    pub fn open_with_vfs(
        dir: impl Into<PathBuf>,
        sync: SyncPolicy,
        options: LedgerOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let (ledger, recovered) = TenantLedger::open_with_vfs(dir, sync, options, vfs)?;
        Ok(Self {
            wal: SessionWal { ledger: Arc::new(ledger) },
            recovered: RecoveredSession::from_ledger(recovered),
        })
    }

    /// The state recovery reconstructed.
    pub fn recovered(&self) -> &RecoveredSession {
        &self.recovered
    }

    /// The WAL handle (the same one [`crate::SessionBuilder::durable`]
    /// wires into the grant path).
    pub fn wal(&self) -> &SessionWal {
        &self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_tags_round_trip() {
        for g in
            [Guarantee::Dp { eps: 0.5 }, Guarantee::Osdp { eps: 0.5 }, Guarantee::Pdp { eps: 0.5 }]
        {
            assert_eq!(guarantee_of(tag_of(g), 0.5), g);
            assert_eq!(kind_of(tag_of(g)), g.kind());
        }
    }
}
