//! [`OsdpSession`]: the budget-enforced, policy-aware release path.

use crate::audit::{AuditLog, AuditRecord};
use osdp_core::error::{OsdpError, Result};
use osdp_core::policy::{MinimumRelaxation, Policy};
use osdp_core::{BudgetAccountant, Database, Guarantee, Histogram, Record};
use osdp_mechanisms::{HistogramMechanism, HistogramTask, OsdpRr};
use osdp_noise::SeedSequence;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::Arc;

/// The labelled policies a session's record-level releases have used, in
/// first-use order.
type UsedPolicies<R> = Vec<(String, Arc<dyn Policy<R>>)>;

/// What a session releases against: a record-level database bound to a
/// policy function, or a pre-aggregated histogram pair (the shape the
/// DPBench-style experiment harness produces with sampled policies).
enum Source<R> {
    Records { db: Database<R>, policy: Arc<dyn Policy<R>> },
    Bound { task: HistogramTask },
}

/// A histogram query answered by a session.
///
/// Record-backed sessions evaluate [`SessionQuery::CountBy`] queries by
/// binning every record; histogram-backed sessions answer the single
/// [`SessionQuery::Bound`] query (the histogram fixed at construction).
pub enum SessionQuery<R: ?Sized = Record> {
    /// The histogram pair bound at construction
    /// ([`SessionBuilder::from_histograms`] sessions).
    Bound,
    /// `SELECT bin, COUNT(*) GROUP BY bin` over the bound database: every
    /// record is assigned a bin by the closure (records mapping to `None` or
    /// out of range are ignored).
    CountBy {
        /// Label used in the audit log.
        label: String,
        /// Number of bins.
        bins: usize,
        /// Bin assignment.
        #[allow(clippy::type_complexity)]
        bin_of: Arc<dyn Fn(&R) -> Option<usize> + Send + Sync>,
    },
}

impl<R: ?Sized> SessionQuery<R> {
    /// The bound-histogram query.
    pub fn bound() -> Self {
        SessionQuery::Bound
    }

    /// A grouping query: count records per bin of `bin_of`.
    pub fn count_by(
        label: impl Into<String>,
        bins: usize,
        bin_of: impl Fn(&R) -> Option<usize> + Send + Sync + 'static,
    ) -> Self {
        SessionQuery::CountBy { label: label.into(), bins, bin_of: Arc::new(bin_of) }
    }

    /// The audit-log label of this query.
    pub fn label(&self) -> &str {
        match self {
            SessionQuery::Bound => "bound",
            SessionQuery::CountBy { label, .. } => label,
        }
    }
}

impl<R: ?Sized> Clone for SessionQuery<R> {
    fn clone(&self) -> Self {
        match self {
            SessionQuery::Bound => SessionQuery::Bound,
            SessionQuery::CountBy { label, bins, bin_of } => SessionQuery::CountBy {
                label: label.clone(),
                bins: *bins,
                bin_of: Arc::clone(bin_of),
            },
        }
    }
}

impl<R: ?Sized> std::fmt::Debug for SessionQuery<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionQuery::Bound => f.write_str("SessionQuery::Bound"),
            SessionQuery::CountBy { label, bins, .. } => f
                .debug_struct("SessionQuery::CountBy")
                .field("label", label)
                .field("bins", bins)
                .finish(),
        }
    }
}

/// The outcome of one audited histogram release.
#[derive(Debug, Clone, PartialEq)]
pub struct Release {
    /// The noisy estimate.
    pub estimate: Histogram,
    /// Mechanism display name.
    pub mechanism: String,
    /// Label of the policy the release was evaluated under.
    pub policy: String,
    /// The guarantee of this single release.
    pub guarantee: Guarantee,
    /// The session release index (audit-log key).
    pub index: u64,
}

/// Starts a histogram-backed session (see
/// [`SessionBuilder::from_histograms`]) with the record type pinned to
/// [`Record`] — histogram-backed sessions never touch records, so the
/// parameter is irrelevant and this saves callers a turbofish.
pub fn histogram_session(full: Histogram, non_sensitive: Histogram) -> SessionBuilder<Record> {
    SessionBuilder::from_histograms(full, non_sensitive)
}

/// Builder for [`OsdpSession`].
///
/// ```
/// use osdp_core::policy::NoneSensitive;
/// use osdp_core::Database;
/// use osdp_engine::SessionBuilder;
///
/// let db: Database<u32> = (0..100u32).collect();
/// let session = SessionBuilder::new(db)
///     .policy(NoneSensitive, "Pnone")
///     .budget(1.0)
///     .seed(42)
///     .build()
///     .unwrap();
/// assert_eq!(session.remaining_budget(), Some(1.0));
/// ```
pub struct SessionBuilder<R = Record> {
    db: Option<Database<R>>,
    bound: Option<(Histogram, Histogram)>,
    policy: Option<Arc<dyn Policy<R>>>,
    policy_label: Option<String>,
    budget: Option<f64>,
    seed: u64,
}

impl<R> SessionBuilder<R> {
    /// Starts a session over a record-level database. A policy **must** be
    /// bound with [`SessionBuilder::policy`] before [`SessionBuilder::build`].
    pub fn new(db: Database<R>) -> Self {
        Self { db: Some(db), bound: None, policy: None, policy_label: None, budget: None, seed: 0 }
    }

    /// Starts a session over a pre-aggregated histogram pair: the full
    /// histogram and its non-sensitive sub-histogram (as produced by a policy
    /// sampler). Validated at build time: the two must have the same domain
    /// and `x_ns` must be dominated by `x`.
    pub fn from_histograms(full: Histogram, non_sensitive: Histogram) -> Self {
        Self {
            db: None,
            bound: Some((full, non_sensitive)),
            policy: None,
            policy_label: None,
            budget: None,
            seed: 0,
        }
    }

    /// Binds the policy function and its report label.
    pub fn policy(mut self, policy: impl Policy<R> + 'static, label: impl Into<String>) -> Self {
        self.policy = Some(Arc::new(policy));
        self.policy_label = Some(label.into());
        self
    }

    /// Binds an already-shared policy function.
    pub fn policy_arc(mut self, policy: Arc<dyn Policy<R>>, label: impl Into<String>) -> Self {
        self.policy = Some(policy);
        self.policy_label = Some(label.into());
        self
    }

    /// Overrides the policy label without changing the policy (useful for
    /// histogram-backed sessions, whose policy only exists as the sampled
    /// `x_ns`).
    pub fn policy_label(mut self, label: impl Into<String>) -> Self {
        self.policy_label = Some(label.into());
        self
    }

    /// Caps the total privacy budget of the session. Without a cap the
    /// session only records what is spent (the evaluation-harness mode).
    pub fn budget(mut self, epsilon: f64) -> Self {
        self.budget = Some(epsilon);
        self
    }

    /// Sets the root seed of the session's deterministic RNG streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the session, validating the source.
    pub fn build(self) -> Result<OsdpSession<R>> {
        let accountant = match self.budget {
            Some(limit) => BudgetAccountant::with_limit(limit)?,
            None => BudgetAccountant::unlimited(),
        };
        let policy_label = self.policy_label.unwrap_or_else(|| "P".to_string());
        let (source, policies) = match (self.db, self.bound) {
            (Some(db), None) => {
                let policy = self.policy.ok_or_else(|| {
                    OsdpError::InvalidInput(
                        "a record-backed session needs a policy: call SessionBuilder::policy"
                            .into(),
                    )
                })?;
                let policies = vec![(policy_label.clone(), Arc::clone(&policy))];
                (Source::Records { db, policy }, policies)
            }
            (None, Some((full, non_sensitive))) => {
                if self.policy.is_some() {
                    return Err(OsdpError::InvalidInput(
                        "histogram-backed sessions carry their policy as the sampled x_ns; \
                         use policy_label to name it instead of binding a policy function"
                            .into(),
                    ));
                }
                let task = HistogramTask::new(full, non_sensitive)?;
                (Source::Bound { task }, Vec::new())
            }
            _ => unreachable!("builder constructors set exactly one source"),
        };
        Ok(OsdpSession {
            source,
            policy_label,
            accountant,
            seeds: SeedSequence::new(self.seed),
            audit: AuditLog::new(),
            policies: Mutex::new(policies),
            grant_lock: Mutex::new(()),
        })
    }
}

/// A release session: the single audited path from data + policy + budget to
/// noisy histograms. See the crate docs for the full contract.
pub struct OsdpSession<R = Record> {
    source: Source<R>,
    policy_label: String,
    accountant: BudgetAccountant,
    seeds: SeedSequence,
    audit: AuditLog,
    /// Distinct (label, policy) pairs used by record-level releases, in first
    /// use order — the components of the composed minimum relaxation.
    policies: Mutex<UsedPolicies<R>>,
    /// Serialises debit + audit append so the accountant ledger and the
    /// audit log agree on release order even under concurrent callers.
    grant_lock: Mutex<()>,
}

impl<R> std::fmt::Debug for OsdpSession<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsdpSession")
            .field("policy_label", &self.policy_label)
            .field("spent", &self.accountant.total_spent())
            .field("limit", &self.accountant.limit())
            .field("releases", &self.audit.len())
            .finish()
    }
}

impl<R> OsdpSession<R> {
    /// Shorthand for [`SessionBuilder::new`].
    pub fn builder(db: Database<R>) -> SessionBuilder<R> {
        SessionBuilder::new(db)
    }

    /// The label of the bound policy.
    pub fn policy_label(&self) -> &str {
        &self.policy_label
    }

    /// The session's budget accountant.
    pub fn accountant(&self) -> &BudgetAccountant {
        &self.accountant
    }

    /// Total ε spent so far.
    pub fn total_spent(&self) -> f64 {
        self.accountant.total_spent()
    }

    /// Remaining budget, or `None` for an uncapped session.
    pub fn remaining_budget(&self) -> Option<f64> {
        self.accountant.remaining()
    }

    /// The composed guarantee of everything released so far (Theorem 3.3):
    /// total ε and the labels of the policies whose minimum relaxation the
    /// guarantee refers to.
    pub fn composed_guarantee(&self) -> (f64, Vec<String>) {
        self.accountant.composed_guarantee()
    }

    /// The minimum relaxation of every policy used by record-level releases
    /// in this session (Definition 3.6) — the policy the composed guarantee
    /// of Theorem 3.3 refers to. Empty (all-sensitive) for histogram-backed
    /// sessions, whose policies exist only as sampled sub-histograms.
    pub fn composed_policy(&self) -> MinimumRelaxation<R> {
        MinimumRelaxation::new(self.policies.lock().iter().map(|(_, p)| Arc::clone(p)).collect())
    }

    /// A snapshot of the audit log.
    pub fn audit_records(&self) -> Vec<AuditRecord> {
        self.audit.records()
    }

    /// The audit log's ledger view, consumable by
    /// `osdp_attack::verify_ledger`.
    pub fn audit_ledger(&self) -> Vec<osdp_core::budget::LedgerEntry> {
        self.audit.ledger()
    }

    /// The audit log as JSON.
    pub fn audit_json(&self) -> String {
        self.audit.to_json()
    }

    /// Derives the [`HistogramTask`] for `query` under the bound policy: the
    /// full histogram and the sub-histogram of records the policy classifies
    /// as non-sensitive. This is the **only** place outside mechanism tests
    /// where tasks are constructed, which is what keeps `x_ns` consistent
    /// with `P` across the workspace.
    pub fn derive_task(&self, query: &SessionQuery<R>) -> Result<HistogramTask> {
        self.derive_task_under(query, None)
    }

    fn derive_task_under(
        &self,
        query: &SessionQuery<R>,
        policy_override: Option<&Arc<dyn Policy<R>>>,
    ) -> Result<HistogramTask> {
        match (&self.source, query) {
            (Source::Bound { task }, SessionQuery::Bound) => Ok(task.clone()),
            (Source::Bound { .. }, SessionQuery::CountBy { .. }) => Err(OsdpError::InvalidInput(
                "histogram-backed sessions only answer SessionQuery::Bound".into(),
            )),
            (Source::Records { .. }, SessionQuery::Bound) => Err(OsdpError::InvalidInput(
                "record-backed sessions need a SessionQuery::CountBy query".into(),
            )),
            (Source::Records { db, policy }, SessionQuery::CountBy { bins, bin_of, .. }) => {
                let policy = policy_override.unwrap_or(policy);
                // One pass: bin each record once, adding it to the
                // non-sensitive histogram only when the policy clears it.
                let mut full = Histogram::zeros(*bins);
                let mut non_sensitive = Histogram::zeros(*bins);
                for record in db.iter() {
                    if let Some(bin) = bin_of(record) {
                        if bin < *bins {
                            full.increment(bin, 1.0);
                            if policy.is_non_sensitive(record) {
                                non_sensitive.increment(bin, 1.0);
                            }
                        }
                    }
                }
                HistogramTask::new(full, non_sensitive)
            }
        }
    }

    /// Releases one noisy histogram through `mechanism`.
    ///
    /// The accountant is debited **before** sampling; on
    /// [`OsdpError::BudgetExhausted`] nothing is sampled, nothing is logged,
    /// and nothing may be published.
    pub fn release(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
    ) -> Result<Release> {
        self.release_inner(query, mechanism, None, self.policy_label.clone())
    }

    /// Releases under a *different* policy than the one bound at
    /// construction. The session tracks the minimum relaxation of every
    /// policy used (Theorem 3.3); see [`OsdpSession::composed_policy`].
    /// Record-backed sessions only.
    pub fn release_with_policy(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        policy: Arc<dyn Policy<R>>,
        label: impl Into<String>,
    ) -> Result<Release> {
        if matches!(self.source, Source::Bound { .. }) {
            return Err(OsdpError::InvalidInput(
                "histogram-backed sessions have a fixed sampled policy".into(),
            ));
        }
        self.release_inner(query, mechanism, Some(policy), label.into())
    }

    fn release_inner(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        policy_override: Option<Arc<dyn Policy<R>>>,
        policy_label: String,
    ) -> Result<Release> {
        let task = self.derive_task_under(query, policy_override.as_ref())?;
        let guarantee = mechanism.guarantee();
        // Debit before sampling: a refused spend must not leak a sample. The
        // grant lock makes debit + audit append one atomic step, so ledger
        // order and audit order agree even under concurrent callers; the
        // expensive part (sampling) stays outside the critical section.
        let grant = self.grant_lock.lock();
        self.accountant.spend(
            mechanism.name(),
            policy_label.clone(),
            guarantee.epsilon(),
            guarantee.kind(),
        )?;
        if let Some(policy) = policy_override {
            self.remember_policy(&policy_label, policy);
        }
        let index = self.audit.append_next(|index| AuditRecord {
            index,
            mechanism: mechanism.name().to_string(),
            policy: policy_label.clone(),
            query: query.label().to_string(),
            bins: task.bins(),
            trials: 1,
            guarantee,
        });
        drop(grant);
        let mut rng = self.seeds.rng_for(&format!("release/{}", mechanism.name()), index);
        let estimate = mechanism.release(&task, &mut rng);
        Ok(Release {
            estimate,
            mechanism: mechanism.name().to_string(),
            policy: policy_label,
            guarantee,
            index,
        })
    }

    /// Releases `trials` independent estimates of the same query, one trial
    /// per core (rayon). The batch costs `trials × ε` under sequential
    /// composition (Theorem 3.3) and is debited **up front**: either the
    /// whole batch is granted or none of it is.
    ///
    /// Per-trial RNG streams are derived from `(session seed, release index,
    /// trial index)`, so the output is identical to
    /// [`OsdpSession::release_trials_serial`] regardless of thread schedule.
    pub fn release_trials(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        trials: usize,
    ) -> Result<Vec<Histogram>> {
        let (task, index) = self.begin_trials(query, mechanism, trials)?;
        let seeds = &self.seeds;
        let estimates: Vec<Histogram> = (0..trials as u64)
            .into_par_iter()
            .map(|trial| {
                let mut rng = seeds.rng_for(&format!("trials/{index}/{}", mechanism.name()), trial);
                mechanism.release(&task, &mut rng)
            })
            .collect();
        Ok(estimates)
    }

    /// The sequential reference path for [`OsdpSession::release_trials`]:
    /// identical accounting, audit record and output, one trial at a time.
    /// Kept for benchmarking and for debugging parallel-execution issues.
    pub fn release_trials_serial(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        trials: usize,
    ) -> Result<Vec<Histogram>> {
        let (task, index) = self.begin_trials(query, mechanism, trials)?;
        Ok((0..trials as u64)
            .map(|trial| {
                let mut rng =
                    self.seeds.rng_for(&format!("trials/{index}/{}", mechanism.name()), trial);
                mechanism.release(&task, &mut rng)
            })
            .collect())
    }

    /// Shared preamble of the two batch paths: derive the task, debit the
    /// whole batch, append the audit record, allocate the release index.
    fn begin_trials(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        trials: usize,
    ) -> Result<(HistogramTask, u64)> {
        if trials == 0 {
            return Err(OsdpError::InvalidInput("release_trials needs trials >= 1".into()));
        }
        let task = self.derive_task(query)?;
        let guarantee = mechanism.guarantee();
        let _grant = self.grant_lock.lock();
        self.accountant.spend(
            format!("{} x{}", mechanism.name(), trials),
            self.policy_label.clone(),
            guarantee.epsilon() * trials as f64,
            guarantee.kind(),
        )?;
        let index = self.audit.append_next(|index| AuditRecord {
            index,
            mechanism: mechanism.name().to_string(),
            policy: self.policy_label.clone(),
            query: query.label().to_string(),
            bins: task.bins(),
            trials,
            guarantee,
        });
        Ok((task, index))
    }

    fn remember_policy(&self, label: &str, policy: Arc<dyn Policy<R>>) {
        let mut policies = self.policies.lock();
        // Dedup by policy *identity*: two distinct policies registered under
        // one label must both enter the composed minimum relaxation
        // (dropping either would over-claim protection).
        if !policies.iter().any(|(_, p)| Arc::ptr_eq(p, &policy)) {
            policies.push((label.to_string(), policy));
        }
    }
}

impl<R: Clone> OsdpSession<R> {
    /// Releases a **true sample** of the non-sensitive records through
    /// `OsdpRR` (Algorithm 1) — the record-level front door. Debits ε and
    /// audits like every other release. Record-backed sessions only.
    pub fn release_records(&self, mechanism: &OsdpRr) -> Result<Database<R>> {
        let Source::Records { db, policy } = &self.source else {
            return Err(OsdpError::InvalidInput(
                "release_records needs a record-backed session".into(),
            ));
        };
        let guarantee = Guarantee::Osdp { eps: mechanism.epsilon() };
        let grant = self.grant_lock.lock();
        self.accountant.spend(
            "OsdpRR (records)",
            self.policy_label.clone(),
            guarantee.epsilon(),
            guarantee.kind(),
        )?;
        let index = self.audit.append_next(|index| AuditRecord {
            index,
            mechanism: "OsdpRR (records)".to_string(),
            policy: self.policy_label.clone(),
            query: "record-sample".to_string(),
            bins: 0,
            trials: 1,
            guarantee,
        });
        drop(grant);
        let mut rng = self.seeds.rng_for("release-records/OsdpRR", index);
        let sample = mechanism.release(db, policy.as_ref(), &mut rng);
        Ok(sample)
    }

    /// Number of records in a record-backed session's database.
    pub fn database_len(&self) -> Option<usize> {
        match &self.source {
            Source::Records { db, .. } => Some(db.len()),
            Source::Bound { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdp_core::policy::ClosurePolicy;
    use osdp_core::OsdpError;
    use osdp_mechanisms::{DpLaplaceHistogram, OsdpLaplace, OsdpLaplaceL1, Suppress};

    fn codes_db(n: u32) -> Database<u32> {
        (0..n).collect()
    }

    /// Values >= 50 are sensitive.
    fn upper_half() -> ClosurePolicy<u32> {
        ClosurePolicy::new("upper-half", |&v: &u32| v >= 50)
    }

    fn mod8_query() -> SessionQuery<u32> {
        SessionQuery::count_by("mod8", 8, |&v: &u32| Some((v % 8) as usize))
    }

    fn records_session(budget: Option<f64>) -> OsdpSession<u32> {
        let mut b = SessionBuilder::new(codes_db(100)).policy(upper_half(), "P50").seed(7);
        if let Some(eps) = budget {
            b = b.budget(eps);
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_requires_a_policy_for_record_sessions() {
        let err = SessionBuilder::new(codes_db(10)).build().unwrap_err();
        assert!(matches!(err, OsdpError::InvalidInput(_)));
    }

    #[test]
    fn builder_validates_bound_histograms() {
        let full = Histogram::from_counts(vec![1.0, 2.0]);
        let bad_ns = Histogram::from_counts(vec![5.0, 0.0]);
        assert!(SessionBuilder::<Record>::from_histograms(full.clone(), bad_ns).build().is_err());
        let short = Histogram::zeros(1);
        assert!(SessionBuilder::<Record>::from_histograms(full, short).build().is_err());
    }

    #[test]
    fn task_derivation_matches_the_bound_policy() {
        let session = records_session(None);
        let task = session.derive_task(&mod8_query()).unwrap();
        // 100 codes over 8 bins; values < 50 are non-sensitive.
        assert_eq!(task.full().total(), 100.0);
        assert_eq!(task.non_sensitive().total(), 50.0);
        assert!(task.non_sensitive().dominated_by(task.full()).unwrap());
    }

    #[test]
    fn release_debits_before_sampling_and_audits() {
        let session = records_session(Some(1.0));
        let mechanism = OsdpLaplaceL1::new(0.75).unwrap();
        let release = session.release(&mod8_query(), &mechanism).unwrap();
        assert_eq!(release.estimate.len(), 8);
        assert_eq!(release.policy, "P50");
        assert!((session.total_spent() - 0.75).abs() < 1e-12);
        assert_eq!(session.audit_records().len(), 1);
        assert_eq!(session.audit_records()[0].query, "mod8");

        // The second release would need 0.75 > 0.25 remaining: refused, not
        // sampled, not logged.
        let err = session.release(&mod8_query(), &mechanism).unwrap_err();
        assert!(matches!(err, OsdpError::BudgetExhausted { .. }));
        assert_eq!(session.audit_records().len(), 1);
        assert!((session.total_spent() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn trials_are_debited_up_front_and_deterministic_across_schedules() {
        let session = records_session(None);
        let mechanism = OsdpLaplace::new(0.5).unwrap();
        let par = session.release_trials(&mod8_query(), &mechanism, 8).unwrap();
        // A fresh session with the same seed: the serial path must reproduce
        // the parallel output exactly (streams keyed by trial index).
        let session2 = records_session(None);
        let serial = session2.release_trials_serial(&mod8_query(), &mechanism, 8).unwrap();
        assert_eq!(par, serial);
        assert!((session.total_spent() - 8.0 * 0.5).abs() < 1e-12);
        let audit = session.audit_records();
        assert_eq!(audit.len(), 1);
        assert_eq!(audit[0].trials, 8);
        assert!((audit[0].total_epsilon() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exhausted_budget_refuses_the_whole_batch() {
        let session = records_session(Some(1.0));
        let mechanism = OsdpLaplace::new(0.3).unwrap();
        let err = session.release_trials(&mod8_query(), &mechanism, 4).unwrap_err();
        assert!(matches!(err, OsdpError::BudgetExhausted { .. }));
        assert_eq!(session.total_spent(), 0.0, "all-or-nothing batches");
        assert!(session.audit_records().is_empty());
        assert!(session.release_trials(&mod8_query(), &mechanism, 3).is_ok());
        assert!(session.release_trials(&mod8_query(), &mechanism, 0).is_err());
    }

    #[test]
    fn bound_sessions_answer_only_the_bound_query() {
        let full = Histogram::from_counts(vec![10.0, 20.0, 30.0]);
        let ns = Histogram::from_counts(vec![10.0, 10.0, 0.0]);
        let session = SessionBuilder::<u32>::from_histograms(full, ns)
            .policy_label("P-sampled")
            .seed(3)
            .build()
            .unwrap();
        let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
        let release = session.release(&SessionQuery::bound(), &mechanism).unwrap();
        assert_eq!(release.estimate.len(), 3);
        assert!(session.release(&mod8_query(), &mechanism).is_err());
        assert_eq!(session.audit_records()[0].policy, "P-sampled");
    }

    #[test]
    fn record_sessions_reject_the_bound_query() {
        let session = records_session(None);
        let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
        assert!(session.release(&SessionQuery::bound(), &mechanism).is_err());
    }

    #[test]
    fn composed_guarantee_tracks_policies_and_minimum_relaxation() {
        let session = records_session(None);
        let l1 = OsdpLaplaceL1::new(0.5).unwrap();
        let dp = DpLaplaceHistogram::new(0.25).unwrap();
        session.release(&mod8_query(), &l1).unwrap();
        // A second release under a relaxed policy: only values >= 80 stay
        // sensitive.
        let relaxed: Arc<dyn Policy<u32>> =
            Arc::new(ClosurePolicy::new("upper-fifth", |&v: &u32| v >= 80));
        session.release_with_policy(&mod8_query(), &dp, Arc::clone(&relaxed), "P80").unwrap();

        let (eps, policies) = session.composed_guarantee();
        assert!((eps - 0.75).abs() < 1e-12);
        assert_eq!(policies, vec!["P50".to_string(), "P80".to_string()]);

        // The composed (minimum-relaxation) policy classifies a record as
        // sensitive only when *every* component does (Definition 3.6).
        let composed = session.composed_policy();
        assert_eq!(composed.len(), 2);
        assert!(composed.is_non_sensitive(&60), "non-sensitive under P80");
        assert!(composed.is_sensitive(&90), "sensitive under both");
        assert!(composed.is_non_sensitive(&10));
    }

    #[test]
    fn pdp_releases_are_flagged_in_the_ledger() {
        let session = records_session(None);
        let suppress = Suppress::new(10.0).unwrap();
        session.release(&mod8_query(), &suppress).unwrap();
        let ledger = session.audit_ledger();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].guarantee, osdp_core::PrivacyGuarantee::Personalized);
        assert_eq!(ledger[0].epsilon, 10.0);
    }

    #[test]
    fn release_records_samples_only_non_sensitive_records() {
        let session = records_session(Some(2.0));
        let rr = OsdpRr::new(1.0).unwrap();
        let sample = session.release_records(&rr).unwrap();
        assert!(sample.iter().all(|&v| v < 50), "sensitive codes never leave");
        assert!(!sample.is_empty(), "at ~63% keep rate, 50 candidates");
        assert!((session.total_spent() - 1.0).abs() < 1e-12);
        assert_eq!(session.database_len(), Some(100));

        // Histogram-backed sessions cannot release records.
        let bound = SessionBuilder::<u32>::from_histograms(
            Histogram::from_counts(vec![5.0]),
            Histogram::from_counts(vec![5.0]),
        )
        .build()
        .unwrap();
        assert!(bound.release_records(&rr).is_err());
        assert_eq!(bound.database_len(), None);
    }

    #[test]
    fn same_seed_reproduces_same_estimates() {
        let a = records_session(None);
        let b = records_session(None);
        let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
        let ra = a.release(&mod8_query(), &mechanism).unwrap();
        let rb = b.release(&mod8_query(), &mechanism).unwrap();
        assert_eq!(ra.estimate, rb.estimate);
    }
}
