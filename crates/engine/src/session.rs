//! [`OsdpSession`]: the budget-enforced, policy-aware release path.

use crate::audit::{AuditLog, AuditRecord};
use crate::backend::{Backend, ColumnarBackend, HistogramPair, QueryPlan, RowBackend};
use crate::cache::TaskCache;
use crate::intern::Interner;
use crate::persist::{GrantEvent, SessionPersistence, SessionWal};
use osdp_attack::{EpochTransition, ReleaseStamp};
use osdp_core::error::{OsdpError, Result};
use osdp_core::frame::{BinSpec, ColumnarFrame, PAIR_BIN_FIELD, PAIR_FLAG_FIELD};
use osdp_core::policy::{
    AttributePolicy, EpochDirection, MinimumRelaxation, Policy, VersionedPolicy,
};
use osdp_core::{BudgetAccountant, Database, Guarantee, Histogram, Record};
use osdp_mechanisms::{HistogramMechanism, HistogramTask, OsdpRr};
use osdp_noise::SeedSequence;
use osdp_persist::EpochRecord;
use parking_lot::{Mutex, RwLock};
use rayon::prelude::*;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// The labelled policies a session's record-level releases have used, in
/// first-use order.
type UsedPolicies<R> = Vec<(String, Arc<dyn Policy<R>>)>;

/// One installed policy epoch: the policy object, its audit label, and the
/// version the packed audit counter stamps while it is current.
struct EpochState<R> {
    policy: Arc<dyn Policy<R>>,
    label: Arc<str>,
    version: u64,
}

/// Everything the transition slow path guards: the pinned epoch states, the
/// core lifecycle registry, and the transition metadata audits consume.
struct EpochHistory<R> {
    /// Pinned epoch states, indexed by `version - base_version`. **Never
    /// popped**: a pointer loaded from [`EpochCell::current`] stays valid
    /// for the cell's lifetime (the same no-ABA argument as the task and
    /// partition caches).
    states: Vec<Arc<EpochState<R>>>,
    /// The core registry: tighten/relax ordering, permissiveness levels and
    /// cross-version minimum relaxation (Definitions 3.5/3.6 over time).
    registry: VersionedPolicy<R>,
    /// Applied + recovered transition metadata in version order — exactly
    /// what [`osdp_attack::verify_epoch_stamps`] consumes.
    transitions: Vec<EpochTransition>,
    /// The engine version of registry index 0. Non-zero after recovery:
    /// pre-crash epochs exist as durable metadata in `transitions`, but
    /// policies are code, not data, so the rebuilt session serves under its
    /// builder-bound policy as the current epoch and resumes version
    /// numbering from here.
    base_version: u64,
}

/// The session's policy lifecycle cell.
///
/// The release path reads the current epoch through **one atomic pointer
/// load** — no lock, no reference-count traffic — so static-policy sessions
/// pay nothing for the lifecycle machinery. Transitions are the slow path:
/// they serialize on the history mutex, install the new state, swap the
/// pointer, and only then bump the packed audit version counter. Because
/// the swap happens *before* the bump, the epoch for any version the
/// counter ever hands out is already installed, which is what makes the
/// stamped-version re-derivation in the release path total.
struct EpochCell<R> {
    current: AtomicPtr<EpochState<R>>,
    history: Mutex<EpochHistory<R>>,
}

impl<R> EpochCell<R> {
    fn new(
        policy: Arc<dyn Policy<R>>,
        label: Arc<str>,
        base_version: u64,
        recovered: Vec<EpochTransition>,
    ) -> Self {
        let state = Arc::new(EpochState {
            policy: Arc::clone(&policy),
            label: Arc::clone(&label),
            version: base_version,
        });
        let current = AtomicPtr::new(Arc::as_ptr(&state) as *mut EpochState<R>);
        Self {
            current,
            history: Mutex::new(EpochHistory {
                states: vec![state],
                registry: VersionedPolicy::new(policy, label),
                transitions: recovered,
                base_version,
            }),
        }
    }

    /// The epoch currently in force — one atomic load.
    fn current(&self) -> &EpochState<R> {
        // SAFETY: the pointer always targets an `Arc` pinned by
        // `history.states`, which never pops while `self` is alive.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    /// The epoch installed for `version`, if this process installed one
    /// (recovered pre-crash versions have metadata only). Slow path: takes
    /// the history lock.
    fn state(&self, version: u64) -> Option<Arc<EpochState<R>>> {
        let history = self.history.lock();
        version
            .checked_sub(history.base_version)
            .and_then(|i| history.states.get(i as usize))
            .map(Arc::clone)
    }
}

/// What a session releases against: a record-level [`Backend`] whose policy
/// lifecycle lives in an [`EpochCell`], or a pre-aggregated histogram pair
/// (the shape the DPBench-style experiment harness produces with sampled
/// policies — fixed policy, no transitions).
enum Source<R> {
    Records { backend: Arc<dyn Backend<R>>, epoch: EpochCell<R> },
    Bound { task: Arc<HistogramTask> },
}

/// A histogram query answered by a session.
///
/// Record-backed sessions evaluate [`SessionQuery::CountBy`] queries by
/// binning every record; histogram-backed sessions answer the single
/// [`SessionQuery::Bound`] query (the histogram fixed at construction).
pub enum SessionQuery<R: ?Sized = Record> {
    /// The histogram pair bound at construction
    /// ([`SessionBuilder::from_histograms`] sessions).
    Bound,
    /// `SELECT bin, COUNT(*) GROUP BY bin` over the bound database: every
    /// record is assigned a bin by the closure (records mapping to `None` or
    /// out of range are ignored). Queries built from a [`BinSpec`]
    /// additionally carry the compiled assignment, which columnar backends
    /// evaluate vectorized instead of calling the closure per record.
    CountBy {
        /// Label used in the audit log.
        label: String,
        /// Number of bins.
        bins: usize,
        /// Bin assignment (the row-at-a-time reference semantics).
        #[allow(clippy::type_complexity)]
        bin_of: Arc<dyn Fn(&R) -> Option<usize> + Send + Sync>,
        /// The compiled bin assignment, when the query was built from one.
        spec: Option<BinSpec>,
    },
}

impl<R: ?Sized> SessionQuery<R> {
    /// The bound-histogram query.
    pub fn bound() -> Self {
        SessionQuery::Bound
    }

    /// A grouping query: count records per bin of `bin_of`. The closure is
    /// opaque, so columnar backends answer it from their retained rows; use
    /// [`SessionQuery::count_by_categorical`] /
    /// [`SessionQuery::count_by_int_linear`] for queries that push down.
    pub fn count_by(
        label: impl Into<String>,
        bins: usize,
        bin_of: impl Fn(&R) -> Option<usize> + Send + Sync + 'static,
    ) -> Self {
        SessionQuery::CountBy { label: label.into(), bins, bin_of: Arc::new(bin_of), spec: None }
    }

    /// The audit-log label of this query.
    pub fn label(&self) -> &str {
        match self {
            SessionQuery::Bound => "bound",
            SessionQuery::CountBy { label, .. } => label,
        }
    }
}

impl SessionQuery<Record> {
    /// A grouping query over a categorical field: the bin is the field's
    /// categorical code. Carries both the compiled [`BinSpec`] (vectorized on
    /// columnar backends) and the equivalent row closure (derived from the
    /// same spec, so the two paths cannot drift).
    pub fn count_by_categorical(
        label: impl Into<String>,
        field: impl Into<String>,
        bins: usize,
    ) -> Self {
        Self::from_spec(label, bins, BinSpec::Categorical { field: field.into() })
    }

    /// A grouping query over an integer field: the bin is
    /// `(value − origin) / width`. See
    /// [`SessionQuery::count_by_categorical`] for the pushdown semantics.
    pub fn count_by_int_linear(
        label: impl Into<String>,
        field: impl Into<String>,
        origin: i64,
        width: i64,
        bins: usize,
    ) -> Self {
        Self::from_spec(label, bins, BinSpec::IntLinear { field: field.into(), origin, width })
    }

    /// Builds the query from a compiled spec, deriving the row closure from
    /// the same spec.
    pub fn from_spec(label: impl Into<String>, bins: usize, spec: BinSpec) -> Self {
        let closure_spec = spec.clone();
        SessionQuery::CountBy {
            label: label.into(),
            bins,
            bin_of: Arc::new(move |r: &Record| closure_spec.bin_of_record(r)),
            spec: Some(spec),
        }
    }
}

impl<R: ?Sized> Clone for SessionQuery<R> {
    fn clone(&self) -> Self {
        match self {
            SessionQuery::Bound => SessionQuery::Bound,
            SessionQuery::CountBy { label, bins, bin_of, spec } => SessionQuery::CountBy {
                label: label.clone(),
                bins: *bins,
                bin_of: Arc::clone(bin_of),
                spec: spec.clone(),
            },
        }
    }
}

impl<R: ?Sized> std::fmt::Debug for SessionQuery<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionQuery::Bound => f.write_str("SessionQuery::Bound"),
            SessionQuery::CountBy { label, bins, spec, .. } => f
                .debug_struct("SessionQuery::CountBy")
                .field("label", label)
                .field("bins", bins)
                .field("spec", spec)
                .finish(),
        }
    }
}

/// The outcome of one audited histogram release.
#[derive(Debug, Clone, PartialEq)]
pub struct Release {
    /// The noisy estimate.
    pub estimate: Histogram,
    /// Mechanism display name.
    pub mechanism: String,
    /// Label of the policy the release was evaluated under.
    pub policy: String,
    /// The guarantee of this single release.
    pub guarantee: Guarantee,
    /// The session release index (audit-log key).
    pub index: u64,
}

/// One mechanism's slice of an [`OsdpSession::release_pool`] batch.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolRelease {
    /// Mechanism display name.
    pub mechanism: String,
    /// The audit-log release index of this mechanism's trial batch.
    pub index: u64,
    /// The guarantee of **one** trial (the batch cost `trials × ε`).
    pub guarantee: Guarantee,
    /// The per-trial estimates, identical to what
    /// [`OsdpSession::release_trials`] would have produced for this
    /// mechanism.
    pub estimates: Vec<Histogram>,
}

/// Starts a histogram-backed session (see
/// [`SessionBuilder::from_histograms`]) with the record type pinned to
/// [`Record`] — histogram-backed sessions never touch records, so the
/// parameter is irrelevant and this saves callers a turbofish.
pub fn histogram_session(full: Histogram, non_sensitive: Histogram) -> SessionBuilder<Record> {
    SessionBuilder::from_histograms(full, non_sensitive)
}

/// Builder for [`OsdpSession`].
///
/// ```
/// use osdp_core::policy::NoneSensitive;
/// use osdp_core::Database;
/// use osdp_engine::SessionBuilder;
///
/// let db: Database<u32> = (0..100u32).collect();
/// let session = SessionBuilder::new(db)
///     .policy(NoneSensitive, "Pnone")
///     .budget(1.0)
///     .seed(42)
///     .build()
///     .unwrap();
/// assert_eq!(session.remaining_budget(), Some(1.0));
/// ```
pub struct SessionBuilder<R = Record> {
    db: Option<Database<R>>,
    backend: Option<Arc<dyn Backend<R>>>,
    bound: Option<(Histogram, Histogram)>,
    policy: Option<Arc<dyn Policy<R>>>,
    policy_label: Option<String>,
    budget: Option<f64>,
    seed: u64,
    persistence: Option<SessionPersistence>,
    /// Set once [`SessionBuilder::columnar`] has converted the database, so
    /// repeated calls stay no-ops.
    columnar_applied: bool,
    /// Set when [`SessionBuilder::columnar`] is called on a builder with no
    /// database to convert; surfaced as an error by `build` instead of
    /// silently keeping the original source.
    columnar_misuse: bool,
}

impl<R> SessionBuilder<R> {
    /// Starts a session over a record-level database, scanned by the
    /// row-at-a-time [`RowBackend`] (see [`SessionBuilder::columnar`] and
    /// [`SessionBuilder::with_backend`] for the alternatives). A policy **must**
    /// be bound with [`SessionBuilder::policy`] before
    /// [`SessionBuilder::build`].
    pub fn new(db: Database<R>) -> Self {
        Self {
            db: Some(db),
            backend: None,
            bound: None,
            policy: None,
            policy_label: None,
            budget: None,
            seed: 0,
            persistence: None,
            columnar_applied: false,
            columnar_misuse: false,
        }
    }

    /// Starts a session over an explicit scan [`Backend`] — the extension
    /// point for external stores (sharded, streaming, SQL). A policy must
    /// still be bound.
    pub fn with_backend(backend: Arc<dyn Backend<R>>) -> Self {
        Self {
            db: None,
            backend: Some(backend),
            bound: None,
            policy: None,
            policy_label: None,
            budget: None,
            seed: 0,
            persistence: None,
            columnar_applied: false,
            columnar_misuse: false,
        }
    }

    /// Starts a session over a pre-aggregated histogram pair: the full
    /// histogram and its non-sensitive sub-histogram (as produced by a policy
    /// sampler). Validated at build time: the two must have the same domain
    /// and `x_ns` must be dominated by `x`.
    pub fn from_histograms(full: Histogram, non_sensitive: Histogram) -> Self {
        Self {
            db: None,
            backend: None,
            bound: Some((full, non_sensitive)),
            policy: None,
            policy_label: None,
            budget: None,
            seed: 0,
            persistence: None,
            columnar_applied: false,
            columnar_misuse: false,
        }
    }

    /// Binds the policy function and its report label.
    pub fn policy(mut self, policy: impl Policy<R> + 'static, label: impl Into<String>) -> Self {
        self.policy = Some(Arc::new(policy));
        self.policy_label = Some(label.into());
        self
    }

    /// Binds an already-shared policy function.
    pub fn policy_arc(mut self, policy: Arc<dyn Policy<R>>, label: impl Into<String>) -> Self {
        self.policy = Some(policy);
        self.policy_label = Some(label.into());
        self
    }

    /// Overrides the policy label without changing the policy (useful for
    /// histogram-backed sessions, whose policy only exists as the sampled
    /// `x_ns`).
    pub fn policy_label(mut self, label: impl Into<String>) -> Self {
        self.policy_label = Some(label.into());
        self
    }

    /// Caps the total privacy budget of the session. Without a cap the
    /// session only records what is spent (the evaluation-harness mode).
    pub fn budget(mut self, epsilon: f64) -> Self {
        self.budget = Some(epsilon);
        self
    }

    /// Sets the root seed of the session's deterministic RNG streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Backs the session with a durable budget plane: the accountant and
    /// audit log are **seeded from the recovered state** of the tenant WAL
    /// shard behind `persistence` (fresh shards seed zeros), and every
    /// grant is thereafter logged to the WAL — after the accountant's CAS
    /// admits it, before any noise is sampled. See the crate docs'
    /// "Durability model" section for the sync-policy trade-offs.
    pub fn durable(mut self, persistence: SessionPersistence) -> Self {
        self.persistence = Some(persistence);
        self
    }

    /// Builds the session, validating the source.
    pub fn build(self) -> Result<OsdpSession<R>>
    where
        R: Send + Sync + 'static,
    {
        if self.columnar_misuse {
            return Err(OsdpError::InvalidInput(
                "SessionBuilder::columnar only applies to record-backed builders \
                 (SessionBuilder::new); histogram-backed and explicit-backend \
                 sessions have no database to convert"
                    .into(),
            ));
        }
        // A durable builder seeds the accountant and audit log from the
        // recovered ledger — raw integer counters (including the packed
        // policy-version bits), so a restart resumes the exact pre-crash
        // state — and keeps the WAL hooked into the grant path. A plain
        // builder starts both from zero with no WAL.
        let (accountant, audit, wal, base_version, recovered_transitions) = match self.persistence {
            Some(persistence) => {
                let SessionPersistence { wal, recovered } = persistence;
                let accountant = BudgetAccountant::recovered(self.budget, recovered.spent_units)?;
                let audit = AuditLog::recovered(
                    recovered.base_seq,
                    recovered.policy_version,
                    recovered.base_units,
                    recovered.base_entries,
                );
                for (record, units) in recovered.tail {
                    audit.restore(record, units);
                }
                (accountant, audit, Some(wal), recovered.policy_version, recovered.transitions)
            }
            None => {
                let accountant = match self.budget {
                    Some(limit) => BudgetAccountant::with_limit(limit)?,
                    None => BudgetAccountant::unlimited(),
                };
                (accountant, AuditLog::new(), None, 0, Vec::new())
            }
        };
        let policy_label = self.policy_label.unwrap_or_else(|| "P".to_string());
        let backend = match (self.db, self.backend) {
            (Some(db), None) => Some(Arc::new(RowBackend::new(db)) as Arc<dyn Backend<R>>),
            (None, Some(backend)) => Some(backend),
            _ => None,
        };
        let label_arc: Arc<str> = Arc::from(policy_label.as_str());
        let (source, policies) = match (backend, self.bound) {
            (Some(backend), None) => {
                let policy = self.policy.ok_or_else(|| {
                    OsdpError::InvalidInput(
                        "a record-backed session needs a policy: call SessionBuilder::policy"
                            .into(),
                    )
                })?;
                let policies = vec![(policy_label.clone(), Arc::clone(&policy))];
                // Recovered pre-crash epochs carry over as durable metadata
                // (`transitions`); the builder-bound policy is installed as
                // the current epoch at the recovered version number, so the
                // audit counter resumes stamping exactly where the crashed
                // process stopped.
                let epoch = EpochCell::new(
                    policy,
                    Arc::clone(&label_arc),
                    base_version,
                    recovered_transitions
                        .iter()
                        .map(|t| EpochTransition {
                            version: t.version,
                            boundary_seq: t.boundary_seq,
                            relaxes: t.relaxes,
                            label: t.label.clone(),
                        })
                        .collect(),
                );
                (Source::Records { backend, epoch }, policies)
            }
            (None, Some((full, non_sensitive))) => {
                if self.policy.is_some() {
                    return Err(OsdpError::InvalidInput(
                        "histogram-backed sessions carry their policy as the sampled x_ns; \
                         use policy_label to name it instead of binding a policy function"
                            .into(),
                    ));
                }
                let task = Arc::new(HistogramTask::new(full, non_sensitive)?);
                (Source::Bound { task }, Vec::new())
            }
            _ => unreachable!("builder constructors set exactly one source"),
        };
        Ok(OsdpSession {
            source,
            policy_label: label_arc,
            accountant,
            seeds: SeedSequence::new(self.seed),
            audit,
            wal,
            policies: RwLock::new(policies),
            tasks: TaskCache::new(),
            labels: Interner::new(),
            stream_labels: Interner::new(),
        })
    }
}

impl SessionBuilder<Record> {
    /// Switches a record-backed session onto the vectorized
    /// [`ColumnarBackend`]: the database is snapshotted into a
    /// [`ColumnarFrame`] (rows retained for opaque policies/queries) and
    /// every scan evaluates column-at-a-time with the policy partition
    /// cached per policy. Output is bit-for-bit identical to the row
    /// backend's.
    pub fn columnar(mut self) -> Self {
        match self.db.take() {
            Some(db) => {
                self.backend = Some(Arc::new(ColumnarBackend::from_database(db)));
                self.columnar_applied = true;
            }
            // Already converted: a repeated call is a harmless no-op.
            None if self.columnar_applied => {}
            // Nothing to convert (histogram-backed or explicit-backend
            // builder): flag it so `build` errors instead of silently
            // running on the original source.
            None => self.columnar_misuse = true,
        }
        self
    }

    /// Starts a session over a pre-built (possibly weighted) columnar frame.
    /// No rows are retained: the bound policy must compile
    /// ([`Policy::compiled`]) and queries must carry a
    /// [`BinSpec`].
    pub fn from_frame(frame: ColumnarFrame) -> Self {
        Self::with_backend(Arc::new(ColumnarBackend::from_frame(frame)))
    }
}

/// Opens a columnar session over a pre-aggregated `(x, x_ns)` histogram pair
/// by expanding it into a weighted two-column frame
/// ([`ColumnarFrame::from_histogram_pair`]): one row per (bin, sensitivity
/// flag) with the count as its weight. Scanning the frame with
/// [`pair_query`] reproduces the pair exactly, so histogram-level workloads
/// (DPBench, sampled policies) ride the same [`Backend`] pipeline as
/// record-level databases — same audit, budget and cache machinery.
///
/// The bound policy is *sensitive when the flag is false*
/// (vectorized); override the report label with
/// [`SessionBuilder::policy_label`].
pub fn pair_session(full: &Histogram, non_sensitive: &Histogram) -> Result<SessionBuilder<Record>> {
    let frame = ColumnarFrame::from_histogram_pair(full, non_sensitive)?;
    Ok(SessionBuilder::from_frame(frame).policy(AttributePolicy::opt_in(PAIR_FLAG_FIELD), "P-pair"))
}

/// The query matching [`pair_session`] frames: `GROUP BY bin` over the
/// expansion's categorical bin column, with `bins` equal to the original
/// histogram domain.
pub fn pair_query(bins: usize) -> SessionQuery<Record> {
    SessionQuery::count_by_categorical("pair", PAIR_BIN_FIELD, bins)
}

/// A release session: the single audited path from data + policy + budget to
/// noisy histograms. See the crate docs for the full contract.
pub struct OsdpSession<R = Record> {
    source: Source<R>,
    policy_label: Arc<str>,
    accountant: BudgetAccountant,
    seeds: SeedSequence,
    audit: AuditLog,
    /// The durable write-ahead ledger hook, when the session was built with
    /// [`SessionBuilder::durable`]. Grants are logged after the
    /// accountant's CAS admits them and before sampling.
    wal: Option<SessionWal>,
    /// Distinct (label, policy) pairs used by record-level releases, in first
    /// use order — the components of the composed minimum relaxation. Reads
    /// (the common case) share the lock; only a release under a *new*
    /// override policy writes.
    policies: RwLock<UsedPolicies<R>>,
    /// Derived-task cache: one backend scan per distinct (query, policy,
    /// backend) identity, shared by every release path. Hash-sharded, so
    /// concurrent derivations of distinct queries never serialize.
    tasks: TaskCache<R>,
    /// Interned audit labels (mechanism / policy / query).
    labels: Interner,
    /// Interned RNG stream labels (`release/<mechanism>`), so single
    /// releases stop paying a `format!` each.
    stream_labels: Interner,
}

impl<R> std::fmt::Debug for OsdpSession<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsdpSession")
            .field("policy_label", &self.policy_label)
            .field("spent", &self.accountant.total_spent())
            .field("limit", &self.accountant.limit())
            .field("releases", &self.audit.len())
            .finish()
    }
}

impl<R> OsdpSession<R> {
    /// Shorthand for [`SessionBuilder::new`].
    pub fn builder(db: Database<R>) -> SessionBuilder<R> {
        SessionBuilder::new(db)
    }

    /// The label of the bound policy.
    pub fn policy_label(&self) -> &str {
        &self.policy_label
    }

    /// The session's budget accountant.
    pub fn accountant(&self) -> &BudgetAccountant {
        &self.accountant
    }

    /// The session's audit log — shard-length probes
    /// ([`AuditLog::shard_lens`]) and allocation-reusing snapshots
    /// ([`AuditLog::records_into`], [`AuditLog::ledger_with`]) for sweeps
    /// over many sessions.
    pub fn audit_log(&self) -> &AuditLog {
        &self.audit
    }

    /// The durable WAL handle, when the session was built with
    /// [`SessionBuilder::durable`] (sync, snapshot rotation, crash
    /// simulation); `None` for a purely in-memory session.
    pub fn persistence(&self) -> Option<&SessionWal> {
        self.wal.as_ref()
    }

    /// The WAL half of the grant path: logs an admitted grant after the
    /// accountant's CAS and the audit append, **before** sampling. An IO
    /// failure refuses the release (the ε stays spent and audited — the
    /// conservative direction; a sample must never outrun its durable
    /// record). No-op without persistence.
    fn wal_grant(&self, event: GrantEvent<'_>) -> Result<()> {
        match &self.wal {
            Some(wal) => wal.log_grant(event),
            None => Ok(()),
        }
    }

    /// Logs a budget refusal to the WAL (best-effort: refusals spend
    /// nothing, so a lost refusal record never unbalances recovery) and
    /// passes the error through.
    fn wal_refused(&self, mechanism: &str, requested: f64, err: OsdpError) -> OsdpError {
        if let (Some(wal), OsdpError::BudgetExhausted { .. }) = (&self.wal, &err) {
            let _ = wal.log_refusal(mechanism, requested);
        }
        err
    }

    /// Total ε spent so far.
    pub fn total_spent(&self) -> f64 {
        self.accountant.total_spent()
    }

    /// Remaining budget, or `None` for an uncapped session.
    pub fn remaining_budget(&self) -> Option<f64> {
        self.accountant.remaining()
    }

    /// The composed guarantee of everything released so far (Theorem 3.3):
    /// total ε and the labels of the policies whose minimum relaxation the
    /// guarantee refers to.
    pub fn composed_guarantee(&self) -> (f64, Vec<String>) {
        self.accountant.composed_guarantee()
    }

    /// The minimum relaxation of every policy used by record-level releases
    /// in this session (Definition 3.6) — the policy the composed guarantee
    /// of Theorem 3.3 refers to. Empty (all-sensitive) for histogram-backed
    /// sessions, whose policies exist only as sampled sub-histograms.
    pub fn composed_policy(&self) -> MinimumRelaxation<R> {
        MinimumRelaxation::new(self.policies.read().iter().map(|(_, p)| Arc::clone(p)).collect())
    }

    /// A snapshot of the audit log. O(n) — merged from the log's shard
    /// buffers into release order; use [`OsdpSession::audit_len`] /
    /// [`OsdpSession::audit_total_epsilon`] for hot-path probes.
    pub fn audit_records(&self) -> Vec<AuditRecord> {
        self.audit.records()
    }

    /// Number of audited releases — one atomic load, never contends with
    /// concurrent appenders.
    pub fn audit_len(&self) -> usize {
        self.audit.len()
    }

    /// Total ε across every audited release — one atomic load (the
    /// iteration-free ledger total, see [`AuditLog::total_epsilon`]).
    /// Accumulated in the accountant's fixed-point units, so for any session
    /// it equals [`OsdpSession::total_spent`] **bit for bit** — every grant
    /// is audited and both sides convert the same f64 ε with the same
    /// ceiling rounding.
    pub fn audit_total_epsilon(&self) -> f64 {
        self.audit.total_epsilon()
    }

    /// The audit ε total in raw fixed-point units, comparable integer-for-
    /// integer with `self.accountant().total_spent_units()`.
    pub fn audit_total_epsilon_units(&self) -> u64 {
        self.audit.total_epsilon_units()
    }

    /// The audit log's ledger view, consumable by
    /// `osdp_attack::verify_ledger`.
    pub fn audit_ledger(&self) -> Vec<osdp_core::budget::LedgerEntry> {
        self.audit.ledger()
    }

    /// The audit log as JSON.
    pub fn audit_json(&self) -> String {
        self.audit.to_json()
    }

    /// Drops every cached derived task. The cache assumes the data behind
    /// the backend is immutable; a source that *does* change (the streaming
    /// plane swaps the current window behind its backend) must invalidate
    /// at the mutation point, or a reused query value could be served a
    /// task derived from the previous data.
    pub(crate) fn invalidate_task_cache(&self) {
        self.tasks.clear();
    }

    /// Derives the [`HistogramTask`] for `query` under the bound policy: the
    /// full histogram and the sub-histogram of records the policy classifies
    /// as non-sensitive, computed by the bound [`Backend`]. This is the
    /// **only** place outside mechanism tests where tasks are constructed,
    /// which is what keeps `x_ns` consistent with `P` across the workspace.
    ///
    /// Served through the session's task cache: repeated derivations of the
    /// same query under the bound policy run **one** backend scan.
    pub fn derive_task(&self, query: &SessionQuery<R>) -> Result<HistogramTask> {
        Ok((*self.cached_task(query)?).clone())
    }

    /// The epoch currently in force for a record-backed session — one
    /// atomic load, no lock. `None` for histogram-backed sessions (fixed
    /// sampled policy, no lifecycle).
    fn current_epoch(&self) -> Option<&EpochState<R>> {
        match &self.source {
            Source::Records { epoch, .. } => Some(epoch.current()),
            Source::Bound { .. } => None,
        }
    }

    /// The cache-aware task derivation behind every release path. Keyed by
    /// the identities that determine the scan result (query closure, policy,
    /// backend) **plus the policy epoch version**, so a transition can never
    /// serve a pre-transition task to a post-transition release; mismatched
    /// source/query combinations fall through to the scan path, which
    /// reports the precise error.
    fn cached_task(&self, query: &SessionQuery<R>) -> Result<Arc<HistogramTask>> {
        match &self.source {
            Source::Bound { task } => match query {
                SessionQuery::Bound => Ok(Arc::clone(task)),
                SessionQuery::CountBy { .. } => Err(OsdpError::InvalidInput(
                    "histogram-backed sessions only answer SessionQuery::Bound".into(),
                )),
            },
            Source::Records { epoch, .. } => {
                let e = epoch.current();
                self.cached_task_under(query, &e.policy, &e.label, e.version)
            }
        }
    }

    /// [`cached_task`](Self::cached_task) pinned to an **explicit** epoch
    /// `(policy, label, version)`. The release path captures the epoch once
    /// and derives under the capture, so a transition racing the release
    /// can never tear the (policy, version) pair.
    fn cached_task_under(
        &self,
        query: &SessionQuery<R>,
        policy: &Arc<dyn Policy<R>>,
        policy_label: &Arc<str>,
        policy_version: u64,
    ) -> Result<Arc<HistogramTask>> {
        match (&self.source, query) {
            (Source::Records { backend, .. }, SessionQuery::CountBy { bins, bin_of, spec, .. }) => {
                self.tasks.get_or_derive(
                    *bins,
                    bin_of,
                    spec.as_ref(),
                    policy,
                    policy_version,
                    backend,
                    || {
                        self.scan_under(query, Some(policy), policy_label, policy_version)?
                            .into_task()
                    },
                )
            }
            _ => self
                .scan_under(query, Some(policy), policy_label, policy_version)?
                .into_task()
                .map(Arc::new),
        }
    }

    /// Runs the backend scan for `query` under the current-epoch policy,
    /// returning the raw [`HistogramPair`] — including the weight of records
    /// the query dropped, which [`OsdpSession::derive_task`] discards.
    pub fn scan(&self, query: &SessionQuery<R>) -> Result<HistogramPair> {
        match self.current_epoch() {
            Some(e) => self.scan_under(query, Some(&e.policy), &e.label, e.version),
            None => self.scan_under(query, None, &self.policy_label, 0),
        }
    }

    fn derive_task_under(
        &self,
        query: &SessionQuery<R>,
        policy_override: Option<&Arc<dyn Policy<R>>>,
        policy_label: &str,
    ) -> Result<HistogramTask> {
        match (&self.source, query) {
            (Source::Bound { task }, SessionQuery::Bound) => Ok((**task).clone()),
            _ => self
                .scan_under(query, policy_override, policy_label, self.audit.current_version())?
                .into_task(),
        }
    }

    fn scan_under(
        &self,
        query: &SessionQuery<R>,
        policy_override: Option<&Arc<dyn Policy<R>>>,
        policy_label: &str,
        policy_version: u64,
    ) -> Result<HistogramPair> {
        match (&self.source, query) {
            (Source::Bound { task }, SessionQuery::Bound) => Ok(HistogramPair {
                full: task.full().clone(),
                non_sensitive: task.non_sensitive().clone(),
                dropped: 0.0,
            }),
            (Source::Bound { .. }, SessionQuery::CountBy { .. }) => Err(OsdpError::InvalidInput(
                "histogram-backed sessions only answer SessionQuery::Bound".into(),
            )),
            (Source::Records { .. }, SessionQuery::Bound) => Err(OsdpError::InvalidInput(
                "record-backed sessions need a SessionQuery::CountBy query".into(),
            )),
            (
                Source::Records { backend, epoch },
                SessionQuery::CountBy { label, bins, bin_of, spec },
            ) => {
                let policy = match policy_override {
                    Some(policy) => policy,
                    None => &epoch.current().policy,
                };
                let plan = QueryPlan {
                    label: label.clone(),
                    bins: *bins,
                    bin_of: Arc::clone(bin_of),
                    bin_spec: spec.clone(),
                    policy: Arc::clone(policy),
                    policy_label: policy_label.to_string(),
                    policy_version,
                };
                backend.scan(&plan)
            }
        }
    }

    /// Releases one noisy histogram through `mechanism`.
    ///
    /// The accountant is debited **before** sampling; on
    /// [`OsdpError::BudgetExhausted`] nothing is sampled, nothing is logged,
    /// and nothing may be published.
    pub fn release(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
    ) -> Result<Release> {
        self.release_inner(query, mechanism, None, Arc::clone(&self.policy_label))
    }

    /// Releases under a *different* policy than the one bound at
    /// construction. The session tracks the minimum relaxation of every
    /// policy used (Theorem 3.3); see [`OsdpSession::composed_policy`].
    /// Record-backed sessions only.
    pub fn release_with_policy(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        policy: Arc<dyn Policy<R>>,
        label: impl Into<String>,
    ) -> Result<Release> {
        if matches!(self.source, Source::Bound { .. }) {
            return Err(OsdpError::InvalidInput(
                "histogram-backed sessions have a fixed sampled policy".into(),
            ));
        }
        let label = self.labels.get(&label.into());
        self.release_inner(query, mechanism, Some(policy), label)
    }

    fn release_inner(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        policy_override: Option<Arc<dyn Policy<R>>>,
        policy_label: Arc<str>,
    ) -> Result<Release> {
        // Capture the epoch once (one atomic load — the grant path stays
        // lock-free) and derive under the capture. Policy overrides bypass
        // both the task cache and the epoch protocol: their records stamp
        // whatever version is in force, but never relabel or re-derive.
        let (task, policy_label, captured_version, requery) = match &policy_override {
            None => match &self.source {
                Source::Records { epoch, .. } => {
                    let e = epoch.current();
                    (
                        self.cached_task_under(query, &e.policy, &e.label, e.version)?,
                        Arc::clone(&e.label),
                        e.version,
                        Some(query),
                    )
                }
                Source::Bound { .. } => (self.cached_task(query)?, policy_label, 0, None),
            },
            Some(_) => (
                Arc::new(self.derive_task_under(query, policy_override.as_ref(), &policy_label)?),
                policy_label,
                self.audit.current_version(),
                None,
            ),
        };
        let query_label = self.labels.get(query.label());
        // Debit before sampling: a refused spend must not leak a sample. The
        // grant is one CAS on the accountant's atomic spend counter — no
        // lock — and the audit append allocates its index from the log's own
        // atomic sequence, so concurrent releases never serialize here.
        let guarantee = mechanism.guarantee();
        self.accountant
            .spend(mechanism.name(), &*policy_label, guarantee.epsilon(), guarantee.kind())
            .map_err(|e| self.wal_refused(mechanism.name(), guarantee.epsilon(), e))?;
        if let Some(policy) = policy_override {
            self.remember_policy(&policy_label, policy);
        }
        self.sample_granted_release(
            &task,
            mechanism,
            guarantee,
            policy_label,
            query_label,
            captured_version,
            requery,
        )
    }

    /// Allocates the next audit index through the packed counter and appends
    /// the audit record — the single stamping point of every release path.
    ///
    /// The counter hands out `(index, version)` in **one** atomic add, so
    /// the stamped version is exactly the one in force at this release's
    /// sequence number. When a transition raced in after the caller captured
    /// its epoch (`version != captured_version` with `rederive` set), the
    /// stamped epoch's state is resolved from the pinned history — it is
    /// guaranteed installed, because transitions swap the epoch pointer
    /// *before* bumping the counter — and the record is relabelled to it.
    /// Returns `(index, version, effective label, stamped state if the
    /// caller must re-derive)`.
    #[allow(clippy::too_many_arguments)]
    fn stamp_release(
        &self,
        captured_version: u64,
        rederive: bool,
        policy_label: Arc<str>,
        mechanism_label: Arc<str>,
        query_label: &Arc<str>,
        bins: usize,
        trials: usize,
        guarantee: Guarantee,
    ) -> (u64, u64, Arc<str>, Option<Arc<EpochState<R>>>) {
        let mut label = policy_label;
        let mut stamped = None;
        let (index, version) = self.audit.append_versioned(|index, version| {
            if rederive && version != captured_version {
                if let Source::Records { epoch, .. } = &self.source {
                    if let Some(state) = epoch.state(version) {
                        label = Arc::clone(&state.label);
                        stamped = Some(state);
                    }
                }
            }
            AuditRecord {
                index,
                mechanism: mechanism_label,
                policy: Arc::clone(&label),
                query: Arc::clone(query_label),
                bins,
                trials,
                guarantee,
                policy_version: version,
            }
        });
        (index, version, label, stamped)
    }

    /// The shared post-grant tail of every single release — one-shot
    /// ([`OsdpSession::release`]) and task-level
    /// ([`OsdpSession::release_task`]) alike: append the audit record
    /// (allocating the release index and version stamp), derive the `(seed,
    /// "release/<mechanism>", index)` RNG stream, and sample. Keeping both
    /// paths on this one function is what keeps the stream plane's
    /// bitwise-parity contract with the one-shot oracle honest: any change
    /// to the audit/stream/index sequence lands on both at once.
    ///
    /// `requery` is the epoch re-derivation hook: when set and a transition
    /// landed between the caller's epoch capture (`captured_version`) and
    /// index allocation, the task is re-derived under the **stamped** epoch
    /// through the version-keyed cache, so no release is ever served a task
    /// from a stale epoch. Static-policy sessions never hit this branch.
    #[allow(clippy::too_many_arguments)]
    fn sample_granted_release(
        &self,
        task: &HistogramTask,
        mechanism: &dyn HistogramMechanism,
        guarantee: Guarantee,
        policy_label: Arc<str>,
        query_label: Arc<str>,
        captured_version: u64,
        requery: Option<&SessionQuery<R>>,
    ) -> Result<Release> {
        let mechanism_label = self.labels.get(mechanism.name());
        let (index, version, policy_label, stamped) = self.stamp_release(
            captured_version,
            requery.is_some(),
            policy_label,
            mechanism_label,
            &query_label,
            task.bins(),
            1,
            guarantee,
        );
        // Rare slow path: a transition raced in — serve under the stamped
        // epoch. Racing releases share the re-derivation through the cache.
        let rederived = match (&stamped, requery) {
            (Some(state), Some(query)) => {
                Some(self.cached_task_under(query, &state.policy, &state.label, state.version)?)
            }
            _ => None,
        };
        let task = rederived.as_deref().unwrap_or(task);
        // Durable hook: the grant reaches the WAL before any noise exists.
        self.wal_grant(GrantEvent {
            index,
            mechanism: mechanism.name(),
            policy: &policy_label,
            query: &query_label,
            bins: task.bins(),
            trials: 1,
            guarantee,
            policy_version: version,
        })?;
        // Interned stream label: same content as the historical
        // `format!("release/{name}")`, built once per mechanism name.
        let stream =
            self.stream_labels.get_with(mechanism.name(), |name| format!("release/{name}"));
        let mut rng = self.seeds.rng_for(&stream, index);
        let mut estimate = Histogram::zeros(0);
        mechanism.release_into(task, &mut rng, &mut estimate);
        Ok(Release {
            estimate,
            mechanism: mechanism.name().to_string(),
            policy: policy_label.to_string(),
            guarantee,
            index,
        })
    }

    /// Releases an **externally derived** task through the session's full
    /// accounting machinery: the accountant is debited before sampling
    /// (refusals sample nothing and log nothing), the release is appended to
    /// the audit log under `label`, and the noise stream is the same
    /// `(seed, "release/<mechanism>", release index)` stream
    /// [`OsdpSession::release`] uses — so a task equal to what a backend
    /// scan would have derived produces a bitwise-identical estimate.
    ///
    /// This is the continual-observation extension point: the streaming
    /// plane ([`crate::stream::StreamSession`]) aggregates policy-derived
    /// per-window tasks into binary-tree nodes and releases them here.
    /// **The caller owns the task's provenance** — it must have been derived
    /// under this session's policy regime (summing per-window `(x, x_ns)`
    /// pairs preserves the domination invariant, which
    /// [`HistogramTask::new`] re-validates on construction).
    pub fn release_task(
        &self,
        label: &str,
        task: &HistogramTask,
        mechanism: &dyn HistogramMechanism,
    ) -> Result<Release> {
        let query_label = self.labels.get(label);
        // The task is externally derived, so an epoch race cannot re-derive
        // it — the record is stamped with the version in force at its index
        // under the current epoch's label, and the caller's provenance
        // obligation extends to transitions (the streaming plane meets it by
        // invalidating window tasks at the transition point).
        let policy_label = match self.current_epoch() {
            Some(e) => Arc::clone(&e.label),
            None => Arc::clone(&self.policy_label),
        };
        let guarantee = mechanism.guarantee();
        self.accountant
            .spend(mechanism.name(), &*policy_label, guarantee.epsilon(), guarantee.kind())
            .map_err(|e| self.wal_refused(mechanism.name(), guarantee.epsilon(), e))?;
        self.sample_granted_release(task, mechanism, guarantee, policy_label, query_label, 0, None)
    }

    /// Releases `trials` independent estimates of the same query, one trial
    /// per core (rayon). The batch costs `trials × ε` under sequential
    /// composition (Theorem 3.3) and is debited **up front**: either the
    /// whole batch is granted or none of it is.
    ///
    /// Per-trial RNG streams are derived from `(session seed, release index,
    /// trial index)`, so the output is identical to
    /// [`OsdpSession::release_trials_serial`] regardless of thread schedule.
    pub fn release_trials(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        trials: usize,
    ) -> Result<Vec<Histogram>> {
        let (task, index) = self.begin_trials(query, mechanism, trials)?;
        // One stream-label format per batch (not per trial); the label
        // content is unchanged, so streams are stable across versions.
        let stream = format!("trials/{index}/{}", mechanism.name());
        // Preallocated output arena: every estimate's buffer exists before
        // the first worker runs, and each worker fills its slot through the
        // buffer-reuse path (per-thread mechanism scratch included).
        let mut arena: Vec<Histogram> = vec![Histogram::zeros(task.bins()); trials];
        let slots: Vec<(u64, &mut Histogram)> =
            arena.iter_mut().enumerate().map(|(trial, slot)| (trial as u64, slot)).collect();
        let seeds = &self.seeds;
        let task = &*task;
        slots.into_par_iter().for_each(|(trial, slot)| {
            let mut rng = seeds.rng_for(&stream, trial);
            mechanism.release_into(task, &mut rng, slot);
        });
        Ok(arena)
    }

    /// The sequential reference path for [`OsdpSession::release_trials`]:
    /// identical accounting, audit record and output, one trial at a time
    /// through the scalar [`HistogramMechanism::release`] oracle. Kept for
    /// benchmarking and as the bitwise-parity baseline of the buffer-reuse
    /// batch path.
    pub fn release_trials_serial(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        trials: usize,
    ) -> Result<Vec<Histogram>> {
        let (task, index) = self.begin_trials(query, mechanism, trials)?;
        let stream = format!("trials/{index}/{}", mechanism.name());
        Ok((0..trials as u64)
            .map(|trial| {
                let mut rng = self.seeds.rng_for(&stream, trial);
                mechanism.release(&task, &mut rng)
            })
            .collect())
    }

    /// Releases `trials` estimates of the same query through **every**
    /// mechanism of a pool, amortizing the per-mechanism fixed costs across
    /// the whole pool:
    ///
    /// * **one backend scan** — the task is derived once (served by the task
    ///   cache) and shared by all `pool.len() × trials` releases;
    /// * **one atomic grant** — a single CAS on the accountant debits every
    ///   mechanism, all-or-nothing: if the remaining budget cannot cover the
    ///   entire pool batch, nothing is spent, logged or sampled;
    /// * one rayon fan-out over all `(mechanism, trial)` pairs, writing into
    ///   a preallocated arena.
    ///
    /// Accounting, audit records and estimates are identical (bitwise, for
    /// the estimates) to calling [`OsdpSession::release_trials`] once per
    /// mechanism in pool order — this is the batch form pool experiments
    /// (Section 6.3.3.2's regret analysis) should use.
    pub fn release_pool(
        &self,
        query: &SessionQuery<R>,
        pool: &[&dyn HistogramMechanism],
        trials: usize,
    ) -> Result<Vec<PoolRelease>> {
        if trials == 0 {
            return Err(OsdpError::InvalidInput("release_pool needs trials >= 1".into()));
        }
        if pool.is_empty() {
            return Err(OsdpError::InvalidInput("release_pool needs a non-empty pool".into()));
        }
        // One epoch capture and one scan for the whole pool.
        let (task, policy_label, captured_version, rederive) = match &self.source {
            Source::Records { epoch, .. } => {
                let e = epoch.current();
                (
                    self.cached_task_under(query, &e.policy, &e.label, e.version)?,
                    Arc::clone(&e.label),
                    e.version,
                    true,
                )
            }
            Source::Bound { .. } => {
                (self.cached_task(query)?, Arc::clone(&self.policy_label), 0, false)
            }
        };
        let query_label = self.labels.get(query.label());
        let guarantees: Vec<Guarantee> = pool.iter().map(|m| m.guarantee()).collect();

        // One atomic grant for the whole batch: the accountant's batch spend
        // admits or refuses the pool at a single CAS (all-or-nothing), then
        // the audit records are appended in pool order. The debit entries
        // are identical to what a sequential per-mechanism release_trials
        // loop would record.
        let debits: Vec<_> = pool
            .iter()
            .zip(&guarantees)
            .map(|(mechanism, guarantee)| {
                (
                    format!("{} x{}", mechanism.name(), trials),
                    policy_label.to_string(),
                    guarantee.epsilon() * trials as f64,
                    guarantee.kind(),
                )
            })
            .collect();
        let batch_epsilon: f64 = debits.iter().map(|d| d.2).sum();
        self.accountant
            .spend_batch(&debits)
            .map_err(|e| self.wal_refused(&format!("pool[{}]", pool.len()), batch_epsilon, e))?;
        let mut indices = Vec::with_capacity(pool.len());
        // Per-mechanism tasks: identical Arcs in the steady state; a
        // transition racing the batch re-derives the affected suffix of the
        // pool under its stamped epoch (shared through the cache).
        let mut tasks: Vec<Arc<HistogramTask>> = Vec::with_capacity(pool.len());
        for (mechanism, guarantee) in pool.iter().zip(&guarantees) {
            let mechanism_label = self.labels.get(mechanism.name());
            let (index, version, label, stamped) = self.stamp_release(
                captured_version,
                rederive,
                Arc::clone(&policy_label),
                mechanism_label,
                &query_label,
                task.bins(),
                trials,
                *guarantee,
            );
            let mech_task = match &stamped {
                Some(state) => {
                    self.cached_task_under(query, &state.policy, &state.label, state.version)?
                }
                None => Arc::clone(&task),
            };
            self.wal_grant(GrantEvent {
                index,
                mechanism: mechanism.name(),
                policy: &label,
                query: &query_label,
                bins: mech_task.bins(),
                trials,
                guarantee: *guarantee,
                policy_version: version,
            })?;
            indices.push(index);
            tasks.push(mech_task);
        }

        // Streams are keyed exactly as release_trials keys them, so the pool
        // batch reproduces the sequential per-mechanism loop bitwise.
        let streams: Vec<String> = pool
            .iter()
            .zip(&indices)
            .map(|(mechanism, index)| format!("trials/{index}/{}", mechanism.name()))
            .collect();
        let mut arenas: Vec<Vec<Histogram>> =
            (0..pool.len()).map(|_| vec![Histogram::zeros(task.bins()); trials]).collect();
        let slots: Vec<(usize, u64, &mut Histogram)> = arenas
            .iter_mut()
            .enumerate()
            .flat_map(|(mech, arena)| {
                arena.iter_mut().enumerate().map(move |(trial, slot)| (mech, trial as u64, slot))
            })
            .collect();
        let seeds = &self.seeds;
        let tasks_ref = &tasks;
        slots.into_par_iter().for_each(|(mech, trial, slot)| {
            let mut rng = seeds.rng_for(&streams[mech], trial);
            pool[mech].release_into(&tasks_ref[mech], &mut rng, slot);
        });

        Ok(pool
            .iter()
            .zip(indices)
            .zip(guarantees)
            .zip(arenas)
            .map(|(((mechanism, index), guarantee), estimates)| PoolRelease {
                mechanism: mechanism.name().to_string(),
                index,
                guarantee,
                estimates,
            })
            .collect())
    }

    /// Shared preamble of the batch paths: capture the epoch, derive the
    /// task (cached), debit the whole batch, append the audit record,
    /// allocate the release index — re-deriving under the stamped epoch if a
    /// transition raced the batch.
    fn begin_trials(
        &self,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        trials: usize,
    ) -> Result<(Arc<HistogramTask>, u64)> {
        if trials == 0 {
            return Err(OsdpError::InvalidInput("release_trials needs trials >= 1".into()));
        }
        let (task, policy_label, captured_version, rederive) = match &self.source {
            Source::Records { epoch, .. } => {
                let e = epoch.current();
                (
                    self.cached_task_under(query, &e.policy, &e.label, e.version)?,
                    Arc::clone(&e.label),
                    e.version,
                    true,
                )
            }
            Source::Bound { .. } => {
                (self.cached_task(query)?, Arc::clone(&self.policy_label), 0, false)
            }
        };
        let guarantee = mechanism.guarantee();
        let mechanism_label = self.labels.get(mechanism.name());
        let query_label = self.labels.get(query.label());
        self.accountant
            .spend(
                format!("{} x{}", mechanism.name(), trials),
                &*policy_label,
                guarantee.epsilon() * trials as f64,
                guarantee.kind(),
            )
            .map_err(|e| {
                self.wal_refused(mechanism.name(), guarantee.epsilon() * trials as f64, e)
            })?;
        let (index, version, label, stamped) = self.stamp_release(
            captured_version,
            rederive,
            policy_label,
            mechanism_label,
            &query_label,
            task.bins(),
            trials,
            guarantee,
        );
        let task = match &stamped {
            Some(state) => {
                self.cached_task_under(query, &state.policy, &state.label, state.version)?
            }
            None => task,
        };
        self.wal_grant(GrantEvent {
            index,
            mechanism: mechanism.name(),
            policy: &label,
            query: &query_label,
            bins: task.bins(),
            trials,
            guarantee,
            policy_version: version,
        })?;
        Ok((task, index))
    }

    /// Transitions the session to a new policy epoch — the **slow path** of
    /// the policy lifecycle (releases never take it).
    ///
    /// The transition is registered in the core lifecycle registry
    /// ([`VersionedPolicy`]) with its declared [`EpochDirection`] (opt-out
    /// and decay **tighten**; consent **relaxes**), the new epoch is
    /// installed and the packed audit counter bumped — in that order, so the
    /// epoch for any version a release ever observes is already resolvable —
    /// then the derived-task and backend partition caches are atomically
    /// invalidated and the transition is logged to the WAL (when durable) as
    /// an epoch record. Returns the transition's audit metadata: its version
    /// and its **boundary sequence number** (releases with index ≥ boundary
    /// are stamped with the new version; earlier ones are not).
    ///
    /// Record-backed sessions only: histogram-backed sessions carry their
    /// policy as the sampled `x_ns`, which has no lifecycle.
    ///
    /// # Errors
    ///
    /// Fails without side effects when the session is histogram-backed or
    /// the 16-bit version space (65 535 transitions) is exhausted. A WAL
    /// write failure is reported **after** the in-memory transition is live:
    /// the new epoch is in force but not yet durable — harmless for
    /// tightenings (recovery under-claims), surfaced so callers of a
    /// relaxation can refuse to serve until the log heals.
    pub fn set_policy_epoch(
        &self,
        policy: Arc<dyn Policy<R>>,
        label: impl Into<String>,
        direction: EpochDirection,
    ) -> Result<EpochTransition> {
        let Source::Records { backend, epoch } = &self.source else {
            return Err(OsdpError::InvalidInput(
                "histogram-backed sessions have a fixed sampled policy; epoch \
                 transitions need a record-backed session"
                    .into(),
            ));
        };
        let label = self.labels.get(&label.into());
        // Transitions serialize on the history lock, so the capacity check
        // cannot race another bump.
        let mut history = epoch.history.lock();
        if self.audit.current_version() >= AuditLog::MAX_VERSION {
            return Err(OsdpError::InvalidInput(
                "policy epoch version space exhausted (65535 transitions)".into(),
            ));
        }
        // 1. Register in the core lifecycle: tighten/relax ordering and the
        //    cross-version minimum relaxation.
        let registry_index =
            history.registry.transition(Arc::clone(&policy), Arc::clone(&label), direction);
        let version = history.base_version + registry_index;
        // 2. Install the new state and swap the pointer BEFORE bumping the
        //    counter: any (index, version) the counter hands out afterwards
        //    can already resolve its epoch.
        let state = Arc::new(EpochState {
            policy: Arc::clone(&policy),
            label: Arc::clone(&label),
            version,
        });
        let ptr = Arc::as_ptr(&state) as *mut EpochState<R>;
        history.states.push(state);
        epoch.current.store(ptr, Ordering::Release);
        // 3. Bump the packed counter: the boundary index is exact — stamps
        //    split at it with no torn window.
        let (bumped, boundary_seq) = self.audit.bump_version()?;
        debug_assert_eq!(bumped, version, "registry and audit version numbering agree");
        // 4. Atomically invalidate everything derived under earlier epochs:
        //    the version-keyed task cache and the backend's policy-partition
        //    cache. In-flight scans finish with the Arcs they hold (pure
        //    caches — entries are recomputed, never wrong).
        self.tasks.clear();
        backend.invalidate_partitions();
        // 5. The new policy joins the composed minimum relaxation
        //    (Theorem 3.3 spans every policy the session released under).
        self.remember_policy(&label, policy);
        let transition = EpochTransition {
            version,
            boundary_seq,
            relaxes: matches!(direction, EpochDirection::Relax),
            label: label.to_string(),
        };
        history.transitions.push(transition.clone());
        drop(history);
        // 6. Durable hook: recovery replays epoch records into the exact
        //    version history (bit-for-bit, including boundaries).
        if let Some(wal) = &self.wal {
            wal.log_epoch_transition(&EpochRecord {
                version,
                boundary_seq,
                relaxes: transition.relaxes,
                label: transition.label.clone(),
            })?;
        }
        Ok(transition)
    }

    /// The policy version currently in force — the high bits of the packed
    /// audit counter. `0` for sessions that never transitioned.
    pub fn policy_version(&self) -> u64 {
        self.audit.current_version()
    }

    /// The label of the policy epoch currently in force (the bound label
    /// until the first [`OsdpSession::set_policy_epoch`]).
    pub fn current_policy_label(&self) -> Arc<str> {
        match self.current_epoch() {
            Some(e) => Arc::clone(&e.label),
            None => Arc::clone(&self.policy_label),
        }
    }

    /// Every epoch transition this session has performed **or recovered**,
    /// in version order — the history half of the stale-policy audit
    /// ([`osdp_attack::verify_epoch_stamps`]). Empty for histogram-backed
    /// and never-transitioned sessions.
    pub fn epoch_transitions(&self) -> Vec<EpochTransition> {
        match &self.source {
            Source::Records { epoch, .. } => epoch.history.lock().transitions.clone(),
            Source::Bound { .. } => Vec::new(),
        }
    }

    /// The `(sequence number, stamped policy version)` pair of every audited
    /// release — the stamp half of the stale-policy audit.
    pub fn release_stamps(&self) -> Vec<ReleaseStamp> {
        self.audit
            .records()
            .iter()
            .map(|r| ReleaseStamp { seq: r.index, version: r.policy_version })
            .collect()
    }

    /// Runs the full versioned ledger audit over this session's own records:
    /// budget conservation ([`osdp_attack::verify_ledger`]) plus the
    /// stale-policy and stamp-monotonicity checks. A session whose verdict
    /// fails [`osdp_attack::LedgerVerdict::upholds_osdp`] served a release
    /// it should not have.
    pub fn verify_policy_lifecycle(&self, limit: Option<f64>) -> osdp_attack::LedgerVerdict {
        osdp_attack::verify_ledger_versioned(
            &self.audit_ledger(),
            limit,
            &self.release_stamps(),
            &self.epoch_transitions(),
        )
    }

    /// The minimum relaxation across the session's **epoch history**
    /// (Definition 3.6 applied over time): the policy a guarantee composed
    /// across transitions refers to. All-sensitive (empty) for
    /// histogram-backed sessions.
    pub fn lifecycle_minimum_relaxation(&self) -> MinimumRelaxation<R> {
        match &self.source {
            Source::Records { epoch, .. } => epoch.history.lock().registry.minimum_relaxation(),
            Source::Bound { .. } => MinimumRelaxation::new(Vec::new()),
        }
    }

    fn remember_policy(&self, label: &str, policy: Arc<dyn Policy<R>>) {
        let mut policies = self.policies.write();
        // Dedup by policy *identity*: two distinct policies registered under
        // one label must both enter the composed minimum relaxation
        // (dropping either would over-claim protection).
        if !policies.iter().any(|(_, p)| Arc::ptr_eq(p, &policy)) {
            policies.push((label.to_string(), policy));
        }
    }
}

impl<R: Clone> OsdpSession<R> {
    /// Releases a **true sample** of the non-sensitive records through
    /// `OsdpRR` (Algorithm 1) — the record-level front door. Debits ε and
    /// audits like every other release. Record-backed sessions only.
    pub fn release_records(&self, mechanism: &OsdpRr) -> Result<Database<R>> {
        let Source::Records { backend, epoch } = &self.source else {
            return Err(OsdpError::InvalidInput(
                "release_records needs a record-backed session".into(),
            ));
        };
        let Some(db) = backend.database() else {
            return Err(OsdpError::InvalidInput(
                "this backend retains no records (frame-backed sessions answer \
                 histogram queries only)"
                    .into(),
            ));
        };
        let e = epoch.current();
        let (mut policy, policy_label, captured_version) =
            (Arc::clone(&e.policy), Arc::clone(&e.label), e.version);
        let guarantee = Guarantee::Osdp { eps: mechanism.epsilon() };
        let mechanism_label = self.labels.get("OsdpRR (records)");
        let query_label = self.labels.get("record-sample");
        self.accountant
            .spend("OsdpRR (records)", &*policy_label, guarantee.epsilon(), guarantee.kind())
            .map_err(|e| self.wal_refused("OsdpRR (records)", guarantee.epsilon(), e))?;
        let (index, version, label, stamped) = self.stamp_release(
            captured_version,
            true,
            policy_label,
            mechanism_label,
            &query_label,
            0,
            1,
            guarantee,
        );
        if let Some(state) = stamped {
            // A transition raced in: the sample must be drawn under the
            // stamped epoch's policy, matching the record's stamp.
            policy = Arc::clone(&state.policy);
        }
        self.wal_grant(GrantEvent {
            index,
            mechanism: "OsdpRR (records)",
            policy: &label,
            query: "record-sample",
            bins: 0,
            trials: 1,
            guarantee,
            policy_version: version,
        })?;
        let mut rng = self.seeds.rng_for("release-records/OsdpRR", index);
        let sample = mechanism.release(db, policy.as_ref(), &mut rng);
        Ok(sample)
    }

    /// Number of records in a record-backed session's backend.
    pub fn database_len(&self) -> Option<usize> {
        match &self.source {
            Source::Records { backend, .. } => Some(backend.len()),
            Source::Bound { .. } => None,
        }
    }

    /// The name of the bound scan backend (`"row"`, `"columnar"`, …), or
    /// `None` for histogram-backed sessions.
    pub fn backend_name(&self) -> Option<&'static str> {
        match &self.source {
            Source::Records { backend, .. } => Some(backend.name()),
            Source::Bound { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdp_core::policy::ClosurePolicy;
    use osdp_core::OsdpError;
    use osdp_mechanisms::{DpLaplaceHistogram, OsdpLaplace, OsdpLaplaceL1, Suppress};

    fn codes_db(n: u32) -> Database<u32> {
        (0..n).collect()
    }

    /// Values >= 50 are sensitive.
    fn upper_half() -> ClosurePolicy<u32> {
        ClosurePolicy::new("upper-half", |&v: &u32| v >= 50)
    }

    fn mod8_query() -> SessionQuery<u32> {
        SessionQuery::count_by("mod8", 8, |&v: &u32| Some((v % 8) as usize))
    }

    fn records_session(budget: Option<f64>) -> OsdpSession<u32> {
        let mut b = SessionBuilder::new(codes_db(100)).policy(upper_half(), "P50").seed(7);
        if let Some(eps) = budget {
            b = b.budget(eps);
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_requires_a_policy_for_record_sessions() {
        let err = SessionBuilder::new(codes_db(10)).build().unwrap_err();
        assert!(matches!(err, OsdpError::InvalidInput(_)));
    }

    #[test]
    fn builder_validates_bound_histograms() {
        let full = Histogram::from_counts(vec![1.0, 2.0]);
        let bad_ns = Histogram::from_counts(vec![5.0, 0.0]);
        assert!(SessionBuilder::<Record>::from_histograms(full.clone(), bad_ns).build().is_err());
        let short = Histogram::zeros(1);
        assert!(SessionBuilder::<Record>::from_histograms(full, short).build().is_err());
    }

    #[test]
    fn task_derivation_matches_the_bound_policy() {
        let session = records_session(None);
        let task = session.derive_task(&mod8_query()).unwrap();
        // 100 codes over 8 bins; values < 50 are non-sensitive.
        assert_eq!(task.full().total(), 100.0);
        assert_eq!(task.non_sensitive().total(), 50.0);
        assert!(task.non_sensitive().dominated_by(task.full()).unwrap());
    }

    #[test]
    fn release_debits_before_sampling_and_audits() {
        let session = records_session(Some(1.0));
        let mechanism = OsdpLaplaceL1::new(0.75).unwrap();
        let release = session.release(&mod8_query(), &mechanism).unwrap();
        assert_eq!(release.estimate.len(), 8);
        assert_eq!(release.policy, "P50");
        assert!((session.total_spent() - 0.75).abs() < 1e-12);
        assert_eq!(session.audit_records().len(), 1);
        assert_eq!(&*session.audit_records()[0].query, "mod8");

        // The second release would need 0.75 > 0.25 remaining: refused, not
        // sampled, not logged.
        let err = session.release(&mod8_query(), &mechanism).unwrap_err();
        assert!(matches!(err, OsdpError::BudgetExhausted { .. }));
        assert_eq!(session.audit_records().len(), 1);
        assert!((session.total_spent() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn trials_are_debited_up_front_and_deterministic_across_schedules() {
        let session = records_session(None);
        let mechanism = OsdpLaplace::new(0.5).unwrap();
        let par = session.release_trials(&mod8_query(), &mechanism, 8).unwrap();
        // A fresh session with the same seed: the serial path must reproduce
        // the parallel output exactly (streams keyed by trial index).
        let session2 = records_session(None);
        let serial = session2.release_trials_serial(&mod8_query(), &mechanism, 8).unwrap();
        assert_eq!(par, serial);
        assert!((session.total_spent() - 8.0 * 0.5).abs() < 1e-12);
        let audit = session.audit_records();
        assert_eq!(audit.len(), 1);
        assert_eq!(audit[0].trials, 8);
        assert!((audit[0].total_epsilon() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn release_pool_matches_the_sequential_trials_loop() {
        let pool_mechs: Vec<Box<dyn HistogramMechanism>> = vec![
            Box::new(OsdpLaplace::new(0.5).unwrap()),
            Box::new(OsdpLaplaceL1::new(1.0).unwrap()),
            Box::new(DpLaplaceHistogram::new(0.25).unwrap()),
        ];
        let pool: Vec<&dyn HistogramMechanism> = pool_mechs.iter().map(|b| b.as_ref()).collect();

        let batched = records_session(None);
        let releases = batched.release_pool(&mod8_query(), &pool, 4).unwrap();

        let sequential = records_session(None);
        for (mechanism, release) in pool.iter().zip(&releases) {
            let expected = sequential.release_trials(&mod8_query(), mechanism, 4).unwrap();
            assert_eq!(release.estimates, expected, "{}", release.mechanism);
            assert_eq!(release.mechanism, mechanism.name());
        }
        // Same accounting: identical spend, identical ledger and audit shape.
        assert_eq!(batched.total_spent(), sequential.total_spent());
        assert_eq!(batched.audit_ledger(), sequential.audit_ledger());
        assert_eq!(batched.audit_records(), sequential.audit_records());
        assert_eq!(releases[2].index, 2);
        assert_eq!(releases[1].guarantee.epsilon(), 1.0);
    }

    #[test]
    fn release_pool_is_all_or_nothing() {
        // Pool batch cost: (0.3 + 0.2) * 2 = 1.0 > 0.9 -> refused whole.
        let session = records_session(Some(0.9));
        let a = OsdpLaplace::new(0.3).unwrap();
        let b = OsdpLaplaceL1::new(0.2).unwrap();
        let pool: Vec<&dyn HistogramMechanism> = vec![&a, &b];
        let err = session.release_pool(&mod8_query(), &pool, 2).unwrap_err();
        assert!(matches!(err, OsdpError::BudgetExhausted { .. }));
        assert_eq!(session.total_spent(), 0.0, "nothing debited");
        assert!(session.audit_records().is_empty(), "nothing logged");
        // A fitting batch is granted in full. (0.2 quantizes one ceiling
        // unit above its decimal, so the debit may over-state the batch by
        // a unit or two — never under-state it.)
        assert!(session.release_pool(&mod8_query(), &pool, 1).is_ok());
        assert!(session.total_spent() >= 0.5);
        assert!(session.total_spent() < 0.5 + 1e-11);
        // Degenerate arguments are rejected.
        assert!(session.release_pool(&mod8_query(), &pool, 0).is_err());
        assert!(session.release_pool(&mod8_query(), &[], 1).is_err());
    }

    #[test]
    fn task_cache_derives_each_query_once() {
        let session = records_session(None);
        let query = mod8_query();
        let first = session.derive_task(&query).unwrap();
        assert_eq!(session.tasks.len(), 1);
        // Same query value (shared closure Arc): served from cache.
        assert_eq!(session.derive_task(&query.clone()).unwrap(), first);
        assert_eq!(session.tasks.len(), 1);
        // A release through the same query reuses the entry too.
        session.release(&query, &OsdpLaplaceL1::new(1.0).unwrap()).unwrap();
        assert_eq!(session.tasks.len(), 1);
        // A distinct closure allocation is a distinct identity.
        let other = mod8_query();
        assert_eq!(session.derive_task(&other).unwrap(), first);
        assert_eq!(session.tasks.len(), 2);
    }

    #[test]
    fn task_cache_distinguishes_spec_divergent_queries() {
        // A hand-built query can pair an existing bin closure Arc with a
        // *different* compiled spec; columnar backends scan through the spec,
        // so the cache must not serve one query the other's task.
        use osdp_core::frame::BinSpec;
        use osdp_core::policy::AttributePolicy;
        use osdp_core::Value;
        let db: Database<Record> =
            (0..100).map(|i| Record::builder().field("v", Value::Int(i)).build()).collect();
        let session = SessionBuilder::new(db)
            .columnar()
            .policy(AttributePolicy::int_at_most("v", 49), "lower")
            .seed(1)
            .build()
            .unwrap();
        let narrow = SessionQuery::count_by_int_linear("q", "v", 0, 50, 2);
        let SessionQuery::CountBy { label, bins, bin_of, .. } = narrow.clone() else {
            unreachable!()
        };
        // Same closure allocation, different spec: bins 0..99 all land in
        // bin 0 under width 100 instead of splitting 50/50.
        let divergent = SessionQuery::CountBy {
            label,
            bins,
            bin_of,
            spec: Some(BinSpec::IntLinear { field: "v".into(), origin: 0, width: 100 }),
        };
        let a = session.derive_task(&narrow).unwrap();
        let b = session.derive_task(&divergent).unwrap();
        assert_eq!(a.full().counts(), &[50.0, 50.0]);
        assert_eq!(b.full().counts(), &[100.0, 0.0]);
        assert_eq!(session.tasks.len(), 2, "one entry per spec identity");
    }

    #[test]
    fn exhausted_budget_refuses_the_whole_batch() {
        let session = records_session(Some(1.0));
        let mechanism = OsdpLaplace::new(0.3).unwrap();
        let err = session.release_trials(&mod8_query(), &mechanism, 4).unwrap_err();
        assert!(matches!(err, OsdpError::BudgetExhausted { .. }));
        assert_eq!(session.total_spent(), 0.0, "all-or-nothing batches");
        assert!(session.audit_records().is_empty());
        assert!(session.release_trials(&mod8_query(), &mechanism, 3).is_ok());
        assert!(session.release_trials(&mod8_query(), &mechanism, 0).is_err());
    }

    #[test]
    fn bound_sessions_answer_only_the_bound_query() {
        let full = Histogram::from_counts(vec![10.0, 20.0, 30.0]);
        let ns = Histogram::from_counts(vec![10.0, 10.0, 0.0]);
        let session = SessionBuilder::<u32>::from_histograms(full, ns)
            .policy_label("P-sampled")
            .seed(3)
            .build()
            .unwrap();
        let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
        let release = session.release(&SessionQuery::bound(), &mechanism).unwrap();
        assert_eq!(release.estimate.len(), 3);
        assert!(session.release(&mod8_query(), &mechanism).is_err());
        assert_eq!(&*session.audit_records()[0].policy, "P-sampled");
    }

    #[test]
    fn record_sessions_reject_the_bound_query() {
        let session = records_session(None);
        let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
        assert!(session.release(&SessionQuery::bound(), &mechanism).is_err());
    }

    #[test]
    fn composed_guarantee_tracks_policies_and_minimum_relaxation() {
        let session = records_session(None);
        let l1 = OsdpLaplaceL1::new(0.5).unwrap();
        let dp = DpLaplaceHistogram::new(0.25).unwrap();
        session.release(&mod8_query(), &l1).unwrap();
        // A second release under a relaxed policy: only values >= 80 stay
        // sensitive.
        let relaxed: Arc<dyn Policy<u32>> =
            Arc::new(ClosurePolicy::new("upper-fifth", |&v: &u32| v >= 80));
        session.release_with_policy(&mod8_query(), &dp, Arc::clone(&relaxed), "P80").unwrap();

        let (eps, policies) = session.composed_guarantee();
        assert!((eps - 0.75).abs() < 1e-12);
        assert_eq!(policies, vec!["P50".to_string(), "P80".to_string()]);

        // The composed (minimum-relaxation) policy classifies a record as
        // sensitive only when *every* component does (Definition 3.6).
        let composed = session.composed_policy();
        assert_eq!(composed.len(), 2);
        assert!(composed.is_non_sensitive(&60), "non-sensitive under P80");
        assert!(composed.is_sensitive(&90), "sensitive under both");
        assert!(composed.is_non_sensitive(&10));
    }

    #[test]
    fn pdp_releases_are_flagged_in_the_ledger() {
        let session = records_session(None);
        let suppress = Suppress::new(10.0).unwrap();
        session.release(&mod8_query(), &suppress).unwrap();
        let ledger = session.audit_ledger();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].guarantee, osdp_core::PrivacyGuarantee::Personalized);
        assert_eq!(ledger[0].epsilon, 10.0);
    }

    #[test]
    fn release_records_samples_only_non_sensitive_records() {
        let session = records_session(Some(2.0));
        let rr = OsdpRr::new(1.0).unwrap();
        let sample = session.release_records(&rr).unwrap();
        assert!(sample.iter().all(|&v| v < 50), "sensitive codes never leave");
        assert!(!sample.is_empty(), "at ~63% keep rate, 50 candidates");
        assert!((session.total_spent() - 1.0).abs() < 1e-12);
        assert_eq!(session.database_len(), Some(100));

        // Histogram-backed sessions cannot release records.
        let bound = SessionBuilder::<u32>::from_histograms(
            Histogram::from_counts(vec![5.0]),
            Histogram::from_counts(vec![5.0]),
        )
        .build()
        .unwrap();
        assert!(bound.release_records(&rr).is_err());
        assert_eq!(bound.database_len(), None);
    }

    #[test]
    fn columnar_sessions_match_row_sessions_exactly() {
        use osdp_core::policy::AttributePolicy;
        use osdp_core::Value;
        let db: Database<Record> =
            (0..500).map(|i| Record::builder().field("age", Value::Int(i % 90)).build()).collect();
        let query = SessionQuery::count_by_int_linear("age-decades", "age", 0, 10, 9);
        let build = |columnar: bool| {
            let mut b = SessionBuilder::new(db.clone());
            if columnar {
                b = b.columnar();
            }
            b.policy(AttributePolicy::int_at_most("age", 17), "minors").seed(99).build().unwrap()
        };
        let row = build(false);
        let col = build(true);
        assert_eq!(row.backend_name(), Some("row"));
        assert_eq!(col.backend_name(), Some("columnar"));
        assert_eq!(row.derive_task(&query).unwrap(), col.derive_task(&query).unwrap());
        let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
        let a = row.release(&query, &mechanism).unwrap();
        let b = col.release(&query, &mechanism).unwrap();
        assert_eq!(a.estimate, b.estimate, "same seed, same backend-independent stream");
        assert_eq!(
            row.release_trials(&query, &mechanism, 4).unwrap(),
            col.release_trials(&query, &mechanism, 4).unwrap()
        );
    }

    #[test]
    fn pair_sessions_reproduce_histogram_sessions() {
        let full = Histogram::from_counts(vec![10.0, 0.0, 25.0, 7.0]);
        let ns = Histogram::from_counts(vec![10.0, 0.0, 5.0, 0.0]);
        let mechanism = OsdpLaplaceL1::new(1.0).unwrap();

        let bound = histogram_session(full.clone(), ns.clone())
            .policy_label("P-sampled")
            .seed(5)
            .build()
            .unwrap();
        let pair =
            pair_session(&full, &ns).unwrap().policy_label("P-sampled").seed(5).build().unwrap();
        assert_eq!(pair.backend_name(), Some("columnar"));

        let query = pair_query(full.len());
        // The derived task is the exact pair...
        let task = pair.derive_task(&query).unwrap();
        assert_eq!(task.full(), &full);
        assert_eq!(task.non_sensitive(), &ns);
        assert_eq!(pair.scan(&query).unwrap().dropped, 0.0);
        // ...so same seed + label -> identical estimates to the bound path.
        let a = bound.release(&SessionQuery::bound(), &mechanism).unwrap();
        let b = pair.release(&query, &mechanism).unwrap();
        assert_eq!(a.estimate, b.estimate);
        // Frame-backed sessions cannot release records; their "length" is
        // the number of weighted frame rows (two bins split, two pure).
        assert!(pair.release_records(&OsdpRr::new(1.0).unwrap()).is_err());
        assert_eq!(pair.database_len(), Some(4));
    }

    #[test]
    fn columnar_on_a_histogram_backed_builder_is_an_error() {
        let full = Histogram::from_counts(vec![1.0, 2.0]);
        let err = histogram_session(full.clone(), full).columnar().build().unwrap_err();
        assert!(matches!(err, OsdpError::InvalidInput(_)));
        // ...but repeating it on a record-backed builder is a no-op.
        let db: Database<Record> = (0..4i64)
            .map(|i| Record::builder().field("v", osdp_core::Value::Int(i)).build())
            .collect();
        let session = SessionBuilder::new(db)
            .columnar()
            .columnar()
            .policy(osdp_core::policy::NoneSensitive, "Pnone")
            .build()
            .unwrap();
        assert_eq!(session.backend_name(), Some("columnar"));
    }

    #[test]
    fn scan_surfaces_dropped_records() {
        let session = records_session(None);
        // Only 4 bins: codes with v % 8 >= 4 drop out of range.
        let narrow = SessionQuery::count_by("narrow", 4, |&v: &u32| Some((v % 8) as usize));
        let pair = session.scan(&narrow).unwrap();
        assert_eq!(pair.full.total() + pair.dropped, 100.0);
        assert_eq!(pair.dropped, 48.0, "codes with v % 8 >= 4 fall outside the 4 bins");
    }

    #[test]
    fn same_seed_reproduces_same_estimates() {
        let a = records_session(None);
        let b = records_session(None);
        let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
        let ra = a.release(&mod8_query(), &mechanism).unwrap();
        let rb = b.release(&mod8_query(), &mechanism).unwrap();
        assert_eq!(ra.estimate, rb.estimate);
    }

    /// Values >= 25 are sensitive — strictly tighter than [`upper_half`].
    fn upper_three_quarters() -> Arc<dyn Policy<u32>> {
        Arc::new(ClosurePolicy::new("upper-3q", |&v: &u32| v >= 25))
    }

    #[test]
    fn epoch_transition_invalidates_the_task_cache_and_stamps_releases() {
        use osdp_core::policy::EpochDirection;
        let session = records_session(None);
        let mechanism = OsdpLaplaceL1::new(0.5).unwrap();
        // Epoch 0: 50 of 100 codes are non-sensitive, and the derived task
        // is cached.
        session.release(&mod8_query(), &mechanism).unwrap();
        assert_eq!(session.derive_task(&mod8_query()).unwrap().non_sensitive().total(), 50.0);
        assert_eq!(session.policy_version(), 0);

        let transition = session
            .set_policy_epoch(upper_three_quarters(), "P25", EpochDirection::Tighten)
            .unwrap();
        assert_eq!(transition.version, 1);
        assert_eq!(session.policy_version(), 1);
        assert_eq!(&*session.current_policy_label(), "P25");

        // The cached epoch-0 task must NOT survive the transition: the same
        // query now derives under the tightened policy.
        assert_eq!(session.derive_task(&mod8_query()).unwrap().non_sensitive().total(), 25.0);
        session.release(&mod8_query(), &mechanism).unwrap();

        let audit = session.audit_records();
        let stamps: Vec<(u64, u64, String)> =
            audit.iter().map(|r| (r.index, r.policy_version, r.policy.to_string())).collect();
        assert_eq!(stamps, vec![(0, 0, "P50".into()), (1, 1, "P25".into())]);
        assert!(session.verify_policy_lifecycle(None).upholds_osdp());
        assert_eq!(session.epoch_transitions().len(), 1);
    }

    #[test]
    fn relaxing_epochs_accumulate_minimum_relaxation_and_verify_clean() {
        use osdp_core::policy::EpochDirection;
        let session = records_session(None);
        let mechanism = OsdpLaplaceL1::new(0.5).unwrap();
        session.release(&mod8_query(), &mechanism).unwrap();
        // Consent arrives: values >= 75 stay sensitive (strictly more
        // permissive than the bound P50).
        session
            .set_policy_epoch(
                Arc::new(ClosurePolicy::new("upper-q", |&v: &u32| v >= 75)),
                "P75",
                EpochDirection::Relax,
            )
            .unwrap();
        session.release(&mod8_query(), &mechanism).unwrap();
        // Releases under both epochs compose under the minimum relaxation of
        // the epoch history: sensitive only where EVERY epoch agreed. 60 was
        // freed by the consent epoch; 80 stayed sensitive under both.
        let relaxation = session.lifecycle_minimum_relaxation();
        assert_eq!(relaxation.len(), 2, "two epochs in the history");
        assert!(relaxation.is_non_sensitive(&60));
        assert!(!relaxation.is_non_sensitive(&80));
        // An honest relax history passes the stale-policy check: release 0
        // is stamped v0, and v0 was in force at seq 0.
        assert!(session.verify_policy_lifecycle(None).upholds_osdp());
    }

    #[test]
    fn bound_sessions_refuse_epoch_transitions() {
        use osdp_core::policy::EpochDirection;
        let full = Histogram::from_counts(vec![4.0, 2.0]);
        let session =
            histogram_session(full.clone(), full).policy_label("P-sampled").build().unwrap();
        let err = session
            .set_policy_epoch(
                Arc::new(osdp_core::policy::NoneSensitive),
                "later",
                EpochDirection::Relax,
            )
            .unwrap_err();
        assert!(matches!(err, OsdpError::InvalidInput(_)));
        assert_eq!(session.policy_version(), 0);
        assert!(session.epoch_transitions().is_empty());
    }
}
