//! # osdp-engine
//!
//! The **audited front door** of the OSDP workspace: every release goes
//! through an [`OsdpSession`], which binds together the three things the
//! paper's contract `(P, ε)`-OSDP needs to be *enforced* rather than merely
//! claimed:
//!
//! 1. **the data** — either a record-level [`osdp_core::Database`] or a
//!    pre-aggregated histogram pair;
//! 2. **the policy function** `P` — so the non-sensitive sub-histogram
//!    `x_ns` is always derived from the bound policy and can never drift
//!    from it;
//! 3. **a [`osdp_core::BudgetAccountant`]** — debited *before* any noise is
//!    sampled, so an exhausted budget refuses the release instead of leaking
//!    it ([`osdp_core::OsdpError::BudgetExhausted`]).
//!
//! On top of that contract the session provides:
//!
//! * a **pluggable scan plane** ([`Backend`]): the session never touches
//!   records directly — it compiles every query + policy into a
//!   [`QueryPlan`] and asks the bound backend to [`Backend::scan`] it into
//!   the `(x, x_ns)` histogram pair. [`RowBackend`] is the row-at-a-time
//!   reference; [`ColumnarBackend`] evaluates compiled policies and bin
//!   specs vectorized over an [`osdp_core::ColumnarFrame`] and caches the
//!   policy partition per `(backend, policy label)`, so repeated releases
//!   under one policy perform **zero** policy evaluations. Both produce
//!   bit-for-bit identical output; future stores (sharded, streaming, SQL)
//!   implement the same trait;
//! * **minimum-relaxation bookkeeping** (Theorem 3.3): releases under
//!   different policies accumulate into a
//!   [`osdp_core::policy::MinimumRelaxation`], and
//!   [`OsdpSession::composed_guarantee`] reports the total ε together with
//!   the policy labels the composite guarantee refers to;
//! * an **audit log** ([`AuditLog`]) of every release — mechanism, policy,
//!   query, guarantee — whose ledger view is consumable by
//!   `osdp_attack::verify_ledger`;
//! * a **zero-allocation batch plane**: [`OsdpSession::release_trials`]
//!   runs one trial per core via rayon, writing into a preallocated output
//!   arena through the buffer-reuse
//!   [`HistogramMechanism::release_into`](osdp_mechanisms::HistogramMechanism::release_into)
//!   path (block noise kernels, per-thread mechanism scratch), with
//!   per-trial RNG streams derived deterministically from the session seed —
//!   [`OsdpSession::release_trials_serial`] is the scalar oracle the batch
//!   path must (and is property-tested to) reproduce bitwise;
//! * a **task cache** keyed by query/policy/backend identity: repeated
//!   releases of one question run one backend scan, and
//!   [`OsdpSession::release_pool`] amortizes that single scan plus a single
//!   grant-lock debit across a whole mechanism pool;
//! * a serde-friendly **mechanism registry** ([`MechanismSpec`]): pools are
//!   constructed by name from experiment configurations instead of being
//!   hard-wired at each call site.
//!
//! ## Quickstart
//!
//! Open a session on the columnar backend, bind a compiled policy, and
//! release through a pushdown query — the hot path never makes a virtual
//! policy call per record:
//!
//! ```
//! use osdp_core::policy::AttributePolicy;
//! use osdp_core::{Database, Record, Value};
//! use osdp_engine::{SessionBuilder, SessionQuery};
//! use osdp_mechanisms::OsdpLaplaceL1;
//!
//! let db: Database = (0..1000)
//!     .map(|i| Record::builder().field("age", Value::Int(10 + (i % 60))).build())
//!     .collect();
//! // `int_at_most` compiles to a branch-free columnar comparison.
//! let policy = AttributePolicy::int_at_most("age", 17);
//!
//! let session = SessionBuilder::new(db)
//!     .columnar() // snapshot into a ColumnarFrame; RowBackend otherwise
//!     .policy(policy, "minors")
//!     .budget(2.0)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! assert_eq!(session.backend_name(), Some("columnar"));
//!
//! // Histogram of ages 10..70 in 6 decade bins: a compiled GROUP BY that
//! // the backend evaluates column-at-a-time.
//! let query = SessionQuery::count_by_int_linear("age-decades", "age", 10, 10, 6);
//! let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
//! let release = session.release(&query, &mechanism).unwrap();
//! assert_eq!(release.estimate.len(), 6);
//! assert_eq!(session.total_spent(), 1.0);
//!
//! // A second release exhausts the 2.0 budget; a third is refused. The
//! // second scan reuses the cached policy partition.
//! session.release(&query, &mechanism).unwrap();
//! assert!(session.release(&query, &mechanism).is_err());
//! ```
//!
//! Opaque closure policies and `count_by` closures still work on either
//! backend — the columnar backend falls back to its retained rows — and
//! pre-aggregated `(x, x_ns)` pairs ride the same pipeline as weighted
//! frames via [`pair_session`] / [`pair_query`].
//!
//! ## Pool experiments
//!
//! Pool runners (the regret analysis of Section 6.3.3.2) release the same
//! query through every mechanism of a pool. [`OsdpSession::release_pool`]
//! batches the whole pool: **one** backend scan (served by the task cache),
//! **one** grant-lock critical section debiting every mechanism
//! all-or-nothing, and one rayon fan-out over every `(mechanism, trial)`
//! pair. Accounting and estimates are identical — bitwise, for the
//! estimates — to calling [`OsdpSession::release_trials`] once per mechanism
//! in pool order:
//!
//! ```
//! use osdp_core::Histogram;
//! use osdp_engine::{histogram_session, pool_from_names, SessionQuery};
//! use osdp_mechanisms::HistogramMechanism;
//!
//! let full = Histogram::from_counts(vec![120.0, 45.0, 0.0, 80.0]);
//! let ns = Histogram::from_counts(vec![100.0, 40.0, 0.0, 0.0]);
//! let session =
//!     histogram_session(full, ns).policy_label("P-sampled").seed(7).build().unwrap();
//!
//! let mechanisms = pool_from_names(&["OsdpLaplaceL1", "DAWAz", "DAWA"], 1.0).unwrap();
//! let pool: Vec<&dyn HistogramMechanism> = mechanisms.iter().map(|m| m.as_ref()).collect();
//! // 3 mechanisms × 10 trials: one scan, one grant batch, one fan-out.
//! let releases = session.release_pool(&SessionQuery::bound(), &pool, 10).unwrap();
//! assert_eq!(releases.len(), 3);
//! assert!(releases.iter().all(|r| r.estimates.len() == 10));
//! assert_eq!(session.total_spent(), 30.0);
//! ```
//!
//! ## Policy lifecycle model
//!
//! The paper's policy `P` is not static in deployment: consent arrives
//! (relaxing `P`), opt-outs and retention decay land (tightening it). A
//! session opens under one bound policy — **epoch 0** — and
//! [`OsdpSession::set_policy_epoch`] transitions it to a new epoch with an
//! explicit [`EpochDirection`]:
//!
//! * **Tighten** (opt-out, decay): the new policy marks a superset of
//!   records sensitive. Tightening is always sound mid-session — past
//!   releases were made under a policy at least as strict as claimed.
//! * **Relax** (consent): the new policy frees records. Every release
//!   after the transition composes under **minimum relaxation**
//!   (Theorem 3.3): the session's [`VersionedPolicy`] registry tracks the
//!   permissiveness partial order across versions and
//!   [`OsdpSession::lifecycle_minimum_relaxation`] reports the composite
//!   guarantee's policy set.
//!
//! Three contracts make transitions safe under live traffic:
//!
//! * **Grant paths stay lock-free.** A release captures the current epoch
//!   with one atomic pointer load; only `set_policy_epoch` takes the slow
//!   path (the epoch history mutex). Sessions that never transition are
//!   **bitwise identical** to the pre-lifecycle engine on every release
//!   path.
//! * **Cache invalidation is atomic with the transition.** The epoch bump
//!   clears the [`OsdpSession`] task cache and the columnar partition
//!   caches (both are keyed by policy *version*, not just label), so no
//!   release can ever be served a `(x, x_ns)` pair derived under a stale
//!   epoch — a release racing a transition either re-derives under the
//!   new epoch or carries the old epoch's stamp, never a mix.
//! * **Every audit record stamps `(policy label, version)`** — allocated
//!   atomically with the release index, so stamps are monotone in index
//!   order. `osdp_attack::verify_ledger_versioned` (exposed as
//!   [`OsdpSession::verify_policy_lifecycle`]) proves no release was
//!   served under a **more permissive** policy than the one in force at
//!   its sequence number; a stale-policy replay is rejected. Durable
//!   sessions log each transition as a WAL record, so recovery
//!   reconstructs the version history bit for bit.
//!
//! A retention **decay schedule** is just a sequence of tightens:
//!
//! ```
//! use osdp_core::policy::{AttributePolicy, EpochDirection};
//! use osdp_core::{Database, Record, Value};
//! use osdp_engine::{SessionBuilder, SessionQuery};
//! use osdp_mechanisms::OsdpLaplaceL1;
//! use std::sync::Arc;
//!
//! let db: Database = (0..600)
//!     .map(|i| Record::builder().field("age_days", Value::Int(i % 120)).build())
//!     .collect();
//! // Day 0: events older than 90 days have decayed to sensitive.
//! let session = SessionBuilder::new(db)
//!     .policy(AttributePolicy::int_at_most("age_days", 90), "decay-d0")
//!     .budget(10.0)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let query = SessionQuery::count_by_int_linear("age-buckets", "age_days", 0, 30, 4);
//! let mechanism = OsdpLaplaceL1::new(1.0).unwrap();
//! session.release(&query, &mechanism).unwrap();
//!
//! // Each elapsed day shrinks the retention horizon: strictly tightening,
//! // so the transition is always admissible.
//! for (day, horizon) in [(1, 60), (2, 30)] {
//!     session
//!         .set_policy_epoch(
//!             Arc::new(AttributePolicy::int_at_most("age_days", horizon)),
//!             format!("decay-d{day}"),
//!             EpochDirection::Tighten,
//!         )
//!         .unwrap();
//!     session.release(&query, &mechanism).unwrap();
//! }
//!
//! assert_eq!(session.policy_version(), 2);
//! let versions: Vec<u64> =
//!     session.audit_records().iter().map(|r| r.policy_version).collect();
//! assert_eq!(versions, vec![0, 1, 2], "each release stamped with its epoch");
//! // The versioned ledger check proves no release ran under a more
//! // permissive policy than the one in force at its sequence number.
//! assert!(session.verify_policy_lifecycle(Some(10.0)).upholds_osdp());
//! ```
//!
//! [`SessionPool::set_policy_epoch`] gives multi-tenant serving the same
//! lifecycle per tenant, and [`SessionPool::verify_all_ledgers`] runs the
//! versioned check across every tenant in one sweep.
//!
//! ## Concurrency model
//!
//! A session serves concurrent callers without a global lock; the grant
//! path — the sequence every release takes before sampling — is lock-free.
//! What is atomic, what is sharded, and what ordering the audit ledger
//! guarantees:
//!
//! * **Budget enforcement is atomic.** The
//!   [`osdp_core::BudgetAccountant`] keeps its spent total in fixed-point ε
//!   units ([`osdp_core::BudgetAccountant::RESOLUTION`] = 1e-12 ε) behind a
//!   single atomic counter; a grant — single release, trial batch, or
//!   all-or-nothing pool batch — is one CAS loop. Because integer addition
//!   commutes, the admitted total is independent of the interleaving order
//!   of concurrent spenders, and the cap can never be overshot (sequential
//!   composition, Theorem 3.3, enforced order-free). Only the
//!   human-readable entry ledger sits behind a mutex, appended *after* the
//!   grant.
//! * **The audit log is sharded.** [`AuditLog`] appends to per-thread shard
//!   buffers (no global append lock) and stamps each record with a monotone
//!   sequence number from one atomic counter, which doubles as the release
//!   index keying the deterministic RNG streams. `AuditLog::len` /
//!   `is_empty` / `total_epsilon` read atomic counters without touching the
//!   shards; [`AuditLog::records`] (O(n)) merges the shards back into
//!   release-index order. Single-threaded callers therefore observe exactly
//!   the historical append-order log — the bitwise-parity oracle paths are
//!   unchanged — while concurrent callers observe a total order consistent
//!   with index allocation. Under concurrency the *accountant ledger's*
//!   entry order may differ from audit order (both appends are
//!   post-grant), but every entry is present and every total is exact, so
//!   `osdp_attack::verify_ledger` verdicts are unaffected.
//! * **Caches are sharded.** The task cache hashes its identity keys
//!   across shards holding per-key derivation slots; racing derivations of
//!   the *same* key serialize on that key's slot and scan exactly once,
//!   while derivations of distinct keys — even on one shard — proceed in
//!   parallel. The policy registry behind
//!   [`OsdpSession::composed_policy`] is a read-write lock: releases under
//!   already-known policies only ever read.
//! * **Multi-tenant serving is a shard map.** [`SessionPool`] routes
//!   releases by tenant key to per-tenant sessions through shard read
//!   locks; per-tenant budgets are enforced independently, and the
//!   pool-wide cost across disjoint tenants composes in parallel
//!   (Theorem 10.2, [`SessionPool::parallel_composed_epsilon`]), with
//!   [`SessionPool::verify_all_ledgers`] checking every tenant's ledger in
//!   one sweep. Evicting a tenant whose releases may still be in flight is
//!   safe: [`SessionPool::remove`] returns the live `Arc`, whose audit log
//!   keeps absorbing the stragglers, and
//!   [`SessionPool::remove_quiesced`] additionally waits for them so a
//!   final ledger verify counts every release.
//!
//! ## Streaming model
//!
//! [`stream::StreamSession`] is the **continual-observation** half of the
//! engine: instead of one database fixed at construction, a
//! [`stream::WindowSource`] yields windows of records (one day of TIPPERS
//! trajectories, one batch of events) and each window is released as its
//! own histogram. The semantics are pinned by three rules:
//!
//! * **Window semantics.** Windows arrive densely in index order; window
//!   `w`'s rows are swapped into the session's bound [`Backend`] and
//!   scanned through the same policy/plan path as the one-shot plane, so
//!   the per-window `(x, x_ns)` pair is derived from the bound policy
//!   exactly as a one-shot release would derive it. Every release is
//!   audited under a window-stamped label (`"<query>@w<index>"`, or
//!   `"<query>@L<level>#<pos>"` for dyadic nodes).
//! * **Continual-observation ε accounting.** A
//!   [`StreamBudget`](osdp_core::StreamBudget) policy governs per-window
//!   debits: `PerWindow` composes sequentially (`T` windows cost `T·ε`);
//!   `SlidingWindow` enforces the *w-event* model — the ε-sum over any `W`
//!   consecutive windows stays within the frame cap, refused windows pass
//!   unreleased so the stream never aborts; `Hierarchical` buffers windows
//!   into a binary tree and debits **lazily**:
//!   [`stream::StreamSession::range_query`] answers a range over `T`
//!   windows from `O(log T)` dyadic node releases (each debited once,
//!   reused free afterwards) instead of `O(T)` per-window releases. All
//!   debits land in the wrapped session's lock-free accountant and its
//!   fixed-point units, so stream totals never drift from the grant path.
//! * **Oracle-parity guarantee.** Streaming is sugar over the one-shot
//!   machinery, not a parallel implementation: streaming `T` windows
//!   produces bitwise-identical estimates — and a ledger with the same
//!   fixed-point ε total — as releasing the same `T` window tasks through
//!   a plain [`OsdpSession`] with the same seed (the RNG stream of release
//!   `i` is `(seed, "release/<mechanism>", i)` on both planes).
//!   Property-tested in `tests/stream_parity.rs`.
//!
//! ## Durability model
//!
//! The in-memory accountant and audit log die with the process. The
//! **durable budget plane** ([`persist`], backed by the std-only
//! `osdp-persist` crate) fixes that without touching the in-memory fast
//! path: a session built with [`SessionBuilder::durable`] writes every
//! admitted grant to a per-tenant **write-ahead ledger** — an append-only
//! file of length-prefixed, CRC-checksummed records of the *fixed-point
//! debit units* the accountant admitted — after the budget CAS admits and
//! *before* any noise is sampled. Recovery ([`SessionPersistence::open`])
//! loads the latest snapshot, replays the WAL tail (truncating at the first
//! torn or checksum-failing frame), and seeds a fresh accountant + audit
//! log whose counters equal the pre-crash ones **bit for bit** — integer
//! unit addition commutes, so replay order cannot drift the totals and
//! `osdp_attack::verify_ledger` balances over the recovered state.
//!
//! * **Sync-policy trade-offs** ([`SyncPolicy`]): `Always` fsyncs before
//!   the grant call returns — a release is durable before its sample
//!   exists, at one fsync per grant. `EveryN(n)` amortizes the fsync; a
//!   crash loses at most the last `n − 1` grants, so the recovered total
//!   *under*-counts and the session refuses strictly less than the cap
//!   allows — the safe direction for a privacy ledger (budget is never
//!   resurrected, spend is never forgotten upward). `OnDrop` is the
//!   in-memory-comparable fast path for tests and bulk loads.
//!   `GroupCommit` ([`SyncPolicy::group_commit`]) keeps the `Always`
//!   guarantee — every grant call returns only after **its own** frame is
//!   fsync'd, still before any noise is sampled — but routes frames
//!   through a per-tenant committer thread that commits whole batches
//!   with one vectored write + one fsync, so `k` concurrent grantors pay
//!   ~one fsync per batch instead of one each. This is the policy that
//!   reconciles the concurrent serving plane with `Always`-grade
//!   durability: all five grant paths (`release`, `release_task`, trials,
//!   pool routing, record logging) ride it with no API change, and a
//!   crash mid-batch loses only grants whose call never returned — the
//!   recovery format and the torn-tail truncation rule are unchanged.
//! * **Single-writer-per-tenant.** Each tenant shard directory holds a
//!   `LOCK` file created with `O_EXCL`; a second concurrent opener is
//!   refused. A crash leaves the `LOCK` behind by design — reopening after
//!   a verified-dead writer requires an explicit
//!   [`osdp_persist::force_unlock`], so two live processes can never
//!   interleave frames in one WAL.
//! * **Crash-simulation coverage.** The test harness crashes writers via
//!   [`persist::SessionWal::crash`], which drops buffered frames (optionally
//!   writing a torn prefix) and leaks the lock — exercising torn tails,
//!   interrupted snapshot rotations, and stale-WAL generations. What it
//!   cannot simulate is the OS page cache discarding *fsync'd* data or a
//!   physical torn sector inside a single write: those need a real
//!   `kill -9` / power-cut rig. The recovery invariants (checksummed
//!   frames, generation-paired snapshot + WAL, prefix-closed replay) are
//!   designed so both failure classes degrade to the same observable: a
//!   truncated-but-balanced ledger.
//!
//! Sessions without [`SessionBuilder::durable`] take the exact same code
//! path as before the durable plane existed — the WAL hook is an `Option`
//! that is `None`, and every estimate, audit record, and ledger entry is
//! bitwise-identical to the in-memory build.
//!
//! # Failure model
//!
//! The durable plane assumes disks fail, and fails **closed**: no IO fault
//! can ever widen the privacy spend a tenant is held to.
//!
//! * **Typed faults.** Every persistence failure surfaces as
//!   [`osdp_core::error::PersistError`] — the operation (`open`, `write`,
//!   `fsync`, `rename`, …), the path, and a transient/permanent class — so
//!   callers branch on the taxonomy instead of string-matching. Transient
//!   write faults are retried inside the WAL with bounded exponential
//!   backoff ([`RetryPolicy`]), truncating back to the last known-good
//!   byte boundary between attempts so a retry can never duplicate a torn
//!   prefix mid-file.
//! * **Fsync is unforgiving.** A failed fsync is **permanent for the
//!   handle**: the page cache's state is unknown, so the writer is
//!   poisoned and the only continuation is reopen + recover. The ledger
//!   never re-fsyncs a descriptor whose fsync already failed.
//! * **Fail-closed grants.** The grant path debits the accountant, then
//!   writes the WAL, then samples noise. If the WAL cannot acknowledge the
//!   frame, the release call returns the typed error — the caller treats
//!   the grant as refused — while the admitted debit is conservatively
//!   kept. An IO fault can therefore waste budget, never resurrect it, and
//!   recovery replays at most the acknowledged history plus
//!   conservatively-retained frames (over-counting is the safe direction).
//! * **Recovery repairs what it can prove.** A corrupt snapshot is
//!   quarantined (`snapshot.corrupt-<gen>`) and recovery falls back to the
//!   parked prior generation or the WAL marker; a `LOCK` whose recorded
//!   writer is provably dead (dead pid, or a previous boot) is auto-cleared.
//!   Everything recovery repaired or fell back to is surfaced in a
//!   [`RecoveryReport`] on [`RecoveredSession`].
//! * **Tenant health and healing.** A durable [`SessionPool`] runs a
//!   per-tenant circuit breaker ([`TenantHealth`], tuned by
//!   [`HealthPolicy`]): transient faults mark a tenant `Degraded`,
//!   repeated or permanent faults `Quarantined` — further releases refuse
//!   fast with [`osdp_core::error::OsdpError::TenantQuarantined`] instead
//!   of queueing behind a dead shard, with one half-open probe per
//!   cooldown. [`SessionPool::try_heal`] evicts the wedged session, clears
//!   its leftover lock, reopens the shard through snapshot + replay, and
//!   restores `Healthy`; the healed accountant equals the audit log equals
//!   an independent ledger peek, bit for bit. One tenant's dead disk never
//!   blocks another tenant's releases.
//! * **Autonomous maintenance.** [`PoolSupervisor`] closes the heal loop
//!   without an operator: a background tick probes `Quarantined` tenants
//!   with **jittered exponential backoff** (deterministic per-(seed,
//!   tenant, attempt), so a herd of co-quarantined shards never probes in
//!   lockstep), bounded by a per-episode attempt budget, and runs periodic
//!   `sync_all` / `snapshot_all` / scrub sweeps. All scheduling reads an
//!   injectable [`SupervisorClock`] — tests drive it with [`ManualClock`]
//!   and observe every backoff expiry exactly.
//! * **Shared-device incident correlation.** When several tenants
//!   quarantine within one window and their typed errors all carry the
//!   device signature (permanent `write`/`fsync` —
//!   [`osdp_core::error::PersistError::is_device_signature`]), the
//!   supervisor opens a single [`DeviceIncident`] instead of treating them
//!   as independent shard deaths: heal probes collapse to one canary
//!   tenant until it recovers (no probe-storming a dying disk), and the
//!   incident names exactly the affected tenants — read faults and
//!   transient blips are never swept in.
//! * **Cold data is scrubbed before recovery needs it.**
//!   [`SessionPool::scrub_all`] (and the supervisor's periodic sweep)
//!   re-reads each shard's WAL and snapshots through the `Vfs` seam and
//!   verifies every frame CRC without decoding — silent bit rot surfaces
//!   as a quarantine with a typed `read`/permanent error *before* a crash
//!   makes recovery depend on the rotten bytes.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod audit;
pub mod backend;
pub(crate) mod cache;
pub(crate) mod intern;
pub mod persist;
pub mod pool;
pub mod registry;
pub mod session;
pub(crate) mod sharding;
pub mod stream;
pub mod supervisor;

pub use audit::{AuditLog, AuditRecord};
pub use backend::{Backend, ColumnarBackend, HistogramPair, QueryPlan, RowBackend};
pub use osdp_attack::{EpochTransition, EpochVerdict, LedgerVerdict, ReleaseStamp};
pub use osdp_core::policy::{EpochDirection, PolicyEpoch, VersionedPolicy};
pub use osdp_persist::{GroupCommitStats, LedgerOptions, RecoveryReport, RetryPolicy, SyncPolicy};
pub use persist::{GrantEvent, RecoveredSession, SessionPersistence, SessionWal};
pub use pool::{
    HealthPolicy, PoolMaintenanceError, PoolScrubReport, PoolVerdict, SessionPool, TenantHealth,
    TenantHealthReport, TenantVerdict,
};
pub use registry::{pool_from_names, pool_from_specs, MechanismSpec};
pub use session::{
    histogram_session, pair_query, pair_session, OsdpSession, PoolRelease, Release, SessionBuilder,
    SessionQuery,
};
pub use stream::{
    windows_from_databases, PoolWindowOutcome, StreamSession, StreamSessionBuilder,
    SyntheticWindows, Window, WindowOutcome, WindowSource, SYNTHETIC_FIELD,
};
pub use supervisor::{
    DeviceIncident, HealOutcome, ManualClock, PoolSupervisor, SupervisorClock, SupervisorConfig,
    SupervisorEvent, SupervisorHandle, SystemClock, TickReport,
};
