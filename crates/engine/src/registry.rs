//! [`MechanismSpec`]: the serde-friendly mechanism registry.
//!
//! Experiment configurations name their algorithm pools as data
//! (`["OsdpRR", "OsdpLaplaceL1", "DAWA", ...]`); the registry turns those
//! names into boxed [`HistogramMechanism`]s at a given budget. This is the
//! one place where mechanism names are mapped to constructors, so adding a
//! mechanism to the workspace means adding one `match` arm here.

use osdp_core::error::{OsdpError, Result};
use osdp_mechanisms::{
    DawaHistogram, Dawaz, DpLaplaceHistogram, HistogramMechanism, HybridLaplace, OsdpLaplace,
    OsdpLaplaceL1, OsdpRrHistogram, Suppress,
};
use serde::{Deserialize, Serialize};

/// A buildable mechanism description: mechanism kind plus its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MechanismSpec {
    /// `OsdpRR` packaged as a histogram mechanism (Algorithm 1).
    OsdpRr {
        /// Privacy budget ε.
        eps: f64,
    },
    /// One-sided Laplace on the non-sensitive histogram (Definition 5.2).
    OsdpLaplace {
        /// Privacy budget ε.
        eps: f64,
    },
    /// The de-biased one-sided Laplace variant (Algorithm 2).
    OsdpLaplaceL1 {
        /// Privacy budget ε.
        eps: f64,
    },
    /// The per-bin hybrid used on value-based policies (Section 6.3.3.1).
    Hybrid {
        /// Privacy budget ε.
        eps: f64,
    },
    /// DAWA upgraded with OSDP zero-bin knowledge (Algorithm 3).
    Dawaz {
        /// Privacy budget ε.
        eps: f64,
    },
    /// The ε-DP Laplace histogram baseline.
    DpLaplace {
        /// Privacy budget ε.
        eps: f64,
    },
    /// The DAWA DP baseline.
    Dawa {
        /// Privacy budget ε.
        eps: f64,
    },
    /// The PDP `Suppress` baseline with threshold τ (Section 3.4).
    Suppress {
        /// Threshold budget τ.
        tau: f64,
    },
}

impl MechanismSpec {
    /// Parses a mechanism name (as used in figures and configs) at budget
    /// `eps`. `Suppress<digits>` carries its own τ (e.g. `"Suppress100"`).
    pub fn parse(name: &str, eps: f64) -> Result<Self> {
        match name {
            "OsdpRR" => Ok(Self::OsdpRr { eps }),
            "OsdpLaplace" => Ok(Self::OsdpLaplace { eps }),
            "OsdpLaplaceL1" => Ok(Self::OsdpLaplaceL1 { eps }),
            "Hybrid" | "HybridLaplace" => Ok(Self::Hybrid { eps }),
            "DAWAz" => Ok(Self::Dawaz { eps }),
            "Laplace" | "DpLaplace" => Ok(Self::DpLaplace { eps }),
            "DAWA" => Ok(Self::Dawa { eps }),
            _ => {
                if let Some(digits) = name.strip_prefix("Suppress") {
                    let tau: f64 = digits.parse().map_err(|_| {
                        OsdpError::InvalidInput(format!(
                            "cannot parse Suppress threshold from `{name}`"
                        ))
                    })?;
                    Ok(Self::Suppress { tau })
                } else {
                    Err(OsdpError::InvalidInput(format!("unknown mechanism name `{name}`")))
                }
            }
        }
    }

    /// The canonical name, round-trippable through [`MechanismSpec::parse`]
    /// (`Suppress` carries its threshold: `"Suppress100"`). Matches each
    /// mechanism's display name, except for the hybrid, which reports under
    /// the `OsdpLaplaceL1` label it instantiates per bin.
    pub fn name(&self) -> String {
        match self {
            Self::OsdpRr { .. } => "OsdpRR".to_string(),
            Self::OsdpLaplace { .. } => "OsdpLaplace".to_string(),
            Self::OsdpLaplaceL1 { .. } => "OsdpLaplaceL1".to_string(),
            Self::Hybrid { .. } => "Hybrid".to_string(),
            Self::Dawaz { .. } => "DAWAz".to_string(),
            Self::DpLaplace { .. } => "Laplace".to_string(),
            Self::Dawa { .. } => "DAWA".to_string(),
            Self::Suppress { tau } => format!("Suppress{tau}"),
        }
    }

    /// Builds the mechanism.
    pub fn build(&self) -> Result<Box<dyn HistogramMechanism>> {
        Ok(match *self {
            Self::OsdpRr { eps } => Box::new(OsdpRrHistogram::new(eps)?),
            Self::OsdpLaplace { eps } => Box::new(OsdpLaplace::new(eps)?),
            Self::OsdpLaplaceL1 { eps } => Box::new(OsdpLaplaceL1::new(eps)?),
            Self::Hybrid { eps } => Box::new(HybridLaplace::new(eps)?),
            Self::Dawaz { eps } => Box::new(Dawaz::new(eps)?),
            Self::DpLaplace { eps } => Box::new(DpLaplaceHistogram::new(eps)?),
            Self::Dawa { eps } => Box::new(DawaHistogram::new(eps)?),
            Self::Suppress { tau } => Box::new(Suppress::new(tau)?),
        })
    }
}

/// Builds a pool from specs.
pub fn pool_from_specs(specs: &[MechanismSpec]) -> Result<Vec<Box<dyn HistogramMechanism>>> {
    specs.iter().map(MechanismSpec::build).collect()
}

/// Builds a pool by name at a shared budget `eps` (the shape experiment
/// configurations use).
pub fn pool_from_names<S: AsRef<str>>(
    names: &[S],
    eps: f64,
) -> Result<Vec<Box<dyn HistogramMechanism>>> {
    names.iter().map(|name| MechanismSpec::parse(name.as_ref(), eps)?.build()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdp_core::Guarantee;

    #[test]
    fn every_spec_builds_and_names_round_trip() {
        let eps = 1.0;
        for name in ["OsdpRR", "OsdpLaplace", "OsdpLaplaceL1", "Hybrid", "DAWAz", "Laplace", "DAWA"]
        {
            let spec = MechanismSpec::parse(name, eps).unwrap();
            let mechanism = spec.build().unwrap();
            assert!(!mechanism.name().is_empty());
            assert_eq!(mechanism.guarantee().epsilon(), eps, "{name}");
        }
    }

    #[test]
    fn names_round_trip_through_parse() {
        let eps = 0.5;
        for spec in [
            MechanismSpec::OsdpRr { eps },
            MechanismSpec::OsdpLaplace { eps },
            MechanismSpec::OsdpLaplaceL1 { eps },
            MechanismSpec::Hybrid { eps },
            MechanismSpec::Dawaz { eps },
            MechanismSpec::DpLaplace { eps },
            MechanismSpec::Dawa { eps },
            MechanismSpec::Suppress { tau: 100.0 },
        ] {
            assert_eq!(MechanismSpec::parse(&spec.name(), eps).unwrap(), spec);
        }
    }

    #[test]
    fn suppress_carries_its_own_threshold() {
        let spec = MechanismSpec::parse("Suppress100", 1.0).unwrap();
        assert_eq!(spec, MechanismSpec::Suppress { tau: 100.0 });
        let mechanism = spec.build().unwrap();
        assert_eq!(mechanism.name(), "Suppress100");
        assert!(matches!(mechanism.guarantee(), Guarantee::Pdp { eps } if eps == 100.0));
        assert!(MechanismSpec::parse("Suppressx", 1.0).is_err());
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(MechanismSpec::parse("NoSuchMechanism", 1.0).is_err());
    }

    #[test]
    fn pools_build_in_order() {
        let pool = pool_from_names(&["OsdpRR", "DAWA"], 0.5).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool[0].name(), "OsdpRR");
        assert_eq!(pool[1].name(), "DAWA");
        assert!(pool_from_names(&["bogus"], 0.5).is_err());
        assert!(pool_from_names(&["OsdpRR"], -1.0).is_err(), "invalid eps propagates");

        let specs = [MechanismSpec::OsdpLaplaceL1 { eps: 1.0 }, MechanismSpec::Dawa { eps: 1.0 }];
        assert_eq!(pool_from_specs(&specs).unwrap().len(), 2);
    }

    #[test]
    fn guarantees_partition_the_pool() {
        let pool = pool_from_names(
            &["OsdpRR", "OsdpLaplace", "OsdpLaplaceL1", "DAWAz", "Laplace", "DAWA"],
            1.0,
        )
        .unwrap();
        let dp: Vec<&str> = pool
            .iter()
            .filter(|m| m.guarantee().is_differentially_private())
            .map(|m| m.name())
            .collect();
        assert_eq!(dp, vec!["Laplace", "DAWA"], "exactly the 2 DP baselines");
    }
}
