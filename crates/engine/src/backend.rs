//! Pluggable scan backends: how a session turns *data + policy + query* into
//! a histogram pair.
//!
//! A [`Backend`] owns the data a record-level session releases against and
//! answers one question — [`Backend::scan`]: given a [`QueryPlan`] (bin
//! assignment + policy), produce the full histogram `x` and its non-sensitive
//! sub-histogram `x_ns` (Section 5.1 of the paper). Everything else the
//! session does (budget, audit, sampling) is backend-agnostic, so every
//! future store — sharded, streaming, SQL — plugs in by implementing this one
//! trait instead of re-threading closures through the session.
//!
//! Two implementations ship today:
//!
//! * [`RowBackend`] — the reference row-at-a-time path over any
//!   [`Database<R>`]. It evaluates the boxed bin closure and (on first use
//!   per policy) the virtual policy per record, and caches the resulting
//!   sensitive/non-sensitive partition per `(policy label, policy identity)`
//!   so repeated releases under one policy never re-classify.
//! * [`ColumnarBackend`] — the vectorized path over a
//!   [`ColumnarFrame`]: compiled policies
//!   ([`osdp_core::frame::CompiledPolicy`]) and compiled
//!   bin specs ([`osdp_core::BinSpec`]) evaluate column-at-a-time, the
//!   [`PolicyMask`] partition is cached the same way, and weighted frames
//!   let pre-aggregated histogram pairs ride the identical code path.
//!   Policies or queries without a compiled form fall back to the retained
//!   rows (when constructed via [`ColumnarBackend::from_database`]), so the
//!   backend never answers differently from [`RowBackend`] — only faster.
//!
//! The two backends are **bit-for-bit equivalent** on any record database:
//! same full histogram, same non-sensitive histogram, same dropped count
//! (property-tested in `tests/backend_parity.rs`).

use osdp_core::error::{OsdpError, Result};
use osdp_core::frame::{BinSpec, ColumnarFrame, PolicyMask, DROPPED_BIN};
use osdp_core::policy::Policy;
use osdp_core::{Database, Histogram, Record};
use osdp_mechanisms::HistogramTask;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The result of one backend scan: the paper's `(x, x_ns)` pair plus the
/// record mass the query dropped (bin closure returned `None` or an
/// out-of-range bin).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramPair {
    /// The full histogram `x`.
    pub full: Histogram,
    /// The non-sensitive sub-histogram `x_ns` (bin-wise ≤ `full`).
    pub non_sensitive: Histogram,
    /// Total weight of records the query did not bin.
    pub dropped: f64,
}

impl HistogramPair {
    /// Converts the pair into the mechanism-facing [`HistogramTask`],
    /// revalidating the domination invariant.
    pub fn into_task(self) -> Result<HistogramTask> {
        HistogramTask::new(self.full, self.non_sensitive)
    }
}

/// A compiled query: everything a backend needs to evaluate one histogram
/// release. Sessions assemble plans from a
/// [`crate::SessionQuery`] plus the effective policy; the `Arc`s make the
/// plan cheap to build per release.
pub struct QueryPlan<R = Record> {
    /// Audit-log label of the query.
    pub label: String,
    /// Number of bins in the query domain.
    pub bins: usize,
    /// Row-at-a-time bin assignment (the reference semantics).
    #[allow(clippy::type_complexity)]
    pub bin_of: Arc<dyn Fn(&R) -> Option<usize> + Send + Sync>,
    /// The compiled bin assignment, when the query carries one.
    pub bin_spec: Option<BinSpec>,
    /// The policy the scan classifies under.
    pub policy: Arc<dyn Policy<R>>,
    /// Label of the policy (cache key component and audit-log field).
    pub policy_label: String,
    /// The policy epoch version the release was stamped with (cache key
    /// component; 0 for sessions that never transition).
    pub policy_version: u64,
}

impl<R> QueryPlan<R> {
    /// The partition-cache key: the policy label, the policy's identity
    /// (two different policies registered under one label must not share a
    /// cached partition), and the epoch version (a transition that
    /// re-installs a policy at a recycled allocation address must not reach
    /// the pre-transition partition).
    fn partition_key(&self) -> (String, usize, u64) {
        (
            self.policy_label.clone(),
            Arc::as_ptr(&self.policy) as *const () as usize,
            self.policy_version,
        )
    }
}

impl<R> std::fmt::Debug for QueryPlan<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryPlan")
            .field("label", &self.label)
            .field("bins", &self.bins)
            .field("bin_spec", &self.bin_spec)
            .field("policy_label", &self.policy_label)
            .finish()
    }
}

/// A pluggable data store a record-level session scans against.
pub trait Backend<R = Record>: Send + Sync {
    /// Short, stable backend name (bench labels, debug output).
    fn name(&self) -> &'static str;

    /// Number of records (rows or total weight rounded down for weighted
    /// frames is **not** implied — this is the row count).
    fn len(&self) -> usize;

    /// Whether the backend holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates the plan: bins every record into the full histogram and
    /// every policy-cleared record into the non-sensitive sub-histogram.
    fn scan(&self, plan: &QueryPlan<R>) -> Result<HistogramPair>;

    /// Row access for record-level releases (`OsdpRR`'s true-sample front
    /// door), when this backend retains the records. Frame-only backends
    /// return `None` and can answer histogram queries only.
    fn database(&self) -> Option<&Database<R>> {
        None
    }

    /// Drops any cached policy partitions. Called by the session when a
    /// policy epoch transition lands, so post-transition scans re-classify
    /// under the new epoch instead of hitting a pre-transition mask.
    /// Pure-cache semantics: in-flight scans finish with the masks they
    /// already hold, later scans recompute. Backends without a partition
    /// cache need not override.
    fn invalidate_partitions(&self) {}
}

/// Shared partition cache: `(policy label, policy identity, epoch version) →
/// non-sensitive mask`, so repeated releases under one policy skip
/// re-classification. Each entry **retains the policy `Arc`** whose address
/// keyed it: the allocation can never be reused while the entry lives, so an
/// address collision always means the same policy object (no ABA through
/// dropped policies).
type PartitionMap<R> = HashMap<(String, usize, u64), (Arc<dyn Policy<R>>, Arc<PolicyMask>)>;
type PartitionCache<R> = Mutex<PartitionMap<R>>;

/// Cap on cached partitions per backend. Sessions bind a handful of policies
/// (the bound one plus occasional `release_with_policy` overrides); a caller
/// minting a fresh policy `Arc` per release would otherwise grow the cache —
/// and the masks it pins — without bound. When the cap is hit the cache is
/// cleared (it is a pure cache: results are unaffected, only recomputed).
const PARTITION_CACHE_CAP: usize = 64;

/// Inserts an entry, clearing the cache first when it is full.
fn insert_partition<R>(
    cache: &mut PartitionMap<R>,
    key: (String, usize, u64),
    policy: &Arc<dyn Policy<R>>,
    mask: &Arc<PolicyMask>,
) {
    if cache.len() >= PARTITION_CACHE_CAP {
        cache.clear();
    }
    cache.insert(key, (Arc::clone(policy), Arc::clone(mask)));
}

/// Looks up the plan's partition in `cache`, computing it with `classify` on
/// a miss.
fn cached_partition<R>(
    cache: &PartitionCache<R>,
    plan: &QueryPlan<R>,
    classify: impl FnOnce() -> PolicyMask,
) -> Arc<PolicyMask> {
    let key = plan.partition_key();
    if let Some((policy, mask)) = cache.lock().get(&key) {
        debug_assert!(Arc::ptr_eq(policy, &plan.policy), "pinned allocation cannot be reused");
        return Arc::clone(mask);
    }
    let mask = Arc::new(classify());
    insert_partition(&mut cache.lock(), key, &plan.policy, &mask);
    mask
}

/// The shared row-at-a-time scan loop: bins every record through the boxed
/// closure, splitting by the precomputed partition mask. Used by
/// [`RowBackend`] and by [`ColumnarBackend`]'s retained-row fallback, so the
/// two can never drift in drop accounting.
fn scan_rows<R>(db: &Database<R>, mask: &PolicyMask, plan: &QueryPlan<R>) -> HistogramPair {
    let mut full = Histogram::zeros(plan.bins);
    let mut non_sensitive = Histogram::zeros(plan.bins);
    let mut dropped = 0.0;
    for (i, record) in db.iter().enumerate() {
        match (plan.bin_of)(record) {
            Some(bin) if bin < plan.bins => {
                full.increment(bin, 1.0);
                if mask.get(i) {
                    non_sensitive.increment(bin, 1.0);
                }
            }
            _ => dropped += 1.0,
        }
    }
    HistogramPair { full, non_sensitive, dropped }
}

// ---------------------------------------------------------------------------
// RowBackend
// ---------------------------------------------------------------------------

/// The reference row-at-a-time backend over any [`Database<R>`].
///
/// Kept for record types without a columnar projection (trajectories, plain
/// codes) and as the semantics oracle the columnar path is tested against.
pub struct RowBackend<R> {
    db: Database<R>,
    partitions: PartitionCache<R>,
}

impl<R> RowBackend<R> {
    /// Wraps a database.
    pub fn new(db: Database<R>) -> Self {
        Self { db, partitions: Mutex::new(HashMap::new()) }
    }
}

impl<R> std::fmt::Debug for RowBackend<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowBackend").field("records", &self.db.len()).finish()
    }
}

impl<R: Send + Sync> Backend<R> for RowBackend<R> {
    fn name(&self) -> &'static str {
        "row"
    }

    fn len(&self) -> usize {
        self.db.len()
    }

    fn scan(&self, plan: &QueryPlan<R>) -> Result<HistogramPair> {
        let mask =
            cached_partition(&self.partitions, plan, || self.db.policy_mask(plan.policy.as_ref()));
        Ok(scan_rows(&self.db, &mask, plan))
    }

    fn database(&self) -> Option<&Database<R>> {
        Some(&self.db)
    }

    fn invalidate_partitions(&self) {
        self.partitions.lock().clear();
    }
}

// ---------------------------------------------------------------------------
// ColumnarBackend
// ---------------------------------------------------------------------------

/// The vectorized backend over a [`ColumnarFrame`].
///
/// Constructed from a record database (retaining the rows, so opaque
/// closures still work) or directly from a frame (loaders that never
/// materialise records; compiled policies and bin specs only).
pub struct ColumnarBackend {
    frame: ColumnarFrame,
    rows: Option<Database<Record>>,
    partitions: PartitionCache<Record>,
}

impl ColumnarBackend {
    /// Snapshots a record database into columns, retaining the rows as the
    /// fallback for policies and queries without a compiled form.
    pub fn from_database(db: Database<Record>) -> Self {
        let frame = ColumnarFrame::from_database(&db);
        Self { frame, rows: Some(db), partitions: Mutex::new(HashMap::new()) }
    }

    /// Wraps a pre-built frame (possibly weighted). Without retained rows,
    /// every policy must compile ([`Policy::compiled`]) and every query must
    /// carry a [`BinSpec`]; otherwise the scan fails instead of silently
    /// degrading.
    pub fn from_frame(frame: ColumnarFrame) -> Self {
        Self { frame, rows: None, partitions: Mutex::new(HashMap::new()) }
    }

    /// The columnar snapshot this backend scans.
    pub fn frame(&self) -> &ColumnarFrame {
        &self.frame
    }

    fn partition_for(&self, plan: &QueryPlan<Record>) -> Result<Arc<PolicyMask>> {
        // Not `cached_partition`: the miss path is fallible (a frame-only
        // backend refuses opaque policies), so the closure shape differs.
        let key = plan.partition_key();
        if let Some((policy, mask)) = self.partitions.lock().get(&key) {
            debug_assert!(Arc::ptr_eq(policy, &plan.policy), "pinned allocation cannot be reused");
            return Ok(Arc::clone(mask));
        }
        let mask = if let Some(compiled) = plan.policy.compiled() {
            compiled.evaluate(&self.frame)
        } else if let Some(rows) = &self.rows {
            rows.policy_mask(plan.policy.as_ref())
        } else {
            return Err(OsdpError::InvalidInput(format!(
                "policy {:?} has no vectorized compilation and this frame-backed \
                 columnar backend retains no rows to fall back on",
                plan.policy_label
            )));
        };
        let mask = Arc::new(mask);
        insert_partition(&mut self.partitions.lock(), key, &plan.policy, &mask);
        Ok(mask)
    }
}

impl std::fmt::Debug for ColumnarBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnarBackend")
            .field("rows", &self.frame.len())
            .field("columns", &self.frame.columns().len())
            .field("weighted", &self.frame.weights().is_some())
            .field("row_fallback", &self.rows.is_some())
            .finish()
    }
}

impl Backend<Record> for ColumnarBackend {
    fn name(&self) -> &'static str {
        "columnar"
    }

    fn len(&self) -> usize {
        self.frame.len()
    }

    fn scan(&self, plan: &QueryPlan<Record>) -> Result<HistogramPair> {
        let mask = self.partition_for(plan)?;
        if let Some(spec) = &plan.bin_spec {
            // Vectorized binning: one pass over the grouped column, then one
            // pass over the assignment — no per-record closure calls at all.
            let assignment = spec.assign(&self.frame, plan.bins)?;
            let mut full = Histogram::zeros(plan.bins);
            let mut non_sensitive = Histogram::zeros(plan.bins);
            let mut dropped = 0.0;
            for (i, &bin) in assignment.iter().enumerate() {
                let weight = self.frame.weight(i);
                if bin == DROPPED_BIN {
                    dropped += weight;
                } else {
                    full.increment(bin as usize, weight);
                    if mask.get(i) {
                        non_sensitive.increment(bin as usize, weight);
                    }
                }
            }
            Ok(HistogramPair { full, non_sensitive, dropped })
        } else if let Some(rows) = &self.rows {
            // Closure-only query: bin from the retained rows through the
            // exact loop RowBackend runs (weights are only ever attached to
            // loader-built frames, which always carry compiled bin specs).
            debug_assert!(self.frame.weights().is_none());
            Ok(scan_rows(rows, &mask, plan))
        } else {
            Err(OsdpError::InvalidInput(format!(
                "query {:?} has no compiled bin spec and this frame-backed columnar \
                 backend retains no rows to fall back on",
                plan.label
            )))
        }
    }

    fn database(&self) -> Option<&Database<Record>> {
        self.rows.as_ref()
    }

    fn invalidate_partitions(&self) {
        self.partitions.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdp_core::policy::{AttributePolicy, ClosurePolicy};
    use osdp_core::Value;

    fn ages_db(n: i64) -> Database<Record> {
        (0..n).map(|i| Record::builder().field("age", Value::Int(i % 60)).build()).collect()
    }

    fn minors_plan(policy: Arc<dyn Policy<Record>>, with_spec: bool) -> QueryPlan<Record> {
        let spec = BinSpec::IntLinear { field: "age".into(), origin: 0, width: 10 };
        let closure_spec = spec.clone();
        QueryPlan {
            label: "decades".into(),
            bins: 6,
            bin_of: Arc::new(move |r: &Record| closure_spec.bin_of_record(r)),
            bin_spec: with_spec.then_some(spec),
            policy,
            policy_label: "minors".into(),
            policy_version: 0,
        }
    }

    fn minors_policy() -> Arc<dyn Policy<Record>> {
        Arc::new(AttributePolicy::int_at_most("age", 17))
    }

    #[test]
    fn row_and_columnar_scans_agree() {
        let db = ages_db(600);
        let row = RowBackend::new(db.clone());
        let col = ColumnarBackend::from_database(db);
        let plan = minors_plan(minors_policy(), true);
        let a = row.scan(&plan).unwrap();
        let b = col.scan(&plan).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.full.total(), 600.0);
        assert_eq!(a.dropped, 0.0);
        // 18 of every 60 ages are minor-sensitive.
        assert_eq!(a.non_sensitive.total(), 600.0 - 180.0);
        assert_eq!(row.name(), "row");
        assert_eq!(col.name(), "columnar");
        assert_eq!(row.len(), col.len());
        assert!(!row.is_empty());
    }

    #[test]
    fn partition_cache_is_keyed_by_label_and_identity() {
        let db = ages_db(100);
        let backend = ColumnarBackend::from_database(db);
        let policy = minors_policy();
        let plan = minors_plan(Arc::clone(&policy), true);
        let first = backend.scan(&plan).unwrap();
        // Re-scan: served from the cached partition, identical output.
        assert_eq!(backend.scan(&plan).unwrap(), first);
        // A different policy under a *different* label must not collide.
        let seniors: Arc<dyn Policy<Record>> =
            Arc::new(AttributePolicy::sensitive_when("age", |v| v.as_int().unwrap_or(0) >= 40));
        let mut other = minors_plan(seniors, true);
        other.policy_label = "seniors".into();
        let second = backend.scan(&other).unwrap();
        assert_ne!(first.non_sensitive, second.non_sensitive);
        // And the first plan still answers from its own cache entry.
        assert_eq!(backend.scan(&plan).unwrap(), first);
    }

    #[test]
    fn same_label_different_policy_does_not_share_a_partition() {
        let db = ages_db(100);
        let backend = RowBackend::new(db);
        let plan_a = minors_plan(minors_policy(), false);
        let adults: Arc<dyn Policy<Record>> = Arc::new(AttributePolicy::int_at_most("age", 30));
        let mut plan_b = minors_plan(adults, false);
        plan_b.policy_label = "minors".into(); // deliberately the same label
        let a = backend.scan(&plan_a).unwrap();
        let b = backend.scan(&plan_b).unwrap();
        assert_ne!(a.non_sensitive, b.non_sensitive, "identity keeps the cache honest");
    }

    #[test]
    fn columnar_falls_back_to_rows_for_opaque_policies_and_closure_queries() {
        let db = ages_db(200);
        let row = RowBackend::new(db.clone());
        let col = ColumnarBackend::from_database(db);
        let opaque: Arc<dyn Policy<Record>> =
            Arc::new(ClosurePolicy::new("opaque", |r: &Record| {
                r.int("age").map(|a| a % 7 == 0).unwrap_or(true)
            }));
        // No spec AND no compiled policy: full row fallback.
        let plan = minors_plan(opaque, false);
        assert_eq!(row.scan(&plan).unwrap(), col.scan(&plan).unwrap());
    }

    #[test]
    fn frame_only_backends_require_compiled_forms() {
        let frame = ColumnarFrame::builder(3).column_int("age", vec![5, 25, 45]).build().unwrap();
        let backend = ColumnarBackend::from_frame(frame);
        assert!(backend.database().is_none());
        // Compiled policy + spec: fine.
        let plan = minors_plan(minors_policy(), true);
        let pair = backend.scan(&plan).unwrap();
        assert_eq!(pair.full.total(), 3.0);
        assert_eq!(pair.non_sensitive.total(), 2.0);
        // Opaque policy: refused.
        let opaque: Arc<dyn Policy<Record>> =
            Arc::new(ClosurePolicy::new("opaque", |_: &Record| true));
        assert!(backend.scan(&minors_plan(opaque, true)).is_err());
        // Closure-only query: refused.
        assert!(backend.scan(&minors_plan(minors_policy(), false)).is_err());
    }

    #[test]
    fn weighted_frames_scan_with_multiplicities() {
        let frame = ColumnarFrame::builder(3)
            .column_categorical("bin", vec![0, 1, 1])
            .column_bool("non_sensitive", vec![true, false, true])
            .weights(vec![4.0, 2.0, 3.0])
            .build()
            .unwrap();
        let backend = ColumnarBackend::from_frame(frame);
        let spec = BinSpec::Categorical { field: "bin".into() };
        let closure_spec = spec.clone();
        let plan = QueryPlan {
            label: "pair".into(),
            bins: 2,
            bin_of: Arc::new(move |r: &Record| closure_spec.bin_of_record(r)),
            bin_spec: Some(spec),
            policy: Arc::new(AttributePolicy::opt_in("non_sensitive")),
            policy_label: "P".into(),
            policy_version: 0,
        };
        let pair = backend.scan(&plan).unwrap();
        assert_eq!(pair.full.counts(), &[4.0, 5.0]);
        assert_eq!(pair.non_sensitive.counts(), &[4.0, 3.0]);
        assert_eq!(pair.dropped, 0.0);
        pair.into_task().unwrap();
    }

    #[test]
    fn partition_cache_stays_bounded_under_fresh_policy_arcs() {
        let db = ages_db(50);
        let backend = RowBackend::new(db.clone());
        let reference = backend.scan(&minors_plan(minors_policy(), false)).unwrap();
        // Mint far more distinct policy Arcs than the cap: results stay
        // correct and the cache never exceeds the cap.
        for _ in 0..(3 * PARTITION_CACHE_CAP) {
            let pair = backend.scan(&minors_plan(minors_policy(), false)).unwrap();
            assert_eq!(pair, reference);
            assert!(backend.partitions.lock().len() <= PARTITION_CACHE_CAP);
        }
    }

    #[test]
    fn epoch_versions_partition_the_cache_and_invalidate_cleanly() {
        let db = ages_db(100);
        let backend = ColumnarBackend::from_database(db);
        let policy = minors_policy();
        let v0 = minors_plan(Arc::clone(&policy), true);
        let mut v1 = minors_plan(policy, true);
        v1.policy_version = 1;
        let a = backend.scan(&v0).unwrap();
        let b = backend.scan(&v1).unwrap();
        assert_eq!(a, b, "same policy object answers identically across versions");
        assert_eq!(backend.partitions.lock().len(), 2, "versions get distinct entries");
        backend.invalidate_partitions();
        assert_eq!(backend.partitions.lock().len(), 0);
        assert_eq!(backend.scan(&v1).unwrap(), a, "re-derived after invalidation");
    }

    #[test]
    fn dropped_mass_is_reported() {
        let db = ages_db(100); // ages 0..60
        let row = RowBackend::new(db.clone());
        let col = ColumnarBackend::from_database(db);
        let spec = BinSpec::IntLinear { field: "age".into(), origin: 0, width: 10 };
        let closure_spec = spec.clone();
        let plan = QueryPlan {
            label: "three-decades".into(),
            bins: 3, // ages >= 30 fall outside
            bin_of: Arc::new(move |r: &Record| closure_spec.bin_of_record(r)),
            bin_spec: Some(spec),
            policy: minors_policy(),
            policy_label: "minors".into(),
            policy_version: 0,
        };
        let a = row.scan(&plan).unwrap();
        let b = col.scan(&plan).unwrap();
        assert_eq!(a, b);
        assert!(a.dropped > 0.0);
        assert_eq!(a.full.total() + a.dropped, 100.0);
    }
}
