//! Shared hash-to-shard routing for the engine's sharded maps (task cache,
//! session pool): one place to change the hasher or the distribution
//! strategy.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The shard index `key` routes to among `shards` shards (`shards >= 1`).
pub(crate) fn shard_index(key: &impl Hash, shards: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish() as usize % shards
}
