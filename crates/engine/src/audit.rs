//! The session audit log: one record per release, with a ledger view
//! consumable by `osdp_attack::verify_ledger`.

use osdp_core::budget::{epsilon_to_units, LedgerEntry};
use osdp_core::{BudgetAccountant, Guarantee};
use osdp_metrics::{json_number, json_string};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One audited release.
///
/// The three label fields are shared `Arc<str>`s interned by the session:
/// appending a record to the log costs three reference-count increments, not
/// three string allocations, which matters in the trial-batch hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Monotone release index within the session.
    pub index: u64,
    /// Mechanism display name.
    pub mechanism: Arc<str>,
    /// Label of the policy the release was evaluated under.
    pub policy: Arc<str>,
    /// Label of the query answered.
    pub query: Arc<str>,
    /// Number of histogram bins released (0 for record-sample releases).
    pub bins: usize,
    /// Number of trials in the batch (1 for single releases).
    pub trials: usize,
    /// The guarantee of **one** trial; the batch costs
    /// `trials × guarantee.epsilon()` under sequential composition.
    pub guarantee: Guarantee,
    /// The policy epoch version in force when the release index was
    /// allocated (0 for sessions that never transition). Stamped
    /// atomically with the index, so stamps are monotone in index order.
    pub policy_version: u64,
}

impl AuditRecord {
    /// Total epsilon debited for this record (sequential composition over the
    /// batch, Theorem 3.3).
    pub fn total_epsilon(&self) -> f64 {
        self.guarantee.epsilon() * self.trials as f64
    }

    /// The ledger view of this record, in the shape
    /// `osdp_attack::verify_ledger` consumes.
    pub fn to_ledger_entry(&self) -> LedgerEntry {
        LedgerEntry {
            label: if self.trials > 1 {
                format!("{} x{}", self.mechanism, self.trials)
            } else {
                self.mechanism.to_string()
            },
            policy: self.policy.to_string(),
            epsilon: self.total_epsilon(),
            guarantee: self.guarantee.kind(),
        }
    }

    /// One JSON object describing the record.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"index\": {}, \"mechanism\": {}, \"policy\": {}, \"policy_version\": {}, \
             \"query\": {}, \"bins\": {}, \"trials\": {}, \"guarantee\": {}, \"epsilon\": {}}}",
            self.index,
            json_string(&self.mechanism),
            json_string(&self.policy),
            self.policy_version,
            json_string(&self.query),
            self.bins,
            self.trials,
            json_string(self.guarantee.label()),
            json_number(self.guarantee.epsilon()),
        )
    }
}

/// Bit position of the policy version in the packed sequence word: the low
/// 48 bits hold the next release index, the high 16 bits the current policy
/// epoch version. One `fetch_add(1)` therefore allocates an index **and**
/// reads the version in force at allocation as a single atomic — version
/// stamps are exactly monotone in index order by construction, with no lock
/// on the release path.
const VERSION_SHIFT: u32 = 48;
/// Mask selecting the release-index bits of the packed sequence word.
const INDEX_MASK: u64 = (1 << VERSION_SHIFT) - 1;
/// Largest representable policy version (16 version bits).
const MAX_VERSION: u64 = (1 << (64 - VERSION_SHIFT)) - 1;

/// Number of per-thread append shards. Appenders on different threads land
/// on different mutexes, so hot-path appends never contend; 16 covers any
/// realistic serving thread count without measurable snapshot cost.
const AUDIT_SHARDS: usize = 16;

/// The shard slot of the calling thread: assigned round-robin on first use
/// and cached in a thread-local, so a serving thread always appends to the
/// same shard (its "per-thread append buffer").
fn thread_shard() -> usize {
    static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % AUDIT_SHARDS;
            slot.set(v);
        }
        v
    })
}

/// A thread-safe, append-only log of audited releases, sharded for
/// concurrent appenders.
///
/// Records are appended to **per-thread shard buffers** (no global append
/// lock) and stamped with a monotone sequence number drawn from one atomic
/// counter; [`AuditLog::records`] merges the shards back into sequence
/// order, so single-threaded callers observe exactly the historical
/// append-order log, and concurrent callers observe a total order
/// consistent with the grant sequence. [`AuditLog::len`] /
/// [`AuditLog::is_empty`] / [`AuditLog::total_epsilon`] read atomic
/// counters — O(1), never contending with appenders.
#[derive(Debug)]
pub struct AuditLog {
    /// Packed counter: low 48 bits are the next sequence stamp (== number of
    /// records appended, the atomic `len`), high 16 bits the current policy
    /// epoch version. Packing both into one word is what makes version
    /// stamps monotone: index allocation and version observation are a
    /// single `fetch_add`.
    seq: AtomicU64,
    /// Total debited ε across all records, in [`BudgetAccountant::RESOLUTION`]
    /// fixed-point units — the iteration-free ledger total.
    spent_units: AtomicU64,
    /// Collapsed pre-recovery history: ledger entries reconstructed from a
    /// durable snapshot, prepended to every [`AuditLog::ledger`] view.
    /// Empty (and allocation-free) for non-recovered logs.
    base: Vec<LedgerEntry>,
    shards: Vec<Mutex<Vec<(u64, AuditRecord)>>>,
}

impl Default for AuditLog {
    fn default() -> Self {
        Self {
            seq: AtomicU64::new(0),
            spent_units: AtomicU64::new(0),
            base: Vec::new(),
            shards: (0..AUDIT_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

impl AuditLog {
    /// Highest representable policy version: the packed sequence counter
    /// keeps versions in its top 16 bits, so a session supports 65 535
    /// epoch transitions (and 2⁴⁸ releases).
    pub const MAX_VERSION: u64 = MAX_VERSION;

    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log **seeded from recovered state**: the next release index starts
    /// at `seq`, the fixed-point ε counter at `spent_units` (both raw
    /// integers — no float round-trip), and `base` holds the ledger view of
    /// the collapsed pre-recovery history, which [`AuditLog::ledger`]
    /// prepends to the live records. Replayed tail records are then added
    /// one by one via [`AuditLog::restore`]. `version` is the policy epoch
    /// version in force at the crash (0 for sessions that never
    /// transitioned); live version stamps resume from it.
    pub fn recovered(seq: u64, version: u64, spent_units: u64, base: Vec<LedgerEntry>) -> Self {
        debug_assert!(seq <= INDEX_MASK && version <= MAX_VERSION);
        Self {
            seq: AtomicU64::new(seq | (version << VERSION_SHIFT)),
            spent_units: AtomicU64::new(spent_units),
            base,
            shards: (0..AUDIT_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Re-appends a record replayed from a durable ledger, debiting exactly
    /// `units` (the fixed-point debit the original grant logged) rather
    /// than re-deriving it from the record's ε — recovery reproduces the
    /// pre-crash counter bit for bit. The sequence counter advances to
    /// cover the record's index; replay order does not matter.
    pub fn restore(&self, record: AuditRecord, units: u64) {
        // Recovery is single-writer, so reading the version bits and
        // fetch_max'ing the packed word is race-free here.
        let version = self.seq.load(Ordering::Acquire) >> VERSION_SHIFT;
        let packed = (record.index + 1) | (version << VERSION_SHIFT);
        self.seq.fetch_max(packed, Ordering::AcqRel);
        self.spent_units.fetch_add(units, Ordering::AcqRel);
        let stamp = record.index;
        self.shards[thread_shard()].lock().push((stamp, record));
    }

    /// Stamps a record with `seq` and appends it to the calling thread's
    /// shard buffer.
    ///
    /// The ε accumulator debits `epsilon_to_units(record ε)` — the **same**
    /// ceiling-rounded fixed-point conversion the `BudgetAccountant` grant
    /// path applies to the same f64 — so for a session whose every grant is
    /// audited, `total_epsilon()` equals the accountant's `total_spent()`
    /// **bit for bit**, independent of shard interleaving (integer addition
    /// commutes; the historical float accumulation did not).
    fn push_stamped(&self, seq: u64, record: AuditRecord) {
        let units = epsilon_to_units(record.total_epsilon());
        self.spent_units.fetch_add(units, Ordering::AcqRel);
        self.shards[thread_shard()].lock().push((seq, record));
    }

    /// Appends a record.
    pub fn append(&self, record: AuditRecord) {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) & INDEX_MASK;
        self.push_stamped(seq, record);
    }

    /// Allocates the next monotone release index and appends the record
    /// built from it. Index allocation is one atomic increment, so
    /// concurrent releases get dense, unique indices without serializing;
    /// the index doubles as the record's sequence stamp, keeping
    /// [`AuditLog::records`] in release-index order.
    pub fn append_next(&self, make: impl FnOnce(u64) -> AuditRecord) -> u64 {
        let index = self.seq.fetch_add(1, Ordering::AcqRel) & INDEX_MASK;
        self.push_stamped(index, make(index));
        index
    }

    /// [`AuditLog::append_next`], but the closure also receives the policy
    /// epoch version in force **at the instant the index was allocated** —
    /// both come out of one `fetch_add`, so across any interleaving of
    /// appends and [`AuditLog::bump_version`] calls the returned `(index,
    /// version)` pairs are monotone: a later index never carries an earlier
    /// version. Returns the pair so the caller can detect that a transition
    /// landed mid-release and re-derive under the stamped epoch.
    pub fn append_versioned(&self, make: impl FnOnce(u64, u64) -> AuditRecord) -> (u64, u64) {
        let packed = self.seq.fetch_add(1, Ordering::AcqRel);
        let index = packed & INDEX_MASK;
        let version = packed >> VERSION_SHIFT;
        self.push_stamped(index, make(index, version));
        (index, version)
    }

    /// Advances the policy epoch version by one, returning `(new_version,
    /// boundary_seq)`: every release index `< boundary_seq` was stamped with
    /// an earlier version, every index `>= boundary_seq` with `new_version`
    /// or later. One atomic add on the packed word — the boundary is exact,
    /// not racy. Errors when the 16-bit version space is exhausted (65 535
    /// transitions) rather than corrupting the index bits.
    pub fn bump_version(&self) -> Result<(u64, u64), osdp_core::OsdpError> {
        let prev = self
            .seq
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |packed| {
                if packed >> VERSION_SHIFT >= MAX_VERSION {
                    None
                } else {
                    Some(packed + (1 << VERSION_SHIFT))
                }
            })
            .map_err(|_| {
                osdp_core::OsdpError::InvalidInput(
                    "policy epoch version space exhausted (65535 transitions)".into(),
                )
            })?;
        Ok(((prev >> VERSION_SHIFT) + 1, prev & INDEX_MASK))
    }

    /// The policy epoch version currently stamped onto new releases — one
    /// atomic load.
    pub fn current_version(&self) -> u64 {
        self.seq.load(Ordering::Acquire) >> VERSION_SHIFT
    }

    /// A snapshot of all records, merged from the shard buffers and sorted
    /// into release order. **O(n)** in the number of audited releases —
    /// use [`AuditLog::len`] / [`AuditLog::total_epsilon`] for hot-path
    /// probes. A snapshot taken while appends are in flight contains every
    /// release whose append completed (an in-flight index may be absent
    /// until its appender finishes); a quiesced log snapshots exactly.
    pub fn records(&self) -> Vec<AuditRecord> {
        let mut out = Vec::new();
        self.records_into(&mut out);
        out
    }

    /// [`AuditLog::records`] into a caller-provided buffer: `out` is
    /// cleared and refilled, but its capacity is reused — repeated audits
    /// (a pool-wide `verify_all_ledgers` sweep, a monitoring loop) merge
    /// the shards without re-allocating the snapshot vector each time.
    pub fn records_into(&self, out: &mut Vec<AuditRecord>) {
        out.clear();
        let mut all: Vec<(u64, AuditRecord)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.lock().iter().cloned());
        }
        all.sort_by_key(|&(seq, _)| seq);
        out.extend(all.into_iter().map(|(_, record)| record));
    }

    /// Current length of each shard buffer, in shard order — an O(shards)
    /// observability probe for append skew (a healthy concurrent workload
    /// spreads across shards; a single-threaded one fills exactly one).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|shard| shard.lock().len()).collect()
    }

    /// Number of audited releases — one atomic load, no shard locks.
    pub fn len(&self) -> usize {
        (self.seq.load(Ordering::Acquire) & INDEX_MASK) as usize
    }

    /// Whether the log is empty — one atomic load, no shard locks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total ε debited across every audited release, maintained atomically
    /// on append (fixed-point, [`BudgetAccountant::RESOLUTION`] units): the
    /// iteration-free ledger total, exactly what the accountant's grant
    /// path debits for the same releases — bit for bit, not merely within a
    /// float tolerance (see [`AuditLog::total_epsilon_units`]).
    pub fn total_epsilon(&self) -> f64 {
        self.spent_units.load(Ordering::Acquire) as f64 * BudgetAccountant::RESOLUTION
    }

    /// The raw fixed-point ε total ([`BudgetAccountant::RESOLUTION`] units
    /// each) — directly comparable to
    /// `BudgetAccountant::total_spent_units()`: when every accountant grant
    /// is audited (every session release path), the two integers are equal
    /// under any thread interleaving.
    pub fn total_epsilon_units(&self) -> u64 {
        self.spent_units.load(Ordering::Acquire)
    }

    /// O(1) budget check: whether the log's total ε respects `limit`
    /// (vacuously true without one). Compared in fixed-point units — the
    /// same integers the accountant's cap enforcement uses, so the verdict
    /// never drifts from the grant path's. The iteration-free half of
    /// `osdp_attack::verify_ledger` — the full structural verdict still
    /// consumes the [`AuditLog::ledger`] snapshot.
    pub fn within_limit(&self, limit: Option<f64>) -> bool {
        limit.is_none_or(|l| self.total_epsilon_units() <= epsilon_to_units(l))
    }

    /// The ledger view of the whole log (recovered-base entries first, then
    /// one entry per live audited release, in release order), consumable by
    /// `osdp_attack::verify_ledger`. O(n), like the [`AuditLog::records`]
    /// snapshot it is derived from.
    pub fn ledger(&self) -> Vec<LedgerEntry> {
        let mut scratch = Vec::new();
        self.ledger_with(&mut scratch)
    }

    /// [`AuditLog::ledger`] with a caller-provided scratch buffer for the
    /// intermediate record snapshot: a sweep over many sessions reuses one
    /// allocation instead of building and dropping a full record vector per
    /// log.
    pub fn ledger_with(&self, scratch: &mut Vec<AuditRecord>) -> Vec<LedgerEntry> {
        self.records_into(scratch);
        let mut out = Vec::with_capacity(self.base.len() + scratch.len());
        out.extend(self.base.iter().cloned());
        out.extend(scratch.iter().map(AuditRecord::to_ledger_entry));
        out
    }

    /// The log as a JSON array.
    pub fn to_json(&self) -> String {
        let records = self.records();
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&r.to_json());
            out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdp_core::PrivacyGuarantee;

    fn record(index: u64, trials: usize) -> AuditRecord {
        AuditRecord {
            index,
            mechanism: "OsdpLaplaceL1".into(),
            policy: "P90".into(),
            query: "bound".into(),
            bins: 16,
            trials,
            guarantee: Guarantee::Osdp { eps: 0.5 },
            policy_version: 0,
        }
    }

    #[test]
    fn ledger_view_scales_epsilon_by_trials() {
        let single = record(0, 1).to_ledger_entry();
        assert_eq!(single.label, "OsdpLaplaceL1");
        assert_eq!(single.epsilon, 0.5);
        assert_eq!(single.guarantee, PrivacyGuarantee::OneSided);

        let batch = record(1, 10).to_ledger_entry();
        assert_eq!(batch.label, "OsdpLaplaceL1 x10");
        assert!((batch.epsilon - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sharded_appends_merge_into_index_order() {
        use std::sync::Arc;
        // 8 threads append through append_next concurrently: indices are
        // dense and unique, the merged snapshot is sorted by index, and the
        // atomic counters agree with the snapshot.
        let log = Arc::new(AuditLog::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for trials in 1..=4 {
                        log.append_next(|index| record(index, trials));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 32);
        let records = log.records();
        assert_eq!(records.len(), 32);
        let indices: Vec<u64> = records.iter().map(|r| r.index).collect();
        assert_eq!(indices, (0..32).collect::<Vec<u64>>(), "dense, merged in order");
        let expected: f64 = records.iter().map(AuditRecord::total_epsilon).sum();
        assert!((log.total_epsilon() - expected).abs() < 1e-9);
        assert!(log.within_limit(Some(expected + 1.0)));
        assert!(!log.within_limit(Some(expected - 1.0)));
        assert!(log.within_limit(None));
    }

    #[test]
    fn recovered_logs_resume_counters_and_prepend_the_base() {
        let base = vec![LedgerEntry {
            label: "OsdpLaplaceL1 [recovered x4]".into(),
            policy: "P90".into(),
            epsilon: 2.0,
            guarantee: PrivacyGuarantee::OneSided,
        }];
        // 4 collapsed releases (indices 0..4), 2.0 ε = 2e12 units.
        let log = AuditLog::recovered(4, 0, 2_000_000_000_000, base);
        assert_eq!(log.len(), 4);
        assert_eq!(log.total_epsilon_units(), 2_000_000_000_000);
        // Replay a tail record with its logged debit: counters advance by
        // the stored integers, not a re-derived float.
        log.restore(record(4, 1), 500_000_000_000);
        assert_eq!(log.len(), 5);
        assert_eq!(log.total_epsilon_units(), 2_500_000_000_000);
        // Live appends continue the index sequence after the tail.
        let next = log.append_next(|index| record(index, 1));
        assert_eq!(next, 5);
        // The ledger view: base entry first, then tail + live records.
        let ledger = log.ledger();
        assert_eq!(ledger.len(), 3);
        assert!(ledger[0].label.contains("recovered"));
        assert_eq!(ledger[1].epsilon, 0.5);
        // records() holds only the replayed + live records, not the base.
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn scratch_buffer_snapshots_match_the_allocating_ones() {
        let log = AuditLog::new();
        for trials in 1..=3 {
            log.append_next(|index| record(index, trials));
        }
        let mut scratch = Vec::new();
        log.records_into(&mut scratch);
        assert_eq!(scratch, log.records());
        let held = scratch.capacity();
        assert_eq!(log.ledger_with(&mut scratch), log.ledger());
        assert!(scratch.capacity() >= held, "capacity is reused, not dropped");
        // This thread appended every record into one shard.
        let lens = log.shard_lens();
        assert_eq!(lens.len(), 16);
        assert_eq!(lens.iter().sum::<usize>(), 3);
        assert_eq!(lens.iter().filter(|&&n| n > 0).count(), 1);
    }

    #[test]
    fn version_stamps_are_monotone_under_racing_bumps() {
        use std::sync::Arc;
        // 8 appender threads race 4 version bumps: stamped versions must be
        // monotone in index order, and every bump's boundary must split the
        // stamps exactly (index < boundary → version < bumped version).
        let log = Arc::new(AuditLog::new());
        let appenders: Vec<_> = (0..8)
            .map(|_| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..64 {
                        log.append_versioned(|index, version| {
                            let mut r = record(index, 1);
                            r.policy_version = version;
                            r
                        });
                    }
                })
            })
            .collect();
        let bumper = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                (0..4)
                    .map(|_| {
                        std::thread::yield_now();
                        log.bump_version().unwrap()
                    })
                    .collect::<Vec<_>>()
            })
        };
        for h in appenders {
            h.join().unwrap();
        }
        let bumps = bumper.join().unwrap();
        assert_eq!(log.current_version(), 4);
        assert_eq!(log.len(), 512);
        let records = log.records();
        for pair in records.windows(2) {
            assert!(
                pair[0].policy_version <= pair[1].policy_version,
                "stamps monotone in index order"
            );
        }
        for &(version, boundary) in &bumps {
            for r in &records {
                if r.index < boundary {
                    assert!(r.policy_version < version, "pre-boundary index stamped earlier");
                } else {
                    assert!(r.policy_version >= version, "post-boundary index stamped later");
                }
            }
        }
        // Indices stayed dense despite the interleaved version bumps.
        let indices: Vec<u64> = records.iter().map(|r| r.index).collect();
        assert_eq!(indices, (0..512).collect::<Vec<u64>>());
    }

    #[test]
    fn version_space_exhaustion_is_an_error_not_index_corruption() {
        let log = AuditLog::recovered(7, MAX_VERSION, 0, Vec::new());
        assert_eq!(log.current_version(), MAX_VERSION);
        assert!(log.bump_version().is_err());
        assert_eq!(log.len(), 7, "failed bump leaves the index bits untouched");
        assert_eq!(log.current_version(), MAX_VERSION);
    }

    #[test]
    fn log_appends_and_snapshots() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        log.append(record(0, 1));
        log.append(record(1, 3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[1].trials, 3);
        assert_eq!(log.ledger().len(), 2);
        let json = log.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"OsdpLaplaceL1\""));
        assert!(json.contains("\"trials\": 3"));
        assert!(json.ends_with(']'));
    }
}
