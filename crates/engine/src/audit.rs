//! The session audit log: one record per release, with a ledger view
//! consumable by `osdp_attack::verify_ledger`.

use osdp_core::budget::LedgerEntry;
use osdp_core::Guarantee;
use osdp_metrics::{json_number, json_string};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One audited release.
///
/// The three label fields are shared `Arc<str>`s interned by the session:
/// appending a record to the log costs three reference-count increments, not
/// three string allocations, which matters in the trial-batch hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Monotone release index within the session.
    pub index: u64,
    /// Mechanism display name.
    pub mechanism: Arc<str>,
    /// Label of the policy the release was evaluated under.
    pub policy: Arc<str>,
    /// Label of the query answered.
    pub query: Arc<str>,
    /// Number of histogram bins released (0 for record-sample releases).
    pub bins: usize,
    /// Number of trials in the batch (1 for single releases).
    pub trials: usize,
    /// The guarantee of **one** trial; the batch costs
    /// `trials × guarantee.epsilon()` under sequential composition.
    pub guarantee: Guarantee,
}

impl AuditRecord {
    /// Total epsilon debited for this record (sequential composition over the
    /// batch, Theorem 3.3).
    pub fn total_epsilon(&self) -> f64 {
        self.guarantee.epsilon() * self.trials as f64
    }

    /// The ledger view of this record, in the shape
    /// `osdp_attack::verify_ledger` consumes.
    pub fn to_ledger_entry(&self) -> LedgerEntry {
        LedgerEntry {
            label: if self.trials > 1 {
                format!("{} x{}", self.mechanism, self.trials)
            } else {
                self.mechanism.to_string()
            },
            policy: self.policy.to_string(),
            epsilon: self.total_epsilon(),
            guarantee: self.guarantee.kind(),
        }
    }

    /// One JSON object describing the record.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"index\": {}, \"mechanism\": {}, \"policy\": {}, \"query\": {}, \
             \"bins\": {}, \"trials\": {}, \"guarantee\": {}, \"epsilon\": {}}}",
            self.index,
            json_string(&self.mechanism),
            json_string(&self.policy),
            json_string(&self.query),
            self.bins,
            self.trials,
            json_string(self.guarantee.label()),
            json_number(self.guarantee.epsilon()),
        )
    }
}

/// A thread-safe, append-only log of audited releases.
#[derive(Debug, Default)]
pub struct AuditLog {
    records: Mutex<Vec<AuditRecord>>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn append(&self, record: AuditRecord) {
        self.records.lock().push(record);
    }

    /// Allocates the next monotone release index and appends the record built
    /// from it, atomically: concurrent sessions threads can never interleave
    /// index allocation and append, so the log stays in release order.
    pub fn append_next(&self, make: impl FnOnce(u64) -> AuditRecord) -> u64 {
        let mut records = self.records.lock();
        let index = records.len() as u64;
        records.push(make(index));
        index
    }

    /// A snapshot of all records, in release order.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.records.lock().clone()
    }

    /// Number of audited releases.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// The ledger view of the whole log (one entry per audited release),
    /// consumable by `osdp_attack::verify_ledger`.
    pub fn ledger(&self) -> Vec<LedgerEntry> {
        self.records.lock().iter().map(AuditRecord::to_ledger_entry).collect()
    }

    /// The log as a JSON array.
    pub fn to_json(&self) -> String {
        let records = self.records.lock();
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&r.to_json());
            out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdp_core::PrivacyGuarantee;

    fn record(index: u64, trials: usize) -> AuditRecord {
        AuditRecord {
            index,
            mechanism: "OsdpLaplaceL1".into(),
            policy: "P90".into(),
            query: "bound".into(),
            bins: 16,
            trials,
            guarantee: Guarantee::Osdp { eps: 0.5 },
        }
    }

    #[test]
    fn ledger_view_scales_epsilon_by_trials() {
        let single = record(0, 1).to_ledger_entry();
        assert_eq!(single.label, "OsdpLaplaceL1");
        assert_eq!(single.epsilon, 0.5);
        assert_eq!(single.guarantee, PrivacyGuarantee::OneSided);

        let batch = record(1, 10).to_ledger_entry();
        assert_eq!(batch.label, "OsdpLaplaceL1 x10");
        assert!((batch.epsilon - 5.0).abs() < 1e-12);
    }

    #[test]
    fn log_appends_and_snapshots() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        log.append(record(0, 1));
        log.append(record(1, 3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[1].trials, 3);
        assert_eq!(log.ledger().len(), 2);
        let json = log.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"OsdpLaplaceL1\""));
        assert!(json.contains("\"trials\": 3"));
        assert!(json.ends_with(']'));
    }
}
