//! The streaming release plane: continual observation over windowed event
//! streams.
//!
//! The one-shot [`OsdpSession`] answers a histogram query over a database
//! fixed at construction. The paper's flagship workload — TIPPERS occupancy
//! over trajectory streams — is naturally *continual*: counts arrive per
//! time window (one day of trajectories, one batch of events) and each
//! released window debits budget. [`StreamSession`] is the incremental
//! path:
//!
//! * a [`WindowSource`] yields [`Window`]s of records (any iterator of
//!   windows is a source — the TIPPERS adapter in `osdp-data` yields
//!   per-day occupancy databases; [`SyntheticWindows`] generates seeded
//!   synthetic traffic);
//! * every ingested window is scanned through the **existing backend scan
//!   path** (a [`RowBackend`] over the window's rows behind the session's
//!   bound [`Backend`]), so the policy-derived `(x, x_ns)` pair can never
//!   drift from the one-shot plane's;
//! * releases flow through the wrapped session's lock-free
//!   `BudgetAccountant`, sharded `AuditLog` (the window index is stamped
//!   into the release label, `"<query>@w<index>"`), `TaskCache` and
//!   deterministic RNG streams — which is what makes the serial one-shot
//!   path a **bitwise oracle**: streaming `T` windows produces exactly the
//!   estimates, ledger and audit totals that releasing the same `T` window
//!   tasks one-shot through an `OsdpSession` produces (property-tested in
//!   `tests/stream_parity.rs`);
//! * per-window ε debits are governed by a
//!   [`StreamBudget`] policy: fixed-per-window
//!   (sequential composition), sliding-window-of-`W` (w-event continual
//!   observation), or binary-tree aggregation
//!   ([`StreamSession::range_query`]) where a range over `T` windows
//!   debits `O(log T)` node releases instead of `O(T)` window releases.
//!
//! # One epoch per window
//!
//! When the wrapped session carries a **versioned policy lifecycle**
//! ([`OsdpSession::set_policy_epoch`]), each window release uses exactly
//! one well-defined epoch: the release path captures the current epoch
//! once, derives the window's task under it, and the audit stamp
//! re-derives under the stamped version if a transition raced the grant —
//! so a window released mid-transition is attributed entirely to the epoch
//! in force at its audit sequence number, never a blend of two. The two
//! planes differ only in *retention*:
//!
//! * **Fixed / sliding budgets** hold no policy-derived state across
//!   windows — every `ingest` scans fresh (the window swap invalidates the
//!   task cache anyway), so a transition between windows simply means the
//!   next window derives and stamps under the new epoch.
//! * **Hierarchical budgets** retain per-window leaf tasks for later
//!   dyadic node aggregation. A leaf is derived under the epoch current at
//!   *ingestion* time; a later [`StreamSession::range_query`] releases
//!   node aggregates through [`OsdpSession::release_task`], which stamps
//!   the epoch in force at release time. The stamp is honest about *when*
//!   the release happened; the ledger's stale-policy check
//!   ([`OsdpSession::verify_policy_lifecycle`]) therefore holds, but
//!   callers who tighten a policy mid-stream and need retained leaves
//!   re-derived under the tightened epoch must re-ingest those windows —
//!   the tree does not retro-actively re-scan history it has already
//!   buffered.

use crate::backend::{Backend, HistogramPair, QueryPlan, RowBackend};
use crate::session::{OsdpSession, PoolRelease, Release, SessionBuilder, SessionQuery};
use osdp_core::budget::{dyadic_decomposition, epsilon_to_units, StreamBudget, StreamBudgetState};
use osdp_core::error::{OsdpError, Result};
use osdp_core::policy::Policy;
use osdp_core::{Database, Histogram, Record, Value};
use osdp_mechanisms::{HistogramMechanism, HistogramTask};
use parking_lot::RwLock;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// One window of a record stream: a dense, strictly increasing index and
/// the records observed in that window.
#[derive(Debug, Clone)]
pub struct Window<R = Record> {
    /// The window's position in the stream (0-based; [`StreamSession`]
    /// requires windows to arrive in order, densely).
    pub index: u64,
    /// The records observed during the window.
    pub rows: Database<R>,
}

/// A source of stream windows. Any iterator of [`Window`]s is a source, so
/// adapters only need to yield windows — see
/// [`windows_from_databases`] for wrapping per-window databases (the shape
/// the TIPPERS trajectory adapter in `osdp-data` produces).
pub trait WindowSource<R = Record> {
    /// The next window, or `None` when the stream is (currently) exhausted.
    fn next_window(&mut self) -> Option<Window<R>>;
}

impl<R, I> WindowSource<R> for I
where
    I: Iterator<Item = Window<R>>,
{
    fn next_window(&mut self) -> Option<Window<R>> {
        self.next()
    }
}

/// Wraps an ordered sequence of per-window databases into a
/// [`WindowSource`], assigning dense indices from 0 — the adapter for
/// loaders that split a dataset by time (e.g.
/// `TrajectoryDataset::occupancy_day_windows` in `osdp-data`).
pub fn windows_from_databases<R>(
    databases: impl IntoIterator<Item = Database<R>>,
) -> impl WindowSource<R> {
    databases.into_iter().enumerate().map(|(index, rows)| Window { index: index as u64, rows })
}

/// Field name of the synthetic stream's single integer attribute.
pub const SYNTHETIC_FIELD: &str = "v";

/// A deterministic synthetic window generator: each window carries
/// `rows_per_window` records whose [`SYNTHETIC_FIELD`] value is drawn from
/// `0..domain` with a slowly drifting bias, so consecutive windows are
/// correlated the way real occupancy streams are. Seeded — the same
/// configuration always yields the same stream (bench + test harness
/// traffic).
#[derive(Debug)]
pub struct SyntheticWindows {
    remaining: u64,
    next_index: u64,
    rows_per_window: usize,
    domain: i64,
    rng: ChaCha12Rng,
}

impl SyntheticWindows {
    /// A stream of `windows` windows of `rows_per_window` records over
    /// values `0..domain`.
    pub fn new(seed: u64, windows: u64, rows_per_window: usize, domain: i64) -> Self {
        Self {
            remaining: windows,
            next_index: 0,
            rows_per_window,
            domain: domain.max(1),
            rng: ChaCha12Rng::seed_from_u64(seed),
        }
    }
}

impl WindowSource<Record> for SyntheticWindows {
    fn next_window(&mut self) -> Option<Window<Record>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let index = self.next_index;
        self.next_index += 1;
        // A per-window bias anchor makes neighbouring windows correlated.
        let anchor = self.rng.gen_range(0..self.domain);
        let rows: Database<Record> = (0..self.rows_per_window)
            .map(|_| {
                let v = if self.rng.gen::<f64>() < 0.5 {
                    anchor
                } else {
                    self.rng.gen_range(0..self.domain)
                };
                Record::builder().field(SYNTHETIC_FIELD, Value::Int(v)).build()
            })
            .collect();
        Some(Window { index, rows })
    }
}

/// The swappable scan target behind a [`StreamSession`]: a [`Backend`]
/// holding only the **current** window's rows. Ingesting a window swaps a
/// fresh `RowBackend` in; the wrapped session scans through this backend
/// like any other, so the windowed plane reuses the one-shot scan path
/// verbatim.
struct StreamBackend<R> {
    current: RwLock<Arc<RowBackend<R>>>,
}

impl<R> StreamBackend<R> {
    fn empty() -> Self {
        Self { current: RwLock::new(Arc::new(RowBackend::new(Database::new()))) }
    }

    fn set_window(&self, rows: Database<R>) {
        *self.current.write() = Arc::new(RowBackend::new(rows));
    }
}

impl<R: Send + Sync> Backend<R> for StreamBackend<R> {
    fn name(&self) -> &'static str {
        "stream-window"
    }

    fn len(&self) -> usize {
        let current = self.current.read();
        Backend::len(&**current)
    }

    fn scan(&self, plan: &QueryPlan<R>) -> Result<HistogramPair> {
        let current = Arc::clone(&self.current.read());
        current.scan(plan)
    }
}

/// The outcome of ingesting one window.
#[derive(Debug, Clone)]
pub enum WindowOutcome {
    /// The window's histogram was released (fixed-per-window and
    /// sliding-window budgets).
    Released(Release),
    /// The window was buffered into the dyadic tree without debiting
    /// (hierarchical budgets release lazily through
    /// [`StreamSession::range_query`]).
    Buffered {
        /// The buffered window's index.
        window: u64,
    },
    /// The sliding-window frame could not cover the release: the window
    /// passed unreleased (and the frame slid by one), keeping the stream
    /// continual instead of aborting it.
    Refused {
        /// The refused window's index.
        window: u64,
        /// The ε the release would have debited.
        requested: f64,
    },
}

impl WindowOutcome {
    /// The released estimate, if this window produced one.
    pub fn release(&self) -> Option<&Release> {
        match self {
            WindowOutcome::Released(release) => Some(release),
            _ => None,
        }
    }
}

/// The outcome of ingesting one window through a mechanism pool
/// ([`StreamSession::ingest_pool`]).
#[derive(Debug, Clone)]
pub enum PoolWindowOutcome {
    /// The whole pool batch was released for this window.
    Released(Vec<PoolRelease>),
    /// The sliding-window frame could not cover the pool batch: the window
    /// passed unreleased and the frame slid by one.
    Refused {
        /// The refused window's index.
        window: u64,
        /// The pool batch's total ε (`Σ εᵢ × trials`).
        requested: f64,
    },
}

impl PoolWindowOutcome {
    /// The released pool batch, if this window produced one.
    pub fn releases(&self) -> Option<&[PoolRelease]> {
        match self {
            PoolWindowOutcome::Released(releases) => Some(releases),
            PoolWindowOutcome::Refused { .. } => None,
        }
    }
}

/// Builder for [`StreamSession`] — mirrors [`SessionBuilder`], plus the
/// windowed query and the [`StreamBudget`] policy.
pub struct StreamSessionBuilder<R = Record> {
    label: String,
    bins: usize,
    #[allow(clippy::type_complexity)]
    bin_of: Arc<dyn Fn(&R) -> Option<usize> + Send + Sync>,
    policy: Option<Arc<dyn Policy<R>>>,
    policy_label: Option<String>,
    budget: Option<f64>,
    seed: u64,
    stream_budget: StreamBudget,
}

impl<R> StreamSessionBuilder<R> {
    /// Starts a stream whose windows are released as `bins`-bin histograms
    /// of `bin_of` (the per-record bin assignment applied inside each
    /// window), audited under `label`.
    pub fn new(
        label: impl Into<String>,
        bins: usize,
        bin_of: impl Fn(&R) -> Option<usize> + Send + Sync + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            bins,
            bin_of: Arc::new(bin_of),
            policy: None,
            policy_label: None,
            budget: None,
            seed: 0,
            stream_budget: StreamBudget::PerWindow,
        }
    }

    /// Binds the policy function and its report label (required).
    pub fn policy(mut self, policy: impl Policy<R> + 'static, label: impl Into<String>) -> Self {
        self.policy = Some(Arc::new(policy));
        self.policy_label = Some(label.into());
        self
    }

    /// Binds an already-shared policy function.
    pub fn policy_arc(mut self, policy: Arc<dyn Policy<R>>, label: impl Into<String>) -> Self {
        self.policy = Some(policy);
        self.policy_label = Some(label.into());
        self
    }

    /// Caps the wrapped session's total budget (every stream debit counts
    /// against it, whatever the stream budget policy).
    pub fn budget(mut self, epsilon: f64) -> Self {
        self.budget = Some(epsilon);
        self
    }

    /// Sets the root seed of the deterministic RNG streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the continual-observation budgeting policy (default:
    /// [`StreamBudget::PerWindow`]).
    pub fn stream_budget(mut self, budget: StreamBudget) -> Self {
        self.stream_budget = budget;
        self
    }

    /// Builds the stream session.
    pub fn build(self) -> Result<StreamSession<R>>
    where
        R: Send + Sync + 'static,
    {
        if self.bins == 0 {
            return Err(OsdpError::InvalidInput("a stream query needs bins >= 1".into()));
        }
        let policy = self.policy.ok_or_else(|| {
            OsdpError::InvalidInput(
                "a stream session needs a policy: call StreamSessionBuilder::policy".into(),
            )
        })?;
        let state = StreamBudgetState::new(self.stream_budget)?;
        let backend = Arc::new(StreamBackend::empty());
        let mut builder = SessionBuilder::with_backend(Arc::clone(&backend) as Arc<dyn Backend<R>>)
            .policy_arc(policy, self.policy_label.unwrap_or_else(|| "P".to_string()))
            .seed(self.seed);
        if let Some(limit) = self.budget {
            builder = builder.budget(limit);
        }
        Ok(StreamSession {
            session: builder.build()?,
            backend,
            label: self.label,
            bins: self.bins,
            bin_of: self.bin_of,
            state,
            next_index: 0,
            leaves: Vec::new(),
            nodes: HashMap::new(),
            node_mechanism: None,
        })
    }
}

/// An incremental release session over a windowed record stream (see the
/// module docs for the model). Wraps an [`OsdpSession`] — accountant, audit
/// log, task cache and RNG streams are the one-shot plane's, shared across
/// every window.
pub struct StreamSession<R = Record> {
    session: OsdpSession<R>,
    backend: Arc<StreamBackend<R>>,
    label: String,
    bins: usize,
    #[allow(clippy::type_complexity)]
    bin_of: Arc<dyn Fn(&R) -> Option<usize> + Send + Sync>,
    state: StreamBudgetState,
    next_index: u64,
    /// Per-window policy-derived tasks, retained for hierarchical node
    /// aggregation (empty under the other budgets). `O(T · bins)` memory —
    /// the price of answering arbitrary past ranges lazily.
    leaves: Vec<Arc<HistogramTask>>,
    /// Released dyadic nodes: `(level, position) → estimate`. A node is
    /// debited at most once; repeated range queries reuse the estimate at
    /// zero marginal ε (post-processing).
    nodes: HashMap<(u32, u64), Arc<Histogram>>,
    /// The mechanism name the dyadic tree is bound to, set by the first
    /// node release. Cached node estimates were sampled under this
    /// mechanism, so a range query with a *different* mechanism is refused
    /// instead of silently served another mechanism's noise.
    node_mechanism: Option<String>,
}

impl<R> std::fmt::Debug for StreamSession<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("label", &self.label)
            .field("windows", &self.next_index)
            .field("budget", self.state.budget())
            .field("spent", &self.session.total_spent())
            .finish()
    }
}

impl<R: Send + Sync + 'static> StreamSession<R> {
    /// Shorthand for [`StreamSessionBuilder::new`].
    pub fn builder(
        label: impl Into<String>,
        bins: usize,
        bin_of: impl Fn(&R) -> Option<usize> + Send + Sync + 'static,
    ) -> StreamSessionBuilder<R> {
        StreamSessionBuilder::new(label, bins, bin_of)
    }

    /// The wrapped one-shot session: audit log, accountant, composed
    /// guarantee — everything the serving plane exposes.
    pub fn session(&self) -> &OsdpSession<R> {
        &self.session
    }

    /// Number of windows ingested so far (the next expected index).
    pub fn windows_ingested(&self) -> u64 {
        self.next_index
    }

    /// The stream budget policy.
    pub fn stream_budget(&self) -> &StreamBudget {
        self.state.budget()
    }

    /// ε debited across the retained sliding frame (0 for other budgets).
    pub fn frame_spent(&self) -> f64 {
        self.state.frame_spent()
    }

    /// The windowed query of window `index`: the stream's bin assignment
    /// under a window-stamped audit label. The bin closure `Arc` is shared
    /// across windows — safe because every window swap invalidates the
    /// session's task cache (see `begin_window`), so a cache entry never
    /// outlives the window it was derived from, while repeated releases
    /// *within* a window still scan once.
    fn windowed_query(&self, index: u64) -> SessionQuery<R> {
        SessionQuery::CountBy {
            label: format!("{}@w{index}", self.label),
            bins: self.bins,
            bin_of: Arc::clone(&self.bin_of),
            spec: None,
        }
    }

    /// Ingests the next window and (for fixed-per-window and sliding-window
    /// budgets) releases its histogram through `mechanism`; hierarchical
    /// budgets buffer the window's policy-derived task and debit lazily in
    /// [`StreamSession::range_query`].
    ///
    /// Windows must arrive densely in index order. A sliding-window refusal
    /// is returned as [`WindowOutcome::Refused`] — the window passes
    /// unreleased and the stream continues; a wrapped-session budget
    /// refusal (`OsdpError::BudgetExhausted`) is an error, like the
    /// one-shot plane's.
    pub fn ingest(
        &mut self,
        window: Window<R>,
        mechanism: &dyn HistogramMechanism,
    ) -> Result<WindowOutcome> {
        let index = window.index;
        self.begin_window(window)?;
        if matches!(self.state.budget(), StreamBudget::Hierarchical { .. }) {
            let query = self.windowed_query(index);
            let task = Arc::new(self.session.scan(&query)?.into_task()?);
            self.leaves.push(task);
            self.next_index += 1;
            return Ok(WindowOutcome::Buffered { window: index });
        }
        let cost = mechanism.guarantee().epsilon();
        if !self.state.would_admit(cost) {
            self.state.advance(0.0);
            self.next_index += 1;
            return Ok(WindowOutcome::Refused { window: index, requested: cost });
        }
        let query = self.windowed_query(index);
        match self.session.release(&query, mechanism) {
            Ok(release) => {
                self.state.advance(cost);
                self.next_index += 1;
                Ok(WindowOutcome::Released(release))
            }
            Err(err) => {
                // The wrapped session refused (or the scan failed): the
                // window still passes so the stream index stays dense.
                self.state.advance(0.0);
                self.next_index += 1;
                Err(err)
            }
        }
    }

    /// Ingests the next window and releases it through a whole **mechanism
    /// pool** ([`OsdpSession::release_pool`]: one scan, one all-or-nothing
    /// grant, one fan-out — the streaming form of the pool experiments).
    /// The window's stream-budget cost is the pool total
    /// `Σ εᵢ × trials`. Not available under hierarchical budgets.
    ///
    /// Sliding-frame refusals mirror [`StreamSession::ingest`]: the window
    /// passes unreleased as [`PoolWindowOutcome::Refused`] (the stream
    /// continues; a later frame may admit the pool again), while a wrapped
    /// accountant-cap refusal is an error like the one-shot plane's.
    pub fn ingest_pool(
        &mut self,
        window: Window<R>,
        pool: &[&dyn HistogramMechanism],
        trials: usize,
    ) -> Result<PoolWindowOutcome> {
        if matches!(self.state.budget(), StreamBudget::Hierarchical { .. }) {
            return Err(OsdpError::InvalidInput(
                "hierarchical stream budgets release through range_query, not per-window pools"
                    .into(),
            ));
        }
        let index = window.index;
        self.begin_window(window)?;
        let cost: f64 = pool.iter().map(|m| m.guarantee().epsilon() * trials as f64).sum();
        // Frame accounting in units, summed per mechanism exactly as the
        // accountant's spend_batch sums its debits — the ceiling conversion
        // is subadditive, so converting the float sum once would record
        // fewer units than the grant path debits.
        let cost_units = pool.iter().fold(0u64, |units, m| {
            units.saturating_add(epsilon_to_units(m.guarantee().epsilon() * trials as f64))
        });
        if !self.state.would_admit_units(cost_units) {
            self.state.advance(0.0);
            self.next_index += 1;
            return Ok(PoolWindowOutcome::Refused { window: index, requested: cost });
        }
        let query = self.windowed_query(index);
        match self.session.release_pool(&query, pool, trials) {
            Ok(releases) => {
                self.state.advance_units(cost_units);
                self.next_index += 1;
                Ok(PoolWindowOutcome::Released(releases))
            }
            Err(err) => {
                self.state.advance(0.0);
                self.next_index += 1;
                Err(err)
            }
        }
    }

    /// Drains `source`, ingesting every window through `mechanism`.
    /// Sliding-window refusals land in the outcome list; other errors
    /// abort.
    pub fn ingest_from(
        &mut self,
        source: &mut dyn WindowSource<R>,
        mechanism: &dyn HistogramMechanism,
    ) -> Result<Vec<WindowOutcome>> {
        let mut outcomes = Vec::new();
        while let Some(window) = source.next_window() {
            outcomes.push(self.ingest(window, mechanism)?);
        }
        Ok(outcomes)
    }

    /// Answers a **range-over-time** query under a hierarchical stream
    /// budget: the total histogram of windows `[range.start, range.end)`,
    /// assembled from dyadic node releases. Nodes are released lazily at
    /// most once — a range over `T` windows touches `O(log T)` nodes
    /// ([`dyadic_decomposition`]), so it debits `O(log T) · ε` instead of
    /// the `O(T) · ε` that summing per-window releases would cost, and a
    /// repeated query reuses every node at zero marginal ε
    /// (post-processing). The tree binds to the mechanism of its first
    /// node release: later range queries must pass the same mechanism
    /// (cached nodes carry its noise), or they are refused.
    pub fn range_query(
        &mut self,
        range: std::ops::Range<u64>,
        mechanism: &dyn HistogramMechanism,
    ) -> Result<Histogram> {
        let StreamBudget::Hierarchical { levels } = *self.state.budget() else {
            return Err(OsdpError::InvalidInput(
                "range_query needs a StreamBudget::Hierarchical stream session".into(),
            ));
        };
        if range.start >= range.end || range.end > self.next_index {
            return Err(OsdpError::InvalidInput(format!(
                "range {}..{} out of bounds for {} ingested windows",
                range.start, range.end, self.next_index
            )));
        }
        // The tree is bound to one mechanism: cached node estimates were
        // sampled under it, and a different mechanism must not be served
        // another mechanism's noise (nor silently skip its own debit).
        match &self.node_mechanism {
            None => self.node_mechanism = Some(mechanism.name().to_string()),
            Some(bound) if bound != mechanism.name() => {
                return Err(OsdpError::InvalidInput(format!(
                    "this stream's dyadic tree is bound to mechanism '{bound}' by its first                      node release; range_query with '{}' would reuse node estimates sampled                      under the wrong mechanism",
                    mechanism.name()
                )));
            }
            Some(_) => {}
        }
        let mut total = Histogram::zeros(self.bins);
        for (level, position) in dyadic_decomposition(range, levels) {
            let estimate = self.node_estimate(level, position, mechanism)?;
            total = total.add(&estimate)?;
        }
        Ok(total)
    }

    /// Number of dyadic nodes released so far (hierarchical budgets).
    pub fn released_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The cached-or-released estimate of node `(level, position)`.
    fn node_estimate(
        &mut self,
        level: u32,
        position: u64,
        mechanism: &dyn HistogramMechanism,
    ) -> Result<Arc<Histogram>> {
        if let Some(estimate) = self.nodes.get(&(level, position)) {
            return Ok(Arc::clone(estimate));
        }
        // Aggregate the node's leaf tasks: summing (x, x_ns) pairs
        // preserves bin-wise domination, which HistogramTask::new
        // re-validates.
        let start = (position << level) as usize;
        let end = start + (1usize << level);
        let mut full = Histogram::zeros(self.bins);
        let mut non_sensitive = Histogram::zeros(self.bins);
        for leaf in &self.leaves[start..end] {
            full = full.add(leaf.full())?;
            non_sensitive = non_sensitive.add(leaf.non_sensitive())?;
        }
        let task = HistogramTask::new(full, non_sensitive)?;
        let label = format!("{}@L{level}#{position}", self.label);
        let release = self.session.release_task(&label, &task, mechanism)?;
        let estimate = Arc::new(release.estimate);
        self.nodes.insert((level, position), Arc::clone(&estimate));
        Ok(estimate)
    }

    /// Validates the window's index and swaps its rows into the scan
    /// backend.
    fn begin_window(&mut self, window: Window<R>) -> Result<()> {
        if window.index != self.next_index {
            return Err(OsdpError::InvalidInput(format!(
                "stream windows must arrive densely in order: expected window {}, got {}",
                self.next_index, window.index
            )));
        }
        self.backend.set_window(window.rows);
        // The task cache assumes backend data is immutable; the swap above
        // is exactly the mutation that assumption forbids, so invalidate at
        // the swap point. Without this, a caller reusing one query value
        // across [`StreamSession::session`] releases would be served the
        // previous window's task.
        self.session.invalidate_task_cache();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdp_core::policy::AttributePolicy;
    use osdp_mechanisms::OsdpLaplaceL1;

    fn record(v: i64) -> Record {
        Record::builder().field(SYNTHETIC_FIELD, Value::Int(v)).build()
    }

    fn window(index: u64, values: &[i64]) -> Window<Record> {
        Window { index, rows: values.iter().map(|&v| record(v)).collect() }
    }

    fn stream_builder() -> StreamSessionBuilder<Record> {
        StreamSession::builder("occ", 4, |r: &Record| {
            r.int(SYNTHETIC_FIELD).ok().map(|v| (v as usize).min(3))
        })
        .policy(AttributePolicy::int_at_most(SYNTHETIC_FIELD, 1), "low-sensitive")
        .seed(7)
    }

    #[test]
    fn per_window_streaming_debits_sequentially_and_stamps_labels() {
        let mut stream = stream_builder().build().unwrap();
        let mechanism = OsdpLaplaceL1::new(0.5).unwrap();
        for i in 0..3u64 {
            let outcome = stream.ingest(window(i, &[0, 1, 2, 3, 2]), &mechanism).unwrap();
            let release = outcome.release().expect("per-window budgets release every window");
            assert_eq!(release.index, i);
            assert_eq!(release.estimate.len(), 4);
        }
        assert_eq!(stream.windows_ingested(), 3);
        let session = stream.session();
        assert!((session.total_spent() - 1.5).abs() < 1e-12);
        let audit = session.audit_records();
        assert_eq!(audit.len(), 3);
        for (i, record) in audit.iter().enumerate() {
            assert_eq!(&*record.query, &format!("occ@w{i}"), "window index stamped");
        }
        // Bit-for-bit: audited total == accountant total.
        assert_eq!(session.audit_total_epsilon(), session.total_spent());
    }

    #[test]
    fn window_swaps_never_serve_stale_cached_tasks() {
        // A caller reusing ONE query value directly on the wrapped session
        // across ingests must see each window's own data: the swap point
        // invalidates the task cache, so the cache can never serve window
        // 0's task for window 1.
        let mut stream = stream_builder().build().unwrap();
        let mechanism = OsdpLaplaceL1::new(0.5).unwrap();
        let reused = SessionQuery::count_by("probe", 4, |r: &Record| {
            r.int(SYNTHETIC_FIELD).ok().map(|v| (v as usize).min(3))
        });
        stream.ingest(window(0, &[0, 0, 0]), &mechanism).unwrap();
        let first = stream.session().derive_task(&reused).unwrap();
        assert_eq!(first.full().counts(), &[3.0, 0.0, 0.0, 0.0]);
        stream.ingest(window(1, &[3, 3]), &mechanism).unwrap();
        let second = stream.session().derive_task(&reused).unwrap();
        assert_eq!(
            second.full().counts(),
            &[0.0, 0.0, 0.0, 2.0],
            "the reused query must re-derive against the new window, not hit a stale entry"
        );
    }

    #[test]
    fn sliding_pool_refusals_pass_windows_through() {
        // Pool batches under a sliding frame behave like single releases:
        // a refusal is an outcome, not an error, and the stream recovers
        // once the frame slides.
        let mut stream = stream_builder()
            .stream_budget(StreamBudget::SlidingWindow { epsilon: 0.5, window: 2 })
            .build()
            .unwrap();
        let a = OsdpLaplaceL1::new(0.125).unwrap();
        let b = OsdpLaplaceL1::new(0.125).unwrap();
        let pool: Vec<&dyn HistogramMechanism> = vec![&a, &b];
        // Cost per window: (0.125 + 0.125) x 2 trials = 0.5 = the frame cap.
        let mut pattern = Vec::new();
        for i in 0..4u64 {
            match stream.ingest_pool(window(i, &[0, 3]), &pool, 2).unwrap() {
                PoolWindowOutcome::Released(releases) => {
                    assert_eq!(releases.len(), 2);
                    pattern.push(true);
                }
                PoolWindowOutcome::Refused { requested, .. } => {
                    assert!((requested - 0.5).abs() < 1e-12);
                    pattern.push(false);
                }
            }
        }
        assert_eq!(pattern, vec![true, false, true, false]);
        assert_eq!(stream.windows_ingested(), 4);
        assert!((stream.session().total_spent() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epoch_transition_between_windows_restamps_subsequent_releases() {
        use osdp_core::policy::EpochDirection;
        // A policy transition between windows means every later window is
        // derived and stamped under the new epoch — each window release
        // uses exactly one epoch, and the versioned ledger check accepts
        // the whole history.
        let mut stream = stream_builder().build().unwrap();
        let mechanism = OsdpLaplaceL1::new(0.5).unwrap();
        stream.ingest(window(0, &[0, 1, 2, 3]), &mechanism).unwrap();
        let transition = stream
            .session()
            .set_policy_epoch(
                Arc::new(AttributePolicy::int_at_most(SYNTHETIC_FIELD, 0)),
                "tightened",
                EpochDirection::Tighten,
            )
            .unwrap();
        assert_eq!(transition.version, 1);
        stream.ingest(window(1, &[0, 1, 2, 3]), &mechanism).unwrap();
        stream.ingest(window(2, &[0, 1, 2, 3]), &mechanism).unwrap();
        let audit = stream.session().audit_records();
        let stamps: Vec<(u64, u64, String)> =
            audit.iter().map(|r| (r.index, r.policy_version, r.policy.to_string())).collect();
        assert_eq!(
            stamps,
            vec![
                (0, 0, "low-sensitive".into()),
                (1, 1, "tightened".into()),
                (2, 1, "tightened".into()),
            ],
            "windows before the transition carry epoch 0, windows after carry epoch 1"
        );
        let verdict = stream.session().verify_policy_lifecycle(None);
        assert!(verdict.upholds_osdp(), "honest mid-stream transition must verify clean");
    }

    #[test]
    fn hierarchical_node_releases_stamp_the_epoch_in_force_at_release_time() {
        use osdp_core::policy::EpochDirection;
        // Leaves buffered under epoch 0, tree nodes released after a
        // tighten: the node release is an event under the *new* epoch and
        // must be stamped as such (the stamp records when the release
        // happened, not when the leaves were ingested).
        let mut stream = stream_builder()
            .stream_budget(StreamBudget::Hierarchical { levels: 2 })
            .build()
            .unwrap();
        let mechanism = OsdpLaplaceL1::new(0.25).unwrap();
        for i in 0..4u64 {
            stream.ingest(window(i, &[0, 1, 2, 3]), &mechanism).unwrap();
        }
        stream
            .session()
            .set_policy_epoch(
                Arc::new(AttributePolicy::int_at_most(SYNTHETIC_FIELD, 0)),
                "tightened",
                EpochDirection::Tighten,
            )
            .unwrap();
        stream.range_query(0..4, &mechanism).unwrap();
        let audit = stream.session().audit_records();
        assert_eq!(audit.len(), 1, "aligned range 0..4 is a single node release");
        assert_eq!(audit[0].policy_version, 1);
        assert_eq!(&*audit[0].policy, "tightened");
        assert!(stream.session().verify_policy_lifecycle(None).upholds_osdp());
    }

    #[test]
    fn windows_must_arrive_densely_in_order() {
        let mut stream = stream_builder().build().unwrap();
        let mechanism = OsdpLaplaceL1::new(0.5).unwrap();
        stream.ingest(window(0, &[1]), &mechanism).unwrap();
        assert!(stream.ingest(window(2, &[1]), &mechanism).is_err());
        assert!(stream.ingest(window(0, &[1]), &mechanism).is_err());
        stream.ingest(window(1, &[1]), &mechanism).unwrap();
    }

    #[test]
    fn sliding_window_budget_refuses_then_recovers() {
        // Frame of 2 windows, cap 0.5: every other window is refused at
        // ε = 0.5 per release... actually each frame of 2 admits exactly
        // one 0.5-release, so grants alternate with refusals.
        let mut stream = stream_builder()
            .stream_budget(StreamBudget::SlidingWindow { epsilon: 0.5, window: 2 })
            .build()
            .unwrap();
        let mechanism = OsdpLaplaceL1::new(0.5).unwrap();
        let mut pattern = Vec::new();
        for i in 0..6u64 {
            match stream.ingest(window(i, &[0, 3]), &mechanism).unwrap() {
                WindowOutcome::Released(_) => pattern.push(true),
                WindowOutcome::Refused { requested, .. } => {
                    assert_eq!(requested, 0.5);
                    pattern.push(false);
                }
                WindowOutcome::Buffered { .. } => unreachable!("not hierarchical"),
            }
        }
        assert_eq!(pattern, vec![true, false, true, false, true, false]);
        // Only the granted windows debited the accountant and audit log.
        assert!((stream.session().total_spent() - 1.5).abs() < 1e-12);
        assert_eq!(stream.session().audit_len(), 3);
    }

    #[test]
    fn hierarchical_ranges_debit_log_many_nodes_and_cache_releases() {
        let mut stream = stream_builder()
            .stream_budget(StreamBudget::Hierarchical { levels: 3 })
            .build()
            .unwrap();
        let mechanism = OsdpLaplaceL1::new(0.25).unwrap();
        for i in 0..8u64 {
            let outcome = stream.ingest(window(i, &[0, 1, 2, 3]), &mechanism).unwrap();
            assert!(matches!(outcome, WindowOutcome::Buffered { window } if window == i));
        }
        // Buffering debits nothing.
        assert_eq!(stream.session().total_spent(), 0.0);
        assert_eq!(stream.session().audit_len(), 0);

        // The aligned full range is a single node: one ε debit for 8
        // windows.
        let all = stream.range_query(0..8, &mechanism).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(stream.released_nodes(), 1);
        assert!((stream.session().total_spent() - 0.25).abs() < 1e-12);

        // A mis-aligned range costs O(log T) nodes, not O(T).
        stream.range_query(1..8, &mechanism).unwrap();
        assert_eq!(stream.released_nodes(), 1 + 3, "[1,2) [2,4) [4,8)");
        // Re-asking either range is pure post-processing: no new debits.
        let spent = stream.session().total_spent();
        stream.range_query(0..8, &mechanism).unwrap();
        stream.range_query(1..8, &mechanism).unwrap();
        assert_eq!(stream.session().total_spent(), spent);

        // Out-of-range and empty ranges are refused.
        assert!(stream.range_query(0..9, &mechanism).is_err());
        assert!(stream.range_query(3..3, &mechanism).is_err());
        // Per-window APIs reject hierarchical pools.
        let pool_mech = OsdpLaplaceL1::new(0.1).unwrap();
        let pool: Vec<&dyn HistogramMechanism> = vec![&pool_mech];
        assert!(stream.ingest_pool(window(8, &[0]), &pool, 1).is_err());
    }

    #[test]
    fn hierarchical_trees_bind_to_their_first_mechanism() {
        let mut stream = stream_builder()
            .stream_budget(StreamBudget::Hierarchical { levels: 2 })
            .build()
            .unwrap();
        let first = OsdpLaplaceL1::new(0.25).unwrap();
        for i in 0..4u64 {
            stream.ingest(window(i, &[0, 1, 2, 3]), &first).unwrap();
        }
        stream.range_query(0..4, &first).unwrap();
        let spent = stream.session().total_spent();
        // A different mechanism must not be served the cached eps=0.25
        // nodes (wrong noise) nor silently skip its own debit.
        let other = osdp_mechanisms::DpLaplaceHistogram::new(1.0).unwrap();
        let err = stream.range_query(0..4, &other).unwrap_err();
        assert!(matches!(err, OsdpError::InvalidInput(_)));
        assert_eq!(stream.session().total_spent(), spent, "nothing debited");
        // The bound mechanism keeps working.
        stream.range_query(1..4, &first).unwrap();
    }

    #[test]
    fn pool_frame_accounting_sums_units_like_the_accountant() {
        // Two eps=0.1 debits cost epsilon_to_units(0.1) x 2 =
        // 200_000_000_002 units on the grant path (ceiling per entry); a
        // frame cap of 0.2 eps is only 200_000_000_001 units, so the pool
        // must be refused — converting the float sum (0.2) once would have
        // under-recorded the frame by one unit and admitted it.
        let mut stream = stream_builder()
            .stream_budget(StreamBudget::SlidingWindow { epsilon: 0.2, window: 1 })
            .build()
            .unwrap();
        let a = OsdpLaplaceL1::new(0.1).unwrap();
        let b = OsdpLaplaceL1::new(0.1).unwrap();
        let pool: Vec<&dyn HistogramMechanism> = vec![&a, &b];
        match stream.ingest_pool(window(0, &[0, 3]), &pool, 1).unwrap() {
            PoolWindowOutcome::Refused { requested, .. } => {
                assert!((requested - 0.2).abs() < 1e-12);
            }
            PoolWindowOutcome::Released(_) => {
                panic!("frame must track the accountant's per-entry unit sum")
            }
        }
        assert_eq!(stream.session().total_spent(), 0.0);
    }

    #[test]
    fn hierarchical_node_release_matches_the_one_shot_task_oracle() {
        // The root node over 4 windows must equal releasing the summed
        // task through a plain session: same seed, same release index (0 —
        // the stream's first release), same RNG stream family.
        let windows: Vec<Window<Record>> =
            (0..4).map(|i| window(i, &[0, 1, 2, 3, (i as i64) % 4])).collect();
        let mechanism = OsdpLaplaceL1::new(0.5).unwrap();

        let mut stream = stream_builder()
            .stream_budget(StreamBudget::Hierarchical { levels: 2 })
            .build()
            .unwrap();
        for w in windows.clone() {
            stream.ingest(w, &mechanism).unwrap();
        }
        let streamed = stream.range_query(0..4, &mechanism).unwrap();

        // Oracle: scan all rows through a one-shot session with the same
        // policy and seed, release once.
        let all_rows: Database<Record> =
            windows.into_iter().flat_map(|w| w.rows.into_iter()).collect();
        let oracle_session = SessionBuilder::new(all_rows)
            .policy(AttributePolicy::int_at_most(SYNTHETIC_FIELD, 1), "low-sensitive")
            .seed(7)
            .build()
            .unwrap();
        let query = SessionQuery::count_by("occ", 4, |r: &Record| {
            r.int(SYNTHETIC_FIELD).ok().map(|v| (v as usize).min(3))
        });
        let oracle = oracle_session.release(&query, &mechanism).unwrap();
        assert_eq!(streamed, oracle.estimate, "bitwise node/one-shot parity");
    }

    #[test]
    fn synthetic_windows_are_deterministic() {
        let collect = |seed| {
            let mut source = SyntheticWindows::new(seed, 3, 16, 8);
            let mut windows = Vec::new();
            while let Some(w) = source.next_window() {
                windows.push(w);
            }
            windows
        };
        let a = collect(5);
        let b = collect(5);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.rows.len(), y.rows.len());
            for (rx, ry) in x.rows.iter().zip(y.rows.iter()) {
                assert_eq!(rx.int(SYNTHETIC_FIELD).unwrap(), ry.int(SYNTHETIC_FIELD).unwrap());
            }
        }
        let c = collect(6);
        assert!(
            a.iter().zip(&c).any(|(x, y)| {
                x.rows.iter().zip(y.rows.iter()).any(|(rx, ry)| {
                    rx.int(SYNTHETIC_FIELD).unwrap() != ry.int(SYNTHETIC_FIELD).unwrap()
                })
            }),
            "different seeds diverge"
        );
    }

    #[test]
    fn windows_from_databases_assigns_dense_indices() {
        let dbs: Vec<Database<Record>> =
            (0..3).map(|i| (0..=i).map(|v| record(v as i64)).collect()).collect();
        let mut source = windows_from_databases(dbs);
        let mut seen = Vec::new();
        while let Some(w) = source.next_window() {
            seen.push((w.index, w.rows.len()));
        }
        assert_eq!(seen, vec![(0, 1), (1, 2), (2, 3)]);
    }
}
