//! Session-level label interning.
//!
//! Every audited release carries three labels (mechanism, policy, query) and
//! derives one RNG stream label, and a session serving heavy traffic repeats
//! the same handful of labels millions of times. Before interning, each
//! release paid a `to_string()` per label plus a `format!` per stream
//! derivation; the [`Interner`] replaces that with one `Arc<str>` clone per
//! use — an atomic increment — after the first occurrence.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cap on distinct interned labels per pool. Sessions use a handful of
/// labels; a caller minting unbounded distinct labels (one per release)
/// would otherwise grow the pool forever. At the cap the pool is cleared —
/// it is a pure cache, so only the allocation saving resets, never
/// correctness.
const INTERN_CAP: usize = 256;

/// A small intern pool mapping a borrowed key to a shared label.
#[derive(Debug, Default)]
pub(crate) struct Interner {
    map: Mutex<HashMap<String, Arc<str>>>,
}

impl Interner {
    /// An empty pool.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The interned copy of `key` itself.
    pub(crate) fn get(&self, key: &str) -> Arc<str> {
        self.get_with(key, str::to_string)
    }

    /// The interned label derived from `key` by `make`, built on first use.
    /// Lookups after the first allocate nothing.
    pub(crate) fn get_with(&self, key: &str, make: impl FnOnce(&str) -> String) -> Arc<str> {
        if let Some(value) = self.map.lock().get(key) {
            return Arc::clone(value);
        }
        // Built outside the lock: `make` may be arbitrary caller code. Two
        // racing builders produce equal content, so keeping the first is
        // safe either way.
        let value: Arc<str> = make(key).into();
        let mut map = self.map.lock();
        if map.len() >= INTERN_CAP {
            map.clear();
        }
        Arc::clone(map.entry(key.to_string()).or_insert_with(|| Arc::clone(&value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_interning_shares_one_allocation() {
        let pool = Interner::new();
        let a = pool.get("OsdpLaplaceL1");
        let b = pool.get("OsdpLaplaceL1");
        assert!(Arc::ptr_eq(&a, &b), "repeat lookups share the allocation");
        assert_eq!(&*a, "OsdpLaplaceL1");
        assert!(!Arc::ptr_eq(&a, &pool.get("DAWA")));
    }

    #[test]
    fn derived_labels_are_built_once() {
        let pool = Interner::new();
        let mut builds = 0;
        let mut derive = |key: &str| {
            builds += 1;
            format!("release/{key}")
        };
        let a = pool.get_with("DAWA", &mut derive);
        let b = pool.get_with("DAWA", &mut derive);
        assert_eq!(&*a, "release/DAWA");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds, 1, "the format! ran exactly once");
    }

    #[test]
    fn pool_stays_bounded() {
        let pool = Interner::new();
        for i in 0..(3 * INTERN_CAP) {
            let label = pool.get(&format!("label-{i}"));
            assert_eq!(&*label, &format!("label-{i}"));
            assert!(pool.map.lock().len() <= INTERN_CAP);
        }
    }
}
