//! [`SessionPool`]: the multi-tenant serving plane.
//!
//! A pool is a sharded map `tenant → OsdpSession`: every tenant owns an
//! independent session (its own data source, policy, budget accountant and
//! audit log), and the pool routes releases by tenant key. Because tenants
//! hold **disjoint** data, the pool as a whole composes in parallel
//! (Theorem 10.2): the worst-case privacy cost across the deployment is the
//! *maximum* per-tenant ε ([`SessionPool::parallel_composed_epsilon`]), not
//! the sum — exactly the contract `BudgetAccountant::spend_parallel`
//! records within one session, lifted to the process level.
//!
//! Concurrency: tenant lookup takes a shard **read** lock (shared, so
//! concurrent releases to any mix of tenants never serialize in the pool),
//! and each session's own grant path is lock-free (see the crate docs'
//! concurrency model). Write locks are taken only to register or evict a
//! tenant.
//!
//! Durable pools additionally run a per-tenant **health machine**
//! ([`TenantHealth`]): typed persistence failures on a tenant's shard
//! degrade and eventually quarantine that tenant — releases then refuse
//! fast with [`OsdpError::TenantQuarantined`] instead of queueing behind a
//! dead disk — while every other tenant keeps serving.
//! [`SessionPool::try_heal`] reopens the failed shard through snapshot +
//! replay recovery and restores the tenant to service; see the crate docs'
//! *Failure model*.

use crate::persist::SessionPersistence;
use crate::session::{OsdpSession, PoolRelease, Release, SessionBuilder, SessionQuery};
use crate::sharding::shard_index;
use osdp_attack::LedgerVerdict;
use osdp_core::error::{FaultClass, OsdpError, PersistError, PersistOp, Result};
use osdp_core::{Histogram, Record};
use osdp_mechanisms::HistogramMechanism;
use osdp_persist::{force_unlock, persist_error, LedgerOptions, StdVfs, SyncPolicy, Vfs};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default shard count: enough that 8–16 serving threads touching random
/// tenants rarely share a shard, cheap enough to iterate for pool-wide
/// reports.
const DEFAULT_POOL_SHARDS: usize = 16;

/// One shard of the tenant map.
type Shard<R> = RwLock<HashMap<Arc<str>, Arc<OsdpSession<R>>>>;

/// The persistence configuration of a durable pool: the root directory
/// holding one WAL shard directory per tenant, the sync policy and ledger
/// options every tenant shard is opened with, and the file system the
/// shards write through (the [`osdp_persist::FaultVfs`] injection point).
#[derive(Clone)]
struct PoolPersistence {
    dir: PathBuf,
    sync: SyncPolicy,
    options: LedgerOptions,
    vfs: Arc<dyn Vfs>,
}

impl std::fmt::Debug for PoolPersistence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolPersistence")
            .field("dir", &self.dir)
            .field("sync", &self.sync)
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

/// The serving health of one durable tenant, as the pool's circuit breaker
/// sees it. Transitions are driven by the typed
/// [`osdp_core::error::PersistError`] outcomes of the tenant's durable
/// operations (releases, [`SessionPool::sync_all`],
/// [`SessionPool::snapshot_all`]): transient faults degrade, repeated or
/// permanent faults quarantine, and a success (including a successful
/// [`SessionPool::try_heal`]) restores `Healthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantHealth {
    /// The durable plane is serving normally.
    Healthy,
    /// Transient faults were observed but the breaker has not tripped:
    /// releases still flow (each one retries internally), and one success
    /// resets the tenant to [`TenantHealth::Healthy`].
    Degraded,
    /// The breaker is **open**: releases are refused fast with
    /// [`OsdpError::TenantQuarantined`] instead of queueing behind a dead
    /// shard. After [`HealthPolicy::probe_cooldown`] one half-open probe
    /// release is let through; its outcome closes or re-opens the breaker.
    /// [`SessionPool::try_heal`] reopens the shard outright.
    Quarantined,
}

/// Circuit-breaker tuning for a pool's per-tenant health machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive **transient** persistence failures before the tenant is
    /// quarantined (a permanent failure quarantines immediately).
    pub quarantine_after: u32,
    /// How long an open breaker refuses fast before letting one half-open
    /// probe release through.
    pub probe_cooldown: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self { quarantine_after: 3, probe_cooldown: Duration::from_millis(250) }
    }
}

/// The mutable state behind one tenant's health cell. Cells are created
/// lazily on the first observed failure, so healthy tenants cost the pool
/// nothing.
#[derive(Debug)]
struct HealthInner {
    health: TenantHealth,
    /// Consecutive persistence failures since the last success.
    consecutive: u32,
    /// When the breaker opened (drives the half-open probe cooldown).
    opened_at: Option<Instant>,
    /// Whether a half-open probe is currently in flight.
    probing: bool,
    /// The most recent typed failure (cleared on success) — what operators
    /// and the supervisor's incident correlation read.
    last_error: Option<PersistError>,
}

/// One tenant's health cell, shared between the pool map and observers.
type HealthCell = Arc<Mutex<HealthInner>>;

/// Directory prefix of tenant WAL shards under a durable pool root. Only
/// prefixed directories are treated as tenant shards, so unrelated files in
/// the root never masquerade as tenants.
const TENANT_DIR_PREFIX: &str = "tenant-";

/// Encodes a tenant key into a filesystem-safe shard directory name:
/// `tenant-` plus the key with every byte outside `[A-Za-z0-9._-]`
/// (including `%` itself) percent-encoded. Injective, so distinct tenants
/// can never collide on one directory.
fn encode_tenant_dir(tenant: &str) -> String {
    let mut out = String::with_capacity(TENANT_DIR_PREFIX.len() + tenant.len());
    out.push_str(TENANT_DIR_PREFIX);
    for byte in tenant.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'.' | b'_' | b'-' => {
                out.push(byte as char);
            }
            _ => {
                out.push('%');
                out.push_str(&format!("{byte:02X}"));
            }
        }
    }
    out
}

/// Decodes a shard directory name back to its tenant key; `None` for
/// directories that are not tenant shards (or are malformed).
fn decode_tenant_dir(name: &str) -> Option<String> {
    let encoded = name.strip_prefix(TENANT_DIR_PREFIX)?;
    let bytes = encoded.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut at = 0;
    while at < bytes.len() {
        if bytes[at] == b'%' {
            let hex = encoded.get(at + 1..at + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            at += 3;
        } else {
            out.push(bytes[at]);
            at += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// A sharded, multi-tenant map of release sessions (see the module docs).
pub struct SessionPool<R = Record> {
    shards: Vec<Shard<R>>,
    persist: Option<PoolPersistence>,
    health: RwLock<HashMap<Arc<str>, HealthCell>>,
    health_policy: HealthPolicy,
    /// The supervisor's open shared-device incident, mirrored into the pool
    /// so [`SessionPool::health_snapshot`] is the one read surface operators
    /// need — `None` when the device plane is clean.
    incident: RwLock<Option<crate::supervisor::DeviceIncident>>,
}

impl<R> Default for SessionPool<R> {
    fn default() -> Self {
        Self::with_shards(DEFAULT_POOL_SHARDS)
    }
}

impl<R> std::fmt::Debug for SessionPool<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("tenants", &self.len())
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<R> SessionPool<R> {
    /// An empty pool with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool with an explicit shard count (at least 1).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| RwLock::new(HashMap::new())).collect(),
            persist: None,
            health: RwLock::new(HashMap::new()),
            health_policy: HealthPolicy::default(),
            incident: RwLock::new(None),
        }
    }

    /// The open [`crate::supervisor::DeviceIncident`], as last published by
    /// the supervising tick; `None` when no correlated shared-device fault
    /// burst is in progress (or the pool is unsupervised).
    pub fn open_incident(&self) -> Option<crate::supervisor::DeviceIncident> {
        self.incident.read().clone()
    }

    /// Publishes (or clears) the supervisor's incident state — called by
    /// [`crate::supervisor::PoolSupervisor::tick`] whenever the incident
    /// opens or closes, so snapshot readers never need a supervisor handle.
    pub(crate) fn set_incident(&self, incident: Option<crate::supervisor::DeviceIncident>) {
        *self.incident.write() = incident;
    }

    /// Replaces the pool's circuit-breaker tuning (builder-style).
    pub fn with_health_policy(mut self, policy: HealthPolicy) -> Self {
        self.health_policy = policy;
        self
    }

    /// An empty **durable** pool rooted at `dir` (created if absent): every
    /// tenant registered through [`SessionPool::open_tenant`] gets its own
    /// WAL shard directory under the root, opened with `sync`. Existing
    /// shard directories are left untouched until their tenant is opened —
    /// use [`SessionPool::recover`] to bring every persisted tenant back up
    /// front, or [`SessionPool::persisted_tenants`] to enumerate them.
    pub fn open(dir: impl Into<PathBuf>, sync: SyncPolicy) -> Result<Self> {
        Self::open_with(dir, sync, LedgerOptions::default(), Arc::new(StdVfs))
    }

    /// [`SessionPool::open`] with explicit [`LedgerOptions`] and an explicit
    /// file system: every tenant shard is opened through `vfs`, so a single
    /// [`osdp_persist::FaultVfs`] can inject faults into the whole pool (and
    /// a single [`osdp_persist::RetryPolicy`] / `auto_snapshot_every`
    /// setting governs every shard).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        sync: SyncPolicy,
        options: LedgerOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)
            .map_err(|e| OsdpError::Persist(persist_error(PersistOp::CreateDir, &dir, &e)))?;
        let mut pool = Self::with_shards(DEFAULT_POOL_SHARDS);
        pool.persist = Some(PoolPersistence { dir, sync, options, vfs });
        Ok(pool)
    }

    /// The durable pool root, if this pool persists its tenants.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(|p| p.dir.as_path())
    }

    /// The tenant keys with a WAL shard directory under the pool root —
    /// including tenants not currently registered in the map. Empty for
    /// in-memory pools.
    pub fn persisted_tenants(&self) -> Result<Vec<String>> {
        let Some(persist) = &self.persist else {
            return Ok(Vec::new());
        };
        let entries = std::fs::read_dir(&persist.dir).map_err(|e| {
            OsdpError::Persistence(format!("listing pool root {}: {e}", persist.dir.display()))
        })?;
        let mut tenants = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| {
                OsdpError::Persistence(format!("listing pool root {}: {e}", persist.dir.display()))
            })?;
            if !entry.path().is_dir() {
                continue;
            }
            if let Some(tenant) = entry.file_name().to_str().and_then(decode_tenant_dir) {
                tenants.push(tenant);
            }
        }
        tenants.sort();
        Ok(tenants)
    }

    /// The shard a tenant key hashes to.
    fn shard_of(&self, tenant: &str) -> &Shard<R> {
        &self.shards[shard_index(&tenant, self.shards.len())]
    }

    /// Registers a tenant's session, refusing to replace an existing one —
    /// silently swapping a live session would discard the tenant's spent
    /// budget and audit history. Evict explicitly with
    /// [`SessionPool::remove`] first if replacement is intended.
    pub fn insert(
        &self,
        tenant: impl Into<String>,
        session: OsdpSession<R>,
    ) -> Result<Arc<OsdpSession<R>>> {
        let tenant: Arc<str> = tenant.into().into();
        let mut shard = self.shard_of(&tenant).write();
        if shard.contains_key(&tenant) {
            return Err(OsdpError::TenantExists { tenant: tenant.to_string() });
        }
        let session = Arc::new(session);
        shard.insert(tenant, Arc::clone(&session));
        Ok(session)
    }

    /// The tenant's session, registering the one `make` builds on first use.
    /// The shard write lock is held across `make`, so two racing callers
    /// construct the session exactly once; tenants on other shards are
    /// unaffected.
    pub fn get_or_insert_with(
        &self,
        tenant: &str,
        make: impl FnOnce() -> Result<OsdpSession<R>>,
    ) -> Result<Arc<OsdpSession<R>>> {
        let mut shard = self.shard_of(tenant).write();
        if let Some(session) = shard.get(tenant) {
            return Ok(Arc::clone(session));
        }
        let session = Arc::new(make()?);
        shard.insert(tenant.into(), Arc::clone(&session));
        Ok(session)
    }

    /// The tenant's session in a **durable** pool, opening (and recovering)
    /// its WAL shard on first use: `make` supplies the session builder —
    /// source, policy, budget, seed — and the pool chains
    /// [`SessionBuilder::durable`] onto it with the tenant's shard, so the
    /// built session resumes whatever budget and audit state the shard
    /// holds. The shard write lock is held across recovery, so two racing
    /// callers open the WAL exactly once (the WAL's own `LOCK` file guards
    /// against writers in *other* pools or processes).
    ///
    /// Errors on in-memory pools (no [`SessionPool::open`] root) — plain
    /// tenants belong in [`SessionPool::get_or_insert_with`].
    pub fn open_tenant(
        &self,
        tenant: &str,
        make: impl FnOnce() -> SessionBuilder<R>,
    ) -> Result<Arc<OsdpSession<R>>>
    where
        R: Send + Sync + 'static,
    {
        let Some(persist) = &self.persist else {
            return Err(OsdpError::Persistence(
                "open_tenant needs a durable pool: construct it with SessionPool::open".into(),
            ));
        };
        self.get_or_insert_with(tenant, || {
            let shard_dir = persist.dir.join(encode_tenant_dir(tenant));
            let persistence = SessionPersistence::open_with_vfs(
                shard_dir,
                persist.sync,
                persist.options,
                Arc::clone(&persist.vfs),
            )?;
            make().durable(persistence).build()
        })
    }

    /// Rebuilds a failed durable tenant in place — the recovery half of the
    /// circuit breaker. The wedged session is evicted and drained
    /// ([`SessionPool::remove_quiesced`]), its leftover `LOCK` is cleared
    /// (a poisoned writer leaves it behind with this process's own live
    /// pid, which the open-time auto-clearing rightly refuses to touch),
    /// and the shard is reopened through the normal snapshot + replay
    /// recovery path with the builder `make` returns. On success the tenant
    /// is re-registered and restored to [`TenantHealth::Healthy`].
    ///
    /// **Fail-closed accounting.** A grant the old writer could not get
    /// acknowledged was refused to its caller, so the durable ledger holds
    /// exactly the acknowledged history; recovery replays it, and the
    /// healed accountant equals the audit log equals an independent
    /// [`osdp_persist::TenantLedger::peek`] bit for bit. If the reopen
    /// itself fails, the tenant stays quarantined (and unregistered) and
    /// the typed error says why.
    ///
    /// Errors on in-memory pools, like [`SessionPool::open_tenant`].
    pub fn try_heal(
        &self,
        tenant: &str,
        make: impl FnOnce() -> SessionBuilder<R>,
    ) -> Result<Arc<OsdpSession<R>>>
    where
        R: Send + Sync + 'static,
    {
        let Some(persist) = self.persist.clone() else {
            return Err(OsdpError::Persistence(
                "try_heal needs a durable pool: construct it with SessionPool::open".into(),
            ));
        };
        // Retire the wedged session: evict it, wait for in-flight releases
        // to drain, and drop the last handle so the old writer is provably
        // gone before its lock is cleared.
        drop(self.remove_quiesced(tenant));
        let shard_dir = persist.dir.join(encode_tenant_dir(tenant));
        force_unlock(&shard_dir)?;
        let reopened = SessionPersistence::open_with_vfs(
            shard_dir,
            persist.sync,
            persist.options,
            Arc::clone(&persist.vfs),
        )
        .and_then(|persistence| make().durable(persistence).build());
        match reopened {
            Ok(session) => {
                let session = self.insert(tenant, session)?;
                self.record_success(tenant);
                Ok(session)
            }
            Err(err) => {
                let typed = match &err {
                    OsdpError::Persist(p) => p.clone(),
                    other => PersistError::new(
                        PersistOp::Commit,
                        "",
                        FaultClass::Permanent,
                        format!("try_heal: {other}"),
                    ),
                };
                self.record_failure(tenant, &typed);
                Err(err)
            }
        }
    }

    /// The circuit-breaker state of a tenant ([`TenantHealth::Healthy`] for
    /// tenants that have never failed, including unknown ones).
    pub fn health(&self, tenant: &str) -> TenantHealth {
        self.health_cell(tenant).map(|cell| cell.lock().health).unwrap_or(TenantHealth::Healthy)
    }

    /// One report per known tenant — every registered session plus every
    /// tenant with health state (a quarantined tenant is evicted from the
    /// map while it heals, but must not vanish from the operator's view) —
    /// sorted by tenant key. This is the read API the supervisor and
    /// external monitors poll instead of poking pool internals: health,
    /// the consecutive-failure counter, and the last typed
    /// [`PersistError`] whose `(op, class)` signature drives shared-device
    /// incident correlation.
    pub fn health_snapshot(&self) -> Vec<TenantHealthReport> {
        let incident = self.open_incident();
        let in_incident =
            |tenant: &Arc<str>| incident.as_ref().is_some_and(|i| i.tenants.contains(tenant));
        let mut reports: HashMap<Arc<str>, TenantHealthReport> = HashMap::new();
        for tenant in self.tenants() {
            reports.insert(
                Arc::clone(&tenant),
                TenantHealthReport {
                    in_open_incident: in_incident(&tenant),
                    tenant,
                    health: TenantHealth::Healthy,
                    consecutive_failures: 0,
                    last_error: None,
                },
            );
        }
        for (tenant, cell) in self.health.read().iter() {
            let inner = cell.lock();
            reports.insert(
                Arc::clone(tenant),
                TenantHealthReport {
                    tenant: Arc::clone(tenant),
                    health: inner.health,
                    consecutive_failures: inner.consecutive,
                    last_error: inner.last_error.clone(),
                    in_open_incident: in_incident(tenant),
                },
            );
        }
        let mut out: Vec<TenantHealthReport> = reports.into_values().collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    /// Checksum-scrubs one tenant's shard through the pool's VFS — see
    /// [`osdp_persist::scrub_shard`] — and feeds the outcome into the same
    /// health machine a failed write drives: a finding (or a scrub that
    /// cannot even read the shard) degrades / quarantines the tenant
    /// **before** any recovery path depends on the rotten bytes; a clean
    /// scrub records nothing (readable cold data is no evidence the write
    /// path works, so it must not close an open breaker).
    ///
    /// Lock-free and write-free: safe against a shard that is actively
    /// serving. Errors on in-memory pools.
    pub fn scrub_tenant(&self, tenant: &str) -> Result<osdp_persist::ScrubReport> {
        let Some(persist) = &self.persist else {
            return Err(OsdpError::Persistence(
                "scrub_tenant needs a durable pool: construct it with SessionPool::open".into(),
            ));
        };
        let shard_dir = persist.dir.join(encode_tenant_dir(tenant));
        match osdp_persist::scrub_shard(persist.vfs.as_ref(), &shard_dir) {
            Ok(report) => {
                if let Some(err) = report.to_persist_error() {
                    self.record_failure(tenant, &err);
                }
                Ok(report)
            }
            Err(err) => {
                self.record_failure(tenant, &err);
                Err(OsdpError::Persist(err))
            }
        }
    }

    /// Scrubs **every** persisted tenant shard ([`SessionPool::scrub_tenant`]
    /// semantics per shard), visiting all of them even when some fail, and
    /// returns the pool-wide outcome. Errors only when the pool root itself
    /// cannot be enumerated (or the pool is in-memory).
    pub fn scrub_all(&self) -> Result<PoolScrubReport> {
        if self.persist.is_none() {
            return Err(OsdpError::Persistence(
                "scrub_all needs a durable pool: construct it with SessionPool::open".into(),
            ));
        }
        let mut out = PoolScrubReport::default();
        for tenant in self.persisted_tenants()? {
            match self.scrub_tenant(&tenant) {
                Ok(report) => out.reports.push((Arc::from(tenant.as_str()), report)),
                Err(OsdpError::Persist(err)) => {
                    out.failures.push((Arc::from(tenant.as_str()), err));
                }
                Err(other) => {
                    out.failures
                        .push((Arc::from(tenant.as_str()), persist_failure("scrub_all", other)));
                }
            }
        }
        Ok(out)
    }

    /// The tenant's health cell, if one was ever created.
    fn health_cell(&self, tenant: &str) -> Option<HealthCell> {
        self.health.read().get(tenant).map(Arc::clone)
    }

    /// The tenant's health cell, created on first failure.
    fn health_cell_or_insert(&self, tenant: &str) -> HealthCell {
        if let Some(cell) = self.health_cell(tenant) {
            return cell;
        }
        let mut map = self.health.write();
        Arc::clone(map.entry(Arc::from(tenant)).or_insert_with(|| {
            Arc::new(Mutex::new(HealthInner {
                health: TenantHealth::Healthy,
                consecutive: 0,
                opened_at: None,
                probing: false,
                last_error: None,
            }))
        }))
    }

    /// Admission control on the release path: quarantined tenants are
    /// refused **fast** with a typed error — no shard IO, no queueing
    /// behind a dead disk — except for one half-open probe once the
    /// cooldown has elapsed.
    fn admit(&self, tenant: &str) -> Result<()> {
        let Some(cell) = self.health_cell(tenant) else {
            return Ok(());
        };
        let mut inner = cell.lock();
        if inner.health != TenantHealth::Quarantined {
            return Ok(());
        }
        let cooled =
            inner.opened_at.is_none_or(|at| at.elapsed() >= self.health_policy.probe_cooldown);
        if cooled && !inner.probing {
            // Half-open: let exactly one probe through; its observed
            // outcome closes the breaker or re-opens it.
            inner.probing = true;
            return Ok(());
        }
        Err(OsdpError::TenantQuarantined { tenant: tenant.to_string() })
    }

    /// A durable success: closes the breaker. Only resets an existing cell
    /// — successes never allocate health state.
    fn record_success(&self, tenant: &str) {
        if let Some(cell) = self.health_cell(tenant) {
            let mut inner = cell.lock();
            inner.health = TenantHealth::Healthy;
            inner.consecutive = 0;
            inner.opened_at = None;
            inner.probing = false;
            inner.last_error = None;
        }
    }

    /// A persistence failure: transient faults degrade (and quarantine
    /// after [`HealthPolicy::quarantine_after`] in a row); permanent faults
    /// quarantine immediately. A failed half-open probe re-opens the
    /// breaker and restarts the cooldown. The typed error is retained as
    /// the tenant's `last_error` (see [`SessionPool::health_snapshot`]) —
    /// it is what the supervisor's shared-device correlation groups on.
    pub(crate) fn record_failure(&self, tenant: &str, err: &PersistError) {
        let cell = self.health_cell_or_insert(tenant);
        let mut inner = cell.lock();
        inner.consecutive = inner.consecutive.saturating_add(1);
        inner.probing = false;
        inner.last_error = Some(err.clone());
        if err.class == FaultClass::Permanent
            || inner.consecutive >= self.health_policy.quarantine_after
        {
            inner.health = TenantHealth::Quarantined;
            inner.opened_at = Some(Instant::now());
        } else {
            inner.health = TenantHealth::Degraded;
        }
    }

    /// Feeds a release outcome into the tenant's health machine and passes
    /// it through. Non-persistence errors (budget refusals, unknown
    /// tenants) say nothing about the durable plane: they leave health
    /// alone, only releasing an in-flight probe slot so the next admit can
    /// probe again.
    fn observe<T>(&self, tenant: &str, result: Result<T>) -> Result<T> {
        match &result {
            Ok(_) => self.record_success(tenant),
            Err(OsdpError::Persist(err)) => self.record_failure(tenant, err),
            Err(OsdpError::Persistence(msg)) => self.record_failure(
                tenant,
                &PersistError::new(PersistOp::Commit, "", FaultClass::Permanent, msg.clone()),
            ),
            Err(_) => {
                if let Some(cell) = self.health_cell(tenant) {
                    cell.lock().probing = false;
                }
            }
        }
        result
    }

    /// Reopens a durable pool and **recovers every persisted tenant**:
    /// each shard directory under the root is replayed and its session is
    /// rebuilt with the builder `make` returns for that tenant key. The
    /// recovered pool serves grants immediately; tenants never persisted
    /// are simply absent.
    pub fn recover(
        dir: impl Into<PathBuf>,
        sync: SyncPolicy,
        make: impl Fn(&str) -> SessionBuilder<R>,
    ) -> Result<Self>
    where
        R: Send + Sync + 'static,
    {
        let pool = Self::open(dir, sync)?;
        for tenant in pool.persisted_tenants()? {
            pool.open_tenant(&tenant, || make(&tenant))?;
        }
        Ok(pool)
    }

    /// Rotates every durable tenant's WAL into a fresh snapshot generation
    /// ([`crate::SessionWal::snapshot`]): the collapsed history keeps
    /// recovery O(aggregate rows + tail) instead of O(all releases).
    /// No-op for tenants without a WAL (and for in-memory pools).
    ///
    /// **Every** tenant is attempted — one crashed or disk-failed shard
    /// does not shadow the rest of the sweep. Failures come back as a
    /// [`PoolMaintenanceError`] naming each failing tenant.
    pub fn snapshot_all(&self) -> std::result::Result<(), PoolMaintenanceError> {
        self.maintain("snapshot_all", |wal| wal.snapshot())
    }

    /// Flushes and fsyncs every durable tenant's WAL, regardless of sync
    /// policy — the clean-shutdown barrier. Like
    /// [`SessionPool::snapshot_all`], every tenant is attempted and the
    /// failures (if any) come back together as a [`PoolMaintenanceError`].
    pub fn sync_all(&self) -> std::result::Result<(), PoolMaintenanceError> {
        self.maintain("sync_all", |wal| wal.sync())
    }

    /// Runs a WAL maintenance `op` on every durable tenant, collecting
    /// per-tenant failures instead of stopping at the first. Every outcome
    /// also drives the tenant's health machine: a failing shard degrades or
    /// quarantines its tenant (so the release path starts refusing fast),
    /// a succeeding one closes any open breaker.
    fn maintain(
        &self,
        operation: &'static str,
        op: impl Fn(&crate::SessionWal) -> Result<()>,
    ) -> std::result::Result<(), PoolMaintenanceError> {
        let outcomes = self
            .for_each_session(|tenant, session| session.persistence().map(|wal| (tenant, op(wal))));
        let mut failures: Vec<(Arc<str>, PersistError)> = Vec::new();
        for (tenant, outcome) in outcomes.into_iter().flatten() {
            match outcome {
                Ok(()) => self.record_success(&tenant),
                Err(err) => {
                    let err = persist_failure(operation, err);
                    self.record_failure(&tenant, &err);
                    failures.push((tenant, err));
                }
            }
        }
        if failures.is_empty() {
            return Ok(());
        }
        failures.sort_by(|a, b| a.0.cmp(&b.0));
        Err(PoolMaintenanceError { operation, failures })
    }

    /// The tenant's session, if registered.
    pub fn get(&self, tenant: &str) -> Option<Arc<OsdpSession<R>>> {
        self.shard_of(tenant).read().get(tenant).map(Arc::clone)
    }

    /// Evicts a tenant, returning its session.
    ///
    /// Releases may still be **in flight** on other threads when the map
    /// entry disappears: they hold their own clones of the session `Arc`,
    /// so every grant they win lands in the *returned* session's accountant
    /// and audit log — nothing is lost, but the tenant is no longer visible
    /// to [`SessionPool::verify_all_ledgers`]. The operator therefore owns
    /// the final audit: run `osdp_attack::verify_ledger` on the returned
    /// session once its traffic has drained (or use
    /// [`SessionPool::remove_quiesced`], which waits for the drain).
    /// Tested in `tests/concurrent_sessions.rs`.
    pub fn remove(&self, tenant: &str) -> Option<Arc<OsdpSession<R>>> {
        self.shard_of(tenant).write().remove(tenant)
    }

    /// Evicts a tenant and **waits for in-flight releases to quiesce**: the
    /// call returns only once the returned handle is the session's sole
    /// `Arc`, so a final ledger verify observes every release that was
    /// racing the eviction. New releases cannot start (the tenant is
    /// already gone from the map), so the wait is bounded by the drain of
    /// the releases already running.
    ///
    /// Callers holding long-lived session `Arc`s (from
    /// [`SessionPool::get`] / [`SessionPool::insert`]) must drop them
    /// first, or this spins until they do.
    pub fn remove_quiesced(&self, tenant: &str) -> Option<Arc<OsdpSession<R>>> {
        let session = self.remove(tenant)?;
        while Arc::strong_count(&session) > 1 {
            std::thread::yield_now();
        }
        Some(session)
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the pool has no tenants.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// All tenant keys, sorted (shard iteration order is not meaningful).
    pub fn tenants(&self) -> Vec<Arc<str>> {
        let mut all: Vec<Arc<str>> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().map(Arc::clone).collect::<Vec<_>>())
            .collect();
        all.sort();
        all
    }

    /// The tenant's session, or an error naming the unknown tenant.
    fn session(&self, tenant: &str) -> Result<Arc<OsdpSession<R>>> {
        self.get(tenant).ok_or_else(|| {
            OsdpError::InvalidInput(format!("no session registered for tenant '{tenant}'"))
        })
    }

    /// Routes one audited release to the tenant's session
    /// ([`OsdpSession::release`]): the tenant's own accountant is debited,
    /// the tenant's own audit log extended. Quarantined tenants are refused
    /// fast ([`OsdpError::TenantQuarantined`]) without touching the shard;
    /// every routed outcome feeds the tenant's health machine.
    pub fn release(
        &self,
        tenant: &str,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
    ) -> Result<Release> {
        self.admit(tenant)?;
        let result = match self.session(tenant) {
            Ok(session) => session.release(query, mechanism),
            Err(err) => Err(err),
        };
        self.observe(tenant, result)
    }

    /// Routes a trial batch to the tenant's session
    /// ([`OsdpSession::release_trials`]), with the same admission control
    /// and health observation as [`SessionPool::release`].
    pub fn release_trials(
        &self,
        tenant: &str,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        trials: usize,
    ) -> Result<Vec<Histogram>> {
        self.admit(tenant)?;
        let result = match self.session(tenant) {
            Ok(session) => session.release_trials(query, mechanism, trials),
            Err(err) => Err(err),
        };
        self.observe(tenant, result)
    }

    /// Routes a whole-pool mechanism batch to the tenant's session
    /// ([`OsdpSession::release_pool`]), with the same admission control and
    /// health observation as [`SessionPool::release`].
    pub fn release_pool(
        &self,
        tenant: &str,
        query: &SessionQuery<R>,
        pool: &[&dyn HistogramMechanism],
        trials: usize,
    ) -> Result<Vec<PoolRelease>> {
        self.admit(tenant)?;
        let result = match self.session(tenant) {
            Ok(session) => session.release_pool(query, pool, trials),
            Err(err) => Err(err),
        };
        self.observe(tenant, result)
    }

    /// Sum of ε spent across every tenant — the *sequential*-composition
    /// reading, an upper bound that ignores tenant disjointness.
    pub fn total_spent(&self) -> f64 {
        self.for_each_session(|_, s| s.total_spent()).into_iter().sum()
    }

    /// The pool-wide privacy cost under **parallel composition**
    /// (Theorem 10.2): tenants hold disjoint data, so an adversary's
    /// worst-case view is bounded by the *maximum* per-tenant ε, not the
    /// sum. Zero for an empty pool.
    pub fn parallel_composed_epsilon(&self) -> f64 {
        self.for_each_session(|_, s| s.total_spent()).into_iter().fold(0.0, f64::max)
    }

    /// Transitions one tenant's session to a new policy epoch
    /// ([`OsdpSession::set_policy_epoch`]): the tenant's caches are
    /// invalidated, its packed audit counter bumped, and the transition
    /// logged to its WAL shard when durable. Routed like a release —
    /// quarantined tenants are refused fast and the (durable) outcome feeds
    /// the tenant's health machine, since a transition writes an epoch
    /// record through the same shard a grant does.
    pub fn set_policy_epoch(
        &self,
        tenant: &str,
        policy: Arc<dyn osdp_core::policy::Policy<R>>,
        label: impl Into<String>,
        direction: osdp_core::policy::EpochDirection,
    ) -> Result<osdp_attack::EpochTransition> {
        self.admit(tenant)?;
        let result = match self.session(tenant) {
            Ok(session) => session.set_policy_epoch(policy, label, direction),
            Err(err) => Err(err),
        };
        self.observe(tenant, result)
    }

    /// Verifies **every** tenant's audit ledger against its own budget cap
    /// (`osdp_attack::verify_ledger_versioned`): budget conservation plus
    /// the stale-policy and version-stamp-monotonicity checks over the
    /// tenant's epoch history. Returns one verdict per tenant plus the
    /// parallel-composition total. O(total releases); the audit merge
    /// scratch is reused across tenants, so the sweep allocates one record
    /// buffer for the whole pool instead of one per tenant.
    pub fn verify_all_ledgers(&self) -> PoolVerdict {
        let mut scratch = Vec::new();
        let mut tenants = self.for_each_session(|tenant, session| TenantVerdict {
            tenant,
            verdict: osdp_attack::verify_ledger_versioned(
                &session.audit_log().ledger_with(&mut scratch),
                session.accountant().limit(),
                &session.release_stamps(),
                &session.epoch_transitions(),
            ),
        });
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let parallel_epsilon = tenants.iter().map(|t| t.verdict.total_epsilon).fold(0.0, f64::max);
        PoolVerdict { tenants, parallel_epsilon }
    }

    /// Applies `f` to every registered session, one shard read lock at a
    /// time.
    fn for_each_session<T>(&self, mut f: impl FnMut(Arc<str>, &OsdpSession<R>) -> T) -> Vec<T> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for (tenant, session) in shard.iter() {
                out.push(f(Arc::clone(tenant), session));
            }
        }
        out
    }
}

/// Collapses a maintenance failure into its typed persistence form:
/// already-typed errors pass through, anything else (a logical failure
/// surfaced as a plain [`OsdpError::Persistence`] string, say) is
/// conservatively wrapped as a permanent commit failure so the health
/// machine still trips.
fn persist_failure(operation: &'static str, err: OsdpError) -> PersistError {
    match err {
        OsdpError::Persist(err) => err,
        other => PersistError::new(
            PersistOp::Commit,
            "",
            FaultClass::Permanent,
            format!("{operation}: {other}"),
        ),
    }
}

/// The outcome of a pool-wide WAL maintenance sweep
/// ([`SessionPool::sync_all`] / [`SessionPool::snapshot_all`]) in which one
/// or more tenants failed. The sweep still visited **every** tenant — the
/// tenants absent from [`PoolMaintenanceError::failures`] completed the
/// operation — so the operator can retire exactly the failing shards
/// instead of re-running (and re-fsyncing) the whole pool. Each failure is
/// the typed [`PersistError`], so the operator can branch on
/// transient-vs-permanent (retry the sweep vs [`SessionPool::try_heal`])
/// without string-matching.
#[derive(Debug)]
pub struct PoolMaintenanceError {
    /// Which sweep failed (`"sync_all"` or `"snapshot_all"`).
    pub operation: &'static str,
    /// The failing tenants with their typed errors, sorted by tenant key.
    pub failures: Vec<(Arc<str>, PersistError)>,
}

impl PoolMaintenanceError {
    /// The failing tenant keys, sorted.
    pub fn tenants(&self) -> Vec<Arc<str>> {
        self.failures.iter().map(|(t, _)| Arc::clone(t)).collect()
    }
}

impl std::fmt::Display for PoolMaintenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed for {} tenant(s): ", self.operation, self.failures.len())?;
        for (i, (tenant, err)) in self.failures.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "'{tenant}': {err}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PoolMaintenanceError {}

impl From<PoolMaintenanceError> for OsdpError {
    fn from(err: PoolMaintenanceError) -> Self {
        OsdpError::Persistence(err.to_string())
    }
}

/// One row of [`SessionPool::health_snapshot`]: a tenant's circuit-breaker
/// state as the operator (or the supervisor) sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantHealthReport {
    /// The tenant key.
    pub tenant: Arc<str>,
    /// The breaker state.
    pub health: TenantHealth,
    /// Consecutive persistence failures since the last success.
    pub consecutive_failures: u32,
    /// The most recent typed failure, if the tenant is not clean — its
    /// `(op, class)` signature is what shared-device incident correlation
    /// groups on.
    pub last_error: Option<PersistError>,
    /// Whether this tenant is part of the supervisor's currently open
    /// [`crate::supervisor::DeviceIncident`] (always `false` when no
    /// incident is open or the pool is unsupervised). Without this the
    /// snapshot said *quarantined* but not *why the probes stopped*.
    pub in_open_incident: bool,
}

/// The outcome of a pool-wide scrub sweep ([`SessionPool::scrub_all`]):
/// every shard was visited; `reports` holds the per-shard verdicts
/// (possibly with findings) and `failures` the shards the scrubber could
/// not even read.
#[derive(Debug, Clone, Default)]
pub struct PoolScrubReport {
    /// Per-tenant scrub reports, in enumeration order.
    pub reports: Vec<(Arc<str>, osdp_persist::ScrubReport)>,
    /// Tenants whose shard could not be scrubbed at all (the scrub itself
    /// hit an IO fault), with the typed error.
    pub failures: Vec<(Arc<str>, PersistError)>,
}

impl PoolScrubReport {
    /// Whether every shard was scrubbed and none showed corruption.
    pub fn all_clean(&self) -> bool {
        self.failures.is_empty() && self.reports.iter().all(|(_, r)| r.is_clean())
    }

    /// The tenants with at least one corruption finding, by key.
    pub fn tenants_with_findings(&self) -> Vec<Arc<str>> {
        self.reports.iter().filter(|(_, r)| !r.is_clean()).map(|(t, _)| Arc::clone(t)).collect()
    }
}

/// One tenant's ledger verdict within a [`PoolVerdict`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantVerdict {
    /// The tenant key.
    pub tenant: Arc<str>,
    /// The tenant's ledger verdict against its own cap.
    pub verdict: LedgerVerdict,
}

/// The outcome of [`SessionPool::verify_all_ledgers`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolVerdict {
    /// Per-tenant verdicts, sorted by tenant key.
    pub tenants: Vec<TenantVerdict>,
    /// The pool-wide ε under parallel composition across disjoint tenants
    /// (Theorem 10.2): the maximum per-tenant ledger total.
    pub parallel_epsilon: f64,
}

impl PoolVerdict {
    /// Whether every tenant's ledger upholds the OSDP contract (within its
    /// cap, no PDP entries).
    pub fn all_upheld(&self) -> bool {
        self.tenants.iter().all(|t| t.verdict.upholds_osdp())
    }

    /// The tenants whose ledgers fail, by key.
    pub fn violating_tenants(&self) -> Vec<Arc<str>> {
        self.tenants
            .iter()
            .filter(|t| !t.verdict.upholds_osdp())
            .map(|t| Arc::clone(&t.tenant))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use osdp_core::policy::ClosurePolicy;
    use osdp_core::Database;
    use osdp_mechanisms::{OsdpLaplaceL1, Suppress};

    fn tenant_session(seed: u64, budget: f64) -> OsdpSession<u32> {
        let db: Database<u32> = (0..100u32).collect();
        SessionBuilder::new(db)
            .policy(ClosurePolicy::new("upper-half", |&v: &u32| v >= 50), "P50")
            .budget(budget)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn mod8_query() -> SessionQuery<u32> {
        SessionQuery::count_by("mod8", 8, |&v: &u32| Some((v % 8) as usize))
    }

    #[test]
    fn routes_releases_to_independent_tenant_budgets() {
        let pool: SessionPool<u32> = SessionPool::new();
        pool.insert("acme", tenant_session(1, 1.0)).unwrap();
        pool.insert("globex", tenant_session(2, 2.0)).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.tenants(), vec![Arc::from("acme"), Arc::from("globex")]);

        let m = OsdpLaplaceL1::new(0.75).unwrap();
        pool.release("acme", &mod8_query(), &m).unwrap();
        // acme is now too drained for a second 0.75 release; globex is not.
        assert!(pool.release("acme", &mod8_query(), &m).is_err());
        pool.release("globex", &mod8_query(), &m).unwrap();
        pool.release("globex", &mod8_query(), &m).unwrap();

        assert_eq!(pool.get("acme").unwrap().total_spent(), 0.75);
        assert_eq!(pool.get("globex").unwrap().total_spent(), 1.5);
        assert_eq!(pool.total_spent(), 2.25);
        // Disjoint tenants compose in parallel: max, not sum.
        assert_eq!(pool.parallel_composed_epsilon(), 1.5);

        let verdict = pool.verify_all_ledgers();
        assert!(verdict.all_upheld());
        assert_eq!(verdict.parallel_epsilon, 1.5);
        assert_eq!(verdict.tenants.len(), 2);
        assert!(verdict.violating_tenants().is_empty());

        // Unknown tenants are refused by name.
        assert!(pool.release("initech", &mod8_query(), &m).is_err());
    }

    #[test]
    fn insert_refuses_to_replace_a_live_session() {
        let pool: SessionPool<u32> = SessionPool::new();
        pool.insert("acme", tenant_session(1, 1.0)).unwrap();
        // The refusal is the *typed* TenantExists error, so callers can
        // branch on it without string-matching.
        match pool.insert("acme", tenant_session(9, 9.0)) {
            Err(OsdpError::TenantExists { tenant }) => assert_eq!(tenant, "acme"),
            other => panic!("expected TenantExists, got {other:?}"),
        }
        // Explicit eviction allows re-registration.
        let old = pool.remove("acme").unwrap();
        assert_eq!(old.total_spent(), 0.0);
        pool.insert("acme", tenant_session(9, 9.0)).unwrap();
        assert_eq!(pool.get("acme").unwrap().remaining_budget(), Some(9.0));
    }

    #[test]
    fn get_or_insert_builds_exactly_once() {
        let pool: SessionPool<u32> = SessionPool::new();
        let a = pool.get_or_insert_with("acme", || Ok(tenant_session(1, 1.0))).unwrap();
        let b =
            pool.get_or_insert_with("acme", || panic!("must not rebuild a live session")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A failed build registers nothing.
        let err: Result<_> =
            pool.get_or_insert_with("bad", || Err(OsdpError::InvalidInput("boom".into())));
        assert!(err.is_err());
        assert!(pool.get("bad").is_none());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn tenant_dir_encoding_is_injective_and_reversible() {
        for tenant in ["acme", "acme corp", "a/b", "ü-tenant", "100%", "tenant-x", ".."] {
            let dir = encode_tenant_dir(tenant);
            assert!(dir.starts_with(TENANT_DIR_PREFIX));
            assert!(
                dir[TENANT_DIR_PREFIX.len()..]
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-' | b'%')),
                "unsafe byte survived encoding: {dir}"
            );
            assert_eq!(decode_tenant_dir(&dir).as_deref(), Some(tenant));
        }
        // Distinct keys that differ only in encoded bytes stay distinct.
        assert_ne!(encode_tenant_dir("a/b"), encode_tenant_dir("a%2Fb"));
        // Non-tenant directories are ignored wholesale.
        assert_eq!(decode_tenant_dir("snapshots"), None);
        assert_eq!(decode_tenant_dir("tenant-%zz"), None);
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("osdp-pool-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_builder() -> SessionBuilder<u32> {
        let db: Database<u32> = (0..100u32).collect();
        SessionBuilder::new(db)
            .policy(ClosurePolicy::new("upper-half", |&v: &u32| v >= 50), "P50")
            .budget(10.0)
            .seed(7)
    }

    /// A breaker that never cools down on its own: quarantine stays sticky
    /// until an explicit heal, so tests observe no half-open races.
    fn sticky_policy() -> HealthPolicy {
        HealthPolicy { quarantine_after: 3, probe_cooldown: Duration::from_secs(3600) }
    }

    fn transient() -> PersistError {
        PersistError::new(PersistOp::Write, "wal.log", FaultClass::Transient, "EINTR")
    }

    fn permanent() -> PersistError {
        PersistError::new(PersistOp::Write, "wal.log", FaultClass::Permanent, "ENOSPC")
    }

    #[test]
    fn transient_failures_degrade_then_quarantine_and_success_heals() {
        let pool: SessionPool<u32> = SessionPool::new().with_health_policy(sticky_policy());
        assert_eq!(pool.health("acme"), TenantHealth::Healthy);
        pool.record_failure("acme", &transient());
        assert_eq!(pool.health("acme"), TenantHealth::Degraded);
        pool.record_failure("acme", &transient());
        assert_eq!(pool.health("acme"), TenantHealth::Degraded);
        assert!(pool.admit("acme").is_ok(), "degraded tenants still serve");
        pool.record_failure("acme", &transient());
        assert_eq!(pool.health("acme"), TenantHealth::Quarantined);
        // The breaker is open and the cooldown is far away: refuse fast,
        // with the typed error.
        match pool.admit("acme") {
            Err(OsdpError::TenantQuarantined { tenant }) => assert_eq!(tenant, "acme"),
            other => panic!("expected TenantQuarantined, got {other:?}"),
        }
        // Other tenants are untouched.
        assert_eq!(pool.health("globex"), TenantHealth::Healthy);
        assert!(pool.admit("globex").is_ok());
        // A success closes the breaker; a permanent fault reopens it in one
        // strike.
        pool.record_success("acme");
        assert_eq!(pool.health("acme"), TenantHealth::Healthy);
        assert!(pool.admit("acme").is_ok());
        pool.record_failure("acme", &permanent());
        assert_eq!(pool.health("acme"), TenantHealth::Quarantined);
    }

    #[test]
    fn half_open_probe_admits_exactly_one() {
        let pool: SessionPool<u32> = SessionPool::new().with_health_policy(HealthPolicy {
            quarantine_after: 1,
            probe_cooldown: Duration::ZERO,
        });
        pool.record_failure("acme", &permanent());
        assert_eq!(pool.health("acme"), TenantHealth::Quarantined);
        // Cooldown elapsed: one probe goes through; a second caller is
        // refused while the probe is in flight.
        assert!(pool.admit("acme").is_ok());
        assert!(matches!(pool.admit("acme"), Err(OsdpError::TenantQuarantined { .. })));
        // A failed probe re-opens the breaker (and releases the slot).
        pool.record_failure("acme", &transient());
        assert_eq!(pool.health("acme"), TenantHealth::Quarantined);
        assert!(pool.admit("acme").is_ok(), "zero cooldown: next probe is allowed");
        // A non-persistence outcome (a budget refusal, say) is no verdict
        // on the disk: health is unchanged but the probe slot frees up.
        let _: Result<()> =
            pool.observe("acme", Err(OsdpError::InvalidInput("budget refused".into())));
        assert_eq!(pool.health("acme"), TenantHealth::Quarantined);
        assert!(pool.admit("acme").is_ok());
        // A successful probe closes the breaker.
        let _: Result<()> = pool.observe("acme", Ok(()));
        assert_eq!(pool.health("acme"), TenantHealth::Healthy);
    }

    #[test]
    fn crashed_tenant_quarantines_with_typed_error_and_heals_bit_for_bit() {
        let dir = tmp_dir("heal");
        let pool: SessionPool<u32> = SessionPool::open(dir.clone(), SyncPolicy::Always)
            .unwrap()
            .with_health_policy(sticky_policy());
        pool.open_tenant("acme", durable_builder).unwrap();
        let m = OsdpLaplaceL1::new(0.75).unwrap();
        pool.release("acme", &mod8_query(), &m).unwrap();
        assert_eq!(pool.health("acme"), TenantHealth::Healthy);

        // The shard's writer dies mid-service (simulated): the maintenance
        // sweep surfaces the typed permanent failure and trips the breaker.
        pool.get("acme").unwrap().persistence().unwrap().crash(1.0).unwrap();
        let err = pool.sync_all().unwrap_err();
        assert_eq!(err.operation, "sync_all");
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].0.as_ref(), "acme");
        assert_eq!(err.failures[0].1.class, FaultClass::Permanent);
        assert_eq!(pool.health("acme"), TenantHealth::Quarantined);

        // Releases now refuse fast without touching the dead shard.
        match pool.release("acme", &mod8_query(), &m) {
            Err(OsdpError::TenantQuarantined { tenant }) => assert_eq!(tenant, "acme"),
            other => panic!("expected fast quarantine refusal, got {other:?}"),
        }

        // Heal: evict + drain, clear the leftover LOCK, reopen through
        // snapshot + replay. The acknowledged grant survives and the
        // accountant == audit == an independent ledger peek, bit for bit.
        let healed = pool.try_heal("acme", durable_builder).unwrap();
        assert_eq!(pool.health("acme"), TenantHealth::Healthy);
        let peek = osdp_persist::TenantLedger::peek(dir.join(encode_tenant_dir("acme"))).unwrap();
        assert_eq!(healed.audit_total_epsilon_units(), peek.spent_units());
        assert_eq!(healed.total_spent(), 0.75);
        // And the tenant serves again.
        pool.release("acme", &mod8_query(), &m).unwrap();
        assert!(pool.verify_all_ledgers().all_upheld());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_disk_full_fails_closed_and_heals() {
        use osdp_persist::{FaultKind, FaultPlan, FaultVfs};
        let dir = tmp_dir("faultvfs");
        // Write ops #0–#1 on wal.log are the open-time header rewrite
        // (set_len + write); op #2 is the first grant frame — that one
        // hits ENOSPC.
        let plan = FaultPlan::new().fail_nth(PersistOp::Write, "wal.log", 2, FaultKind::DiskFull);
        let pool: SessionPool<u32> = SessionPool::open_with(
            dir.clone(),
            SyncPolicy::Always,
            LedgerOptions::default(),
            FaultVfs::new(plan),
        )
        .unwrap()
        .with_health_policy(sticky_policy());
        pool.open_tenant("acme", durable_builder).unwrap();

        let m = OsdpLaplaceL1::new(0.75).unwrap();
        let err = pool.release("acme", &mod8_query(), &m).unwrap_err();
        assert!(
            matches!(err, OsdpError::Persist(ref p) if p.class == FaultClass::Permanent),
            "expected a typed permanent persistence failure, got {err:?}"
        );
        // Fail-closed: the caller was refused, but the admitted debit is
        // conservatively kept — budget is never resurrected by an IO fault.
        assert_eq!(pool.get("acme").unwrap().total_spent(), 0.75);
        assert_eq!(pool.health("acme"), TenantHealth::Quarantined);

        // Heal. The one-shot fault is spent; the shard reopens cleanly and
        // the recovered state matches an independent peek bit for bit.
        let healed = pool.try_heal("acme", durable_builder).unwrap();
        assert_eq!(pool.health("acme"), TenantHealth::Healthy);
        let peek = osdp_persist::TenantLedger::peek(dir.join(encode_tenant_dir("acme"))).unwrap();
        assert_eq!(healed.audit_total_epsilon_units(), peek.spent_units());
        // The tenant serves again and the pool-wide audit still balances.
        pool.release("acme", &mod8_query(), &m).unwrap();
        assert!(pool.verify_all_ledgers().all_upheld());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn try_heal_refuses_in_memory_pools() {
        let pool: SessionPool<u32> = SessionPool::new();
        assert!(pool.try_heal("acme", durable_builder).is_err());
    }

    #[test]
    fn health_snapshot_reports_every_known_tenant_with_its_last_error() {
        let pool: SessionPool<u32> = SessionPool::new().with_health_policy(sticky_policy());
        pool.insert("acme", tenant_session(1, 1.0)).unwrap();
        pool.insert("globex", tenant_session(2, 1.0)).unwrap();
        // A tenant with health state but no registered session (the shape
        // of a quarantined tenant mid-heal) still shows up.
        pool.record_failure("initech", &permanent());
        pool.record_failure("globex", &transient());
        let snapshot = pool.health_snapshot();
        assert_eq!(
            snapshot.iter().map(|r| r.tenant.as_ref()).collect::<Vec<_>>(),
            vec!["acme", "globex", "initech"],
            "sorted union of registered and health-tracked tenants"
        );
        assert_eq!(snapshot[0].health, TenantHealth::Healthy);
        assert_eq!(snapshot[0].consecutive_failures, 0);
        assert!(snapshot[0].last_error.is_none());
        assert_eq!(snapshot[1].health, TenantHealth::Degraded);
        assert_eq!(snapshot[1].consecutive_failures, 1);
        assert_eq!(snapshot[1].last_error.as_ref().unwrap().class, FaultClass::Transient);
        assert_eq!(snapshot[2].health, TenantHealth::Quarantined);
        let last = snapshot[2].last_error.as_ref().unwrap();
        assert!(last.is_device_signature(), "permanent write fault carries the storm shape");
        // Success wipes the error and the counter.
        pool.record_success("globex");
        let snapshot = pool.health_snapshot();
        assert_eq!(snapshot[1].health, TenantHealth::Healthy);
        assert!(snapshot[1].last_error.is_none());
    }

    #[test]
    fn scrub_finds_cold_bit_rot_and_quarantines_before_recovery_reads_it() {
        let dir = tmp_dir("scrub");
        let pool: SessionPool<u32> = SessionPool::open(dir.clone(), SyncPolicy::Always)
            .unwrap()
            .with_health_policy(sticky_policy());
        pool.open_tenant("acme", durable_builder).unwrap();
        let m = OsdpLaplaceL1::new(0.75).unwrap();
        pool.release("acme", &mod8_query(), &m).unwrap();
        let report = pool.scrub_tenant("acme").unwrap();
        assert!(report.is_clean());
        assert_eq!(report.wal_frames, 1);
        assert_eq!(pool.health("acme"), TenantHealth::Healthy);

        // Cold bit rot lands in the shard while the tenant idles. The scrub
        // discovers it and trips the breaker *before* any recovery path
        // reads the corrupt frame.
        let wal = dir.join(encode_tenant_dir("acme")).join("wal.log");
        let mut bytes = std::fs::read(&wal).unwrap();
        let frame_at = bytes.len() - 4;
        bytes[frame_at] ^= 0x10;
        std::fs::write(&wal, &bytes).unwrap();
        let report = pool.scrub_tenant("acme").unwrap();
        assert!(!report.is_clean());
        assert_eq!(pool.health("acme"), TenantHealth::Quarantined);
        let snapshot = pool.health_snapshot();
        let acme = snapshot.iter().find(|r| r.tenant.as_ref() == "acme").unwrap();
        assert_eq!(acme.last_error.as_ref().unwrap().op, PersistOp::Read);

        // scrub_all sees the same shard-level truth pool-wide.
        let sweep = pool.scrub_all().unwrap();
        assert!(!sweep.all_clean());
        assert_eq!(sweep.tenants_with_findings(), vec![Arc::from("acme")]);

        // In-memory pools have nothing to scrub.
        let mem: SessionPool<u32> = SessionPool::new();
        assert!(mem.scrub_tenant("acme").is_err());
        assert!(mem.scrub_all().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pdp_tenants_fail_pool_verification() {
        let pool: SessionPool<u32> = SessionPool::new();
        pool.insert("acme", tenant_session(1, 1.0)).unwrap();
        pool.insert("shady", tenant_session(2, 200.0)).unwrap();
        pool.release("acme", &mod8_query(), &OsdpLaplaceL1::new(0.5).unwrap()).unwrap();
        pool.release("shady", &mod8_query(), &Suppress::new(10.0).unwrap()).unwrap();
        let verdict = pool.verify_all_ledgers();
        assert!(!verdict.all_upheld());
        assert_eq!(verdict.violating_tenants(), vec![Arc::from("shady")]);
        assert_eq!(verdict.parallel_epsilon, 10.0);
    }
}
