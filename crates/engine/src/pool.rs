//! [`SessionPool`]: the multi-tenant serving plane.
//!
//! A pool is a sharded map `tenant → OsdpSession`: every tenant owns an
//! independent session (its own data source, policy, budget accountant and
//! audit log), and the pool routes releases by tenant key. Because tenants
//! hold **disjoint** data, the pool as a whole composes in parallel
//! (Theorem 10.2): the worst-case privacy cost across the deployment is the
//! *maximum* per-tenant ε ([`SessionPool::parallel_composed_epsilon`]), not
//! the sum — exactly the contract `BudgetAccountant::spend_parallel`
//! records within one session, lifted to the process level.
//!
//! Concurrency: tenant lookup takes a shard **read** lock (shared, so
//! concurrent releases to any mix of tenants never serialize in the pool),
//! and each session's own grant path is lock-free (see the crate docs'
//! concurrency model). Write locks are taken only to register or evict a
//! tenant.

use crate::session::{OsdpSession, PoolRelease, Release, SessionQuery};
use crate::sharding::shard_index;
use osdp_attack::{verify_ledger, LedgerVerdict};
use osdp_core::error::{OsdpError, Result};
use osdp_core::{Histogram, Record};
use osdp_mechanisms::HistogramMechanism;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Default shard count: enough that 8–16 serving threads touching random
/// tenants rarely share a shard, cheap enough to iterate for pool-wide
/// reports.
const DEFAULT_POOL_SHARDS: usize = 16;

/// One shard of the tenant map.
type Shard<R> = RwLock<HashMap<Arc<str>, Arc<OsdpSession<R>>>>;

/// A sharded, multi-tenant map of release sessions (see the module docs).
pub struct SessionPool<R = Record> {
    shards: Vec<Shard<R>>,
}

impl<R> Default for SessionPool<R> {
    fn default() -> Self {
        Self::with_shards(DEFAULT_POOL_SHARDS)
    }
}

impl<R> std::fmt::Debug for SessionPool<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("tenants", &self.len())
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<R> SessionPool<R> {
    /// An empty pool with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool with an explicit shard count (at least 1).
    pub fn with_shards(shards: usize) -> Self {
        Self { shards: (0..shards.max(1)).map(|_| RwLock::new(HashMap::new())).collect() }
    }

    /// The shard a tenant key hashes to.
    fn shard_of(&self, tenant: &str) -> &Shard<R> {
        &self.shards[shard_index(&tenant, self.shards.len())]
    }

    /// Registers a tenant's session, refusing to replace an existing one —
    /// silently swapping a live session would discard the tenant's spent
    /// budget and audit history. Evict explicitly with
    /// [`SessionPool::remove`] first if replacement is intended.
    pub fn insert(
        &self,
        tenant: impl Into<String>,
        session: OsdpSession<R>,
    ) -> Result<Arc<OsdpSession<R>>> {
        let tenant: Arc<str> = tenant.into().into();
        let mut shard = self.shard_of(&tenant).write();
        if shard.contains_key(&tenant) {
            return Err(OsdpError::InvalidInput(format!(
                "tenant '{tenant}' already has a session; remove it first to replace it \
                 (replacing would discard its budget and audit state)"
            )));
        }
        let session = Arc::new(session);
        shard.insert(tenant, Arc::clone(&session));
        Ok(session)
    }

    /// The tenant's session, registering the one `make` builds on first use.
    /// The shard write lock is held across `make`, so two racing callers
    /// construct the session exactly once; tenants on other shards are
    /// unaffected.
    pub fn get_or_insert_with(
        &self,
        tenant: &str,
        make: impl FnOnce() -> Result<OsdpSession<R>>,
    ) -> Result<Arc<OsdpSession<R>>> {
        let mut shard = self.shard_of(tenant).write();
        if let Some(session) = shard.get(tenant) {
            return Ok(Arc::clone(session));
        }
        let session = Arc::new(make()?);
        shard.insert(tenant.into(), Arc::clone(&session));
        Ok(session)
    }

    /// The tenant's session, if registered.
    pub fn get(&self, tenant: &str) -> Option<Arc<OsdpSession<R>>> {
        self.shard_of(tenant).read().get(tenant).map(Arc::clone)
    }

    /// Evicts a tenant, returning its session.
    ///
    /// Releases may still be **in flight** on other threads when the map
    /// entry disappears: they hold their own clones of the session `Arc`,
    /// so every grant they win lands in the *returned* session's accountant
    /// and audit log — nothing is lost, but the tenant is no longer visible
    /// to [`SessionPool::verify_all_ledgers`]. The operator therefore owns
    /// the final audit: run `osdp_attack::verify_ledger` on the returned
    /// session once its traffic has drained (or use
    /// [`SessionPool::remove_quiesced`], which waits for the drain).
    /// Tested in `tests/concurrent_sessions.rs`.
    pub fn remove(&self, tenant: &str) -> Option<Arc<OsdpSession<R>>> {
        self.shard_of(tenant).write().remove(tenant)
    }

    /// Evicts a tenant and **waits for in-flight releases to quiesce**: the
    /// call returns only once the returned handle is the session's sole
    /// `Arc`, so a final ledger verify observes every release that was
    /// racing the eviction. New releases cannot start (the tenant is
    /// already gone from the map), so the wait is bounded by the drain of
    /// the releases already running.
    ///
    /// Callers holding long-lived session `Arc`s (from
    /// [`SessionPool::get`] / [`SessionPool::insert`]) must drop them
    /// first, or this spins until they do.
    pub fn remove_quiesced(&self, tenant: &str) -> Option<Arc<OsdpSession<R>>> {
        let session = self.remove(tenant)?;
        while Arc::strong_count(&session) > 1 {
            std::thread::yield_now();
        }
        Some(session)
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the pool has no tenants.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// All tenant keys, sorted (shard iteration order is not meaningful).
    pub fn tenants(&self) -> Vec<Arc<str>> {
        let mut all: Vec<Arc<str>> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().map(Arc::clone).collect::<Vec<_>>())
            .collect();
        all.sort();
        all
    }

    /// The tenant's session, or an error naming the unknown tenant.
    fn session(&self, tenant: &str) -> Result<Arc<OsdpSession<R>>> {
        self.get(tenant).ok_or_else(|| {
            OsdpError::InvalidInput(format!("no session registered for tenant '{tenant}'"))
        })
    }

    /// Routes one audited release to the tenant's session
    /// ([`OsdpSession::release`]): the tenant's own accountant is debited,
    /// the tenant's own audit log extended.
    pub fn release(
        &self,
        tenant: &str,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
    ) -> Result<Release> {
        self.session(tenant)?.release(query, mechanism)
    }

    /// Routes a trial batch to the tenant's session
    /// ([`OsdpSession::release_trials`]).
    pub fn release_trials(
        &self,
        tenant: &str,
        query: &SessionQuery<R>,
        mechanism: &dyn HistogramMechanism,
        trials: usize,
    ) -> Result<Vec<Histogram>> {
        self.session(tenant)?.release_trials(query, mechanism, trials)
    }

    /// Routes a whole-pool mechanism batch to the tenant's session
    /// ([`OsdpSession::release_pool`]).
    pub fn release_pool(
        &self,
        tenant: &str,
        query: &SessionQuery<R>,
        pool: &[&dyn HistogramMechanism],
        trials: usize,
    ) -> Result<Vec<PoolRelease>> {
        self.session(tenant)?.release_pool(query, pool, trials)
    }

    /// Sum of ε spent across every tenant — the *sequential*-composition
    /// reading, an upper bound that ignores tenant disjointness.
    pub fn total_spent(&self) -> f64 {
        self.for_each_session(|_, s| s.total_spent()).into_iter().sum()
    }

    /// The pool-wide privacy cost under **parallel composition**
    /// (Theorem 10.2): tenants hold disjoint data, so an adversary's
    /// worst-case view is bounded by the *maximum* per-tenant ε, not the
    /// sum. Zero for an empty pool.
    pub fn parallel_composed_epsilon(&self) -> f64 {
        self.for_each_session(|_, s| s.total_spent()).into_iter().fold(0.0, f64::max)
    }

    /// Verifies **every** tenant's audit ledger against its own budget cap
    /// (`osdp_attack::verify_ledger`), returning one verdict per tenant
    /// plus the parallel-composition total. O(total releases).
    pub fn verify_all_ledgers(&self) -> PoolVerdict {
        let mut tenants = self.for_each_session(|tenant, session| TenantVerdict {
            tenant,
            verdict: verify_ledger(&session.audit_ledger(), session.accountant().limit()),
        });
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let parallel_epsilon = tenants.iter().map(|t| t.verdict.total_epsilon).fold(0.0, f64::max);
        PoolVerdict { tenants, parallel_epsilon }
    }

    /// Applies `f` to every registered session, one shard read lock at a
    /// time.
    fn for_each_session<T>(&self, mut f: impl FnMut(Arc<str>, &OsdpSession<R>) -> T) -> Vec<T> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for (tenant, session) in shard.iter() {
                out.push(f(Arc::clone(tenant), session));
            }
        }
        out
    }
}

/// One tenant's ledger verdict within a [`PoolVerdict`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantVerdict {
    /// The tenant key.
    pub tenant: Arc<str>,
    /// The tenant's ledger verdict against its own cap.
    pub verdict: LedgerVerdict,
}

/// The outcome of [`SessionPool::verify_all_ledgers`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolVerdict {
    /// Per-tenant verdicts, sorted by tenant key.
    pub tenants: Vec<TenantVerdict>,
    /// The pool-wide ε under parallel composition across disjoint tenants
    /// (Theorem 10.2): the maximum per-tenant ledger total.
    pub parallel_epsilon: f64,
}

impl PoolVerdict {
    /// Whether every tenant's ledger upholds the OSDP contract (within its
    /// cap, no PDP entries).
    pub fn all_upheld(&self) -> bool {
        self.tenants.iter().all(|t| t.verdict.upholds_osdp())
    }

    /// The tenants whose ledgers fail, by key.
    pub fn violating_tenants(&self) -> Vec<Arc<str>> {
        self.tenants
            .iter()
            .filter(|t| !t.verdict.upholds_osdp())
            .map(|t| Arc::clone(&t.tenant))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use osdp_core::policy::ClosurePolicy;
    use osdp_core::Database;
    use osdp_mechanisms::{OsdpLaplaceL1, Suppress};

    fn tenant_session(seed: u64, budget: f64) -> OsdpSession<u32> {
        let db: Database<u32> = (0..100u32).collect();
        SessionBuilder::new(db)
            .policy(ClosurePolicy::new("upper-half", |&v: &u32| v >= 50), "P50")
            .budget(budget)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn mod8_query() -> SessionQuery<u32> {
        SessionQuery::count_by("mod8", 8, |&v: &u32| Some((v % 8) as usize))
    }

    #[test]
    fn routes_releases_to_independent_tenant_budgets() {
        let pool: SessionPool<u32> = SessionPool::new();
        pool.insert("acme", tenant_session(1, 1.0)).unwrap();
        pool.insert("globex", tenant_session(2, 2.0)).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.tenants(), vec![Arc::from("acme"), Arc::from("globex")]);

        let m = OsdpLaplaceL1::new(0.75).unwrap();
        pool.release("acme", &mod8_query(), &m).unwrap();
        // acme is now too drained for a second 0.75 release; globex is not.
        assert!(pool.release("acme", &mod8_query(), &m).is_err());
        pool.release("globex", &mod8_query(), &m).unwrap();
        pool.release("globex", &mod8_query(), &m).unwrap();

        assert_eq!(pool.get("acme").unwrap().total_spent(), 0.75);
        assert_eq!(pool.get("globex").unwrap().total_spent(), 1.5);
        assert_eq!(pool.total_spent(), 2.25);
        // Disjoint tenants compose in parallel: max, not sum.
        assert_eq!(pool.parallel_composed_epsilon(), 1.5);

        let verdict = pool.verify_all_ledgers();
        assert!(verdict.all_upheld());
        assert_eq!(verdict.parallel_epsilon, 1.5);
        assert_eq!(verdict.tenants.len(), 2);
        assert!(verdict.violating_tenants().is_empty());

        // Unknown tenants are refused by name.
        assert!(pool.release("initech", &mod8_query(), &m).is_err());
    }

    #[test]
    fn insert_refuses_to_replace_a_live_session() {
        let pool: SessionPool<u32> = SessionPool::new();
        pool.insert("acme", tenant_session(1, 1.0)).unwrap();
        assert!(pool.insert("acme", tenant_session(9, 9.0)).is_err());
        // Explicit eviction allows re-registration.
        let old = pool.remove("acme").unwrap();
        assert_eq!(old.total_spent(), 0.0);
        pool.insert("acme", tenant_session(9, 9.0)).unwrap();
        assert_eq!(pool.get("acme").unwrap().remaining_budget(), Some(9.0));
    }

    #[test]
    fn get_or_insert_builds_exactly_once() {
        let pool: SessionPool<u32> = SessionPool::new();
        let a = pool.get_or_insert_with("acme", || Ok(tenant_session(1, 1.0))).unwrap();
        let b =
            pool.get_or_insert_with("acme", || panic!("must not rebuild a live session")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A failed build registers nothing.
        let err: Result<_> =
            pool.get_or_insert_with("bad", || Err(OsdpError::InvalidInput("boom".into())));
        assert!(err.is_err());
        assert!(pool.get("bad").is_none());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn pdp_tenants_fail_pool_verification() {
        let pool: SessionPool<u32> = SessionPool::new();
        pool.insert("acme", tenant_session(1, 1.0)).unwrap();
        pool.insert("shady", tenant_session(2, 200.0)).unwrap();
        pool.release("acme", &mod8_query(), &OsdpLaplaceL1::new(0.5).unwrap()).unwrap();
        pool.release("shady", &mod8_query(), &Suppress::new(10.0).unwrap()).unwrap();
        let verdict = pool.verify_all_ledgers();
        assert!(!verdict.all_upheld());
        assert_eq!(verdict.violating_tenants(), vec![Arc::from("shady")]);
        assert_eq!(verdict.parallel_epsilon, 10.0);
    }
}
