//! A hierarchical (binary-tree) DP histogram baseline.
//!
//! Not used by the paper's headline comparison (which pits the OSDP
//! algorithms against Laplace and DAWA), but included as an additional DP
//! baseline for the regret pools and the ablation benches. The mechanism is
//! the classic H2/"Boost" approach of Hay et al.: release noisy counts for
//! every node of a binary tree over the domain (splitting the budget evenly
//! across levels), then post-process with weighted averaging (up sweep) and
//! mean-consistency (down sweep).

use osdp_core::error::{validate_epsilon, Result};
use osdp_core::Histogram;
use osdp_noise::Laplace;
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The hierarchical-counts DP mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hierarchical {
    epsilon: f64,
}

impl Hierarchical {
    /// Creates the mechanism for a total budget ε.
    pub fn new(epsilon: f64) -> Result<Self> {
        validate_epsilon(epsilon)?;
        Ok(Self { epsilon })
    }

    /// The privacy budget.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Releases an ε-DP histogram estimate.
    pub fn release<R: Rng + ?Sized>(&self, hist: &Histogram, rng: &mut R) -> Histogram {
        let n = hist.len();
        if n == 0 {
            return Histogram::zeros(0);
        }
        // Pad to the next power of two with empty bins.
        let size = n.next_power_of_two();
        let levels = (size as f64).log2() as usize + 1;
        let eps_per_level = self.epsilon / levels as f64;
        let noise = Laplace::for_epsilon(2.0, eps_per_level).expect("validated");

        // Tree stored level by level: level 0 is the root.
        // node_count(level) = 2^level, node width = size >> level.
        let mut noisy: Vec<Vec<f64>> = Vec::with_capacity(levels);
        for level in 0..levels {
            let nodes = 1usize << level;
            let width = size >> level;
            let mut values = Vec::with_capacity(nodes);
            for node in 0..nodes {
                let start = node * width;
                let end = ((node + 1) * width).min(n);
                let true_count =
                    if start < n { hist.range_sum(start..end.max(start)) } else { 0.0 };
                values.push(true_count + noise.sample(rng));
            }
            noisy.push(values);
        }

        // Up sweep: weighted average of a node's own noisy count and the sum
        // of its children's averaged estimates. With equal per-node variance V
        // the children sum has variance 2V at the leaves' parents and the
        // standard recursive weights apply.
        let mut averaged = noisy.clone();
        for level in (0..levels - 1).rev() {
            let child_level = level + 1;
            for node in 0..averaged[level].len() {
                let left = averaged[child_level][2 * node];
                let right = averaged[child_level][2 * node + 1];
                // Weight from Hay et al.: alpha = (2^h - 2^(h-1)) / (2^h - 1)
                // where h is the node's height; for a uniform-variance tree
                // this reduces to 2/3 just above the leaves and approaches 1/2
                // near the root. We use the height-dependent form.
                let height = (levels - 1 - level) as i32;
                let pow = 2f64.powi(height);
                let alpha = (pow - pow / 2.0) / (pow - 1.0);
                averaged[level][node] = alpha * noisy[level][node] + (1.0 - alpha) * (left + right);
            }
        }

        // Down sweep: enforce that children sum to their parent.
        let mut consistent = averaged.clone();
        for level in 1..levels {
            for node in 0..consistent[level].len() {
                let parent = consistent[level - 1][node / 2];
                let sibling_sum =
                    averaged[level][2 * (node / 2)] + averaged[level][2 * (node / 2) + 1];
                let adjustment = (parent - sibling_sum) / 2.0;
                consistent[level][node] = averaged[level][node] + adjustment;
            }
        }

        let leaves = &consistent[levels - 1];
        Histogram::from_counts(leaves.iter().take(n).copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdp_metrics::l1_error;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(123)
    }

    #[test]
    fn construction_validates_epsilon() {
        assert!(Hierarchical::new(1.0).is_ok());
        assert!(Hierarchical::new(0.0).is_err());
        assert_eq!(Hierarchical::new(2.0).unwrap().epsilon(), 2.0);
    }

    #[test]
    fn release_shape_and_empty_input() {
        let m = Hierarchical::new(1.0).unwrap();
        let mut r = rng();
        assert_eq!(m.release(&Histogram::zeros(0), &mut r).len(), 0);
        let hist = Histogram::from_counts((0..100).map(|i| i as f64).collect());
        let est = m.release(&hist, &mut r);
        assert_eq!(est.len(), 100);
    }

    #[test]
    fn consistency_children_sum_to_total() {
        // After the down sweep the leaf estimates should sum approximately to
        // the root estimate, which itself is close to the true total for a
        // large epsilon.
        let m = Hierarchical::new(50.0).unwrap();
        let mut r = rng();
        let hist = Histogram::from_counts(vec![7.0; 64]);
        let est = m.release(&hist, &mut r);
        assert!((est.total() - hist.total()).abs() < 5.0, "total {}", est.total());
    }

    #[test]
    fn hierarchical_is_reasonably_accurate_on_ranges() {
        // Hierarchical structures shine on range queries; as a histogram
        // estimator it should at least land within a few times the identity
        // mechanism on smooth data.
        use crate::identity::Identity;
        let mut r = rng();
        let hist = Histogram::from_counts(vec![50.0; 512]);
        let eps = 0.5;
        let h = Hierarchical::new(eps).unwrap();
        let id = Identity::new(eps).unwrap();
        let mut h_err = 0.0;
        let mut id_err = 0.0;
        for _ in 0..5 {
            h_err += l1_error(&hist, &h.release(&hist, &mut r)).unwrap();
            id_err += l1_error(&hist, &id.release(&hist, &mut r)).unwrap();
        }
        assert!(h_err < 10.0 * id_err, "hierarchical error {h_err} vs identity {id_err}");
    }

    #[test]
    fn non_power_of_two_domains_are_handled() {
        let m = Hierarchical::new(1.0).unwrap();
        let mut r = rng();
        for n in [3usize, 17, 100, 513] {
            let hist = Histogram::from_counts(vec![5.0; n]);
            assert_eq!(m.release(&hist, &mut r).len(), n);
        }
    }
}
