//! Bucket cost functions for the DAWA partitioning stage.
//!
//! The cost of grouping an interval `B` of the domain into one bucket is the
//! L1 deviation of its counts from the bucket mean:
//!
//! ```text
//! dev(B) = Σ_{i ∈ B} |x_i − mean(B)|
//! ```
//!
//! Buckets with low deviation lose little information when represented by a
//! single (noisy) total that is expanded uniformly; buckets with high
//! deviation should be split further. Changing a single record changes one
//! count by at most 1 (bounded DP changes two counts), so `dev` has low,
//! bounded sensitivity and can be evaluated on noisy values during the
//! private partitioning stage.

use osdp_core::Histogram;

/// Pre-computed prefix sums enabling O(1) bucket means and O(len) deviations.
#[derive(Debug, Clone)]
pub struct CostEvaluator<'a> {
    counts: &'a [f64],
    prefix: Vec<f64>,
}

impl<'a> CostEvaluator<'a> {
    /// Prepares the evaluator for a histogram.
    pub fn new(hist: &'a Histogram) -> Self {
        Self { counts: hist.counts(), prefix: hist.prefix_sums() }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the underlying histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Sum of the counts in `[start, end)`.
    pub fn interval_sum(&self, start: usize, end: usize) -> f64 {
        self.prefix[end] - self.prefix[start]
    }

    /// Mean count over `[start, end)`.
    pub fn interval_mean(&self, start: usize, end: usize) -> f64 {
        let len = end.saturating_sub(start);
        if len == 0 {
            0.0
        } else {
            self.interval_sum(start, end) / len as f64
        }
    }

    /// The L1 deviation `dev([start, end))`.
    pub fn deviation(&self, start: usize, end: usize) -> f64 {
        let mean = self.interval_mean(start, end);
        self.counts[start..end].iter().map(|c| (c - mean).abs()).sum()
    }

    /// The cost used by the partitioner: the deviation of the interval, which
    /// approximates the expected L1 error of representing the interval by a
    /// uniform bucket (noise error is accounted for separately by the
    /// partitioner's per-bucket constant).
    pub fn bucket_cost(&self, start: usize, end: usize) -> f64 {
        self.deviation(start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let h = Histogram::from_counts(vec![1.0, 3.0, 5.0, 7.0]);
        let ev = CostEvaluator::new(&h);
        assert_eq!(ev.len(), 4);
        assert!(!ev.is_empty());
        assert_eq!(ev.interval_sum(0, 4), 16.0);
        assert_eq!(ev.interval_sum(1, 3), 8.0);
        assert_eq!(ev.interval_mean(1, 3), 4.0);
        assert_eq!(ev.interval_mean(2, 2), 0.0);
    }

    #[test]
    fn deviation_zero_for_uniform_intervals() {
        let h = Histogram::from_counts(vec![4.0, 4.0, 4.0, 9.0]);
        let ev = CostEvaluator::new(&h);
        assert_eq!(ev.deviation(0, 3), 0.0);
        assert!(ev.deviation(0, 4) > 0.0);
        assert_eq!(ev.bucket_cost(0, 3), 0.0);
    }

    #[test]
    fn deviation_matches_hand_computation() {
        let h = Histogram::from_counts(vec![0.0, 10.0]);
        let ev = CostEvaluator::new(&h);
        // mean 5, deviations |0-5| + |10-5| = 10
        assert_eq!(ev.deviation(0, 2), 10.0);
    }

    #[test]
    fn splitting_a_spike_reduces_cost() {
        let h = Histogram::from_counts(vec![0.0, 0.0, 100.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let ev = CostEvaluator::new(&h);
        let whole = ev.bucket_cost(0, 8);
        let split = ev.bucket_cost(0, 2) + ev.bucket_cost(2, 3) + ev.bucket_cost(3, 8);
        assert!(split < whole);
        assert_eq!(split, 0.0, "isolating the spike leaves perfectly uniform buckets");
    }
}
