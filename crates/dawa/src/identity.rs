//! The Identity (per-bin Laplace) DP baseline.
//!
//! This is the Laplace mechanism of Definition 2.5 applied to the histogram
//! query: every bin receives independent `Lap(2/ε)` noise (sensitivity 2 in
//! the bounded model, since changing one record's value moves a unit of count
//! between two bins).

use osdp_core::error::{validate_epsilon, Result};
use osdp_core::Histogram;
use osdp_noise::Laplace;
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The per-bin Laplace baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Identity {
    epsilon: f64,
}

impl Identity {
    /// Creates the mechanism for a given total budget ε.
    pub fn new(epsilon: f64) -> Result<Self> {
        validate_epsilon(epsilon)?;
        Ok(Self { epsilon })
    }

    /// The privacy budget.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Expected L1 error of a `d`-bin release: `d · 2/ε` (the `2d/ε` quoted in
    /// Theorem 5.1 of the OSDP paper).
    pub fn expected_l1_error(&self, bins: usize) -> f64 {
        bins as f64 * 2.0 / self.epsilon
    }

    /// Releases an ε-DP histogram estimate.
    pub fn release<R: Rng + ?Sized>(&self, hist: &Histogram, rng: &mut R) -> Histogram {
        let noise = Laplace::for_epsilon(2.0, self.epsilon).expect("validated");
        Histogram::from_counts(hist.counts().iter().map(|&c| c + noise.sample(rng)).collect())
    }

    /// Releases and clamps negative counts to zero (common post-processing).
    pub fn release_non_negative<R: Rng + ?Sized>(
        &self,
        hist: &Histogram,
        rng: &mut R,
    ) -> Histogram {
        let mut estimate = self.release(hist, rng);
        estimate.clamp_non_negative();
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn construction_and_expected_error() {
        assert!(Identity::new(0.0).is_err());
        let m = Identity::new(0.5).unwrap();
        assert_eq!(m.epsilon(), 0.5);
        assert_eq!(m.expected_l1_error(100), 400.0);
    }

    #[test]
    fn release_is_unbiased_and_has_right_shape() {
        let m = Identity::new(1.0).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let hist = Histogram::from_counts(vec![10.0; 64]);
        let mut sums = vec![0.0; 64];
        let trials = 2_000;
        for _ in 0..trials {
            let est = m.release(&hist, &mut rng);
            assert_eq!(est.len(), 64);
            for (s, &v) in sums.iter_mut().zip(est.counts()) {
                *s += v;
            }
        }
        let worst = sums.iter().map(|s| (s / trials as f64 - 10.0).abs()).fold(0.0f64, f64::max);
        assert!(worst < 0.5, "per-bin mean deviates by {worst}");
    }

    #[test]
    fn empirical_l1_error_tracks_the_analytic_value() {
        let m = Identity::new(0.5).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(10);
        let hist = Histogram::from_counts(vec![100.0; 256]);
        let mut total = 0.0;
        let trials = 50;
        for _ in 0..trials {
            total += hist.l1_distance(&m.release(&hist, &mut rng)).unwrap();
        }
        let mean_error = total / trials as f64;
        let expected = m.expected_l1_error(256);
        assert!(
            (mean_error - expected).abs() < 0.15 * expected,
            "empirical {mean_error} vs expected {expected}"
        );
    }

    #[test]
    fn non_negative_release_clamps() {
        let m = Identity::new(0.1).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let hist = Histogram::zeros(128);
        let est = m.release_non_negative(&hist, &mut rng);
        assert!(est.is_non_negative());
        // The unclamped release of an all-zero histogram must contain
        // negatives (with overwhelming probability over 128 bins).
        let raw = m.release(&hist, &mut rng);
        assert!(raw.counts().iter().any(|&c| c < 0.0));
    }
}
