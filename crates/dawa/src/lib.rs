//! # osdp-dawa
//!
//! A from-scratch implementation of the **DAWA** family of differentially
//! private histogram-release algorithms, used by the paper as the
//! state-of-the-art DP baseline (Sections 5.2 and 6.3.3) and as the DP stage
//! of the hybrid `DAWAz` algorithm.
//!
//! DAWA (Li, Hay, Miklau; *A Data- and Workload-Aware Algorithm for Range
//! Queries Under Differential Privacy*, VLDB 2014) is a **two-phase**
//! algorithm:
//!
//! 1. **Private partitioning** (budget `ε₁ = ρ·ε`): the domain is split into
//!    buckets inside which the data is approximately uniform. Bucket quality
//!    is measured by the L1 deviation from the bucket mean, evaluated on
//!    noisy costs so the stage itself is differentially private. Our
//!    implementation follows the original's strategy of considering
//!    dyadic-interval candidates and merging bottom-up (the original's
//!    dynamic program over arbitrary intervals is approximated by a
//!    bottom-up merge over a binary tree of intervals, which preserves the
//!    qualitative behaviour: large uniform regions get merged, spiky regions
//!    stay fine-grained).
//! 2. **Bucket estimation** (budget `ε₂ = (1 − ρ)·ε`): each bucket's total is
//!    released with Laplace noise of sensitivity 2 and expanded uniformly
//!    over the bucket's bins.
//!
//! The crate also ships the [`Identity`] (per-bin Laplace) baseline and a
//! [`Hierarchical`] (binary-tree) baseline used by the regret pools and the
//! ablation benches.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cost;
pub mod estimate;
pub mod hierarchical;
pub mod identity;
pub mod partition;

pub use estimate::{Dawa, DawaResult, DawaScratch};
pub use hierarchical::Hierarchical;
pub use identity::Identity;
pub use partition::{Partition, PartitionScratch, Partitioner};
