//! Stage 2 of DAWA and the end-to-end algorithm.
//!
//! Given the partition produced by stage 1, stage 2 releases each bucket's
//! total with Laplace noise (histogram sensitivity 2 in the bounded model)
//! and expands it uniformly over the bucket's bins. The full algorithm
//! composes the ε₁ partitioning stage with the ε₂ estimation stage:
//! `ε = ε₁ + ε₂`.

use crate::partition::{Partition, PartitionScratch, Partitioner};
use osdp_core::error::{validate_epsilon, validate_fraction, Result};
use osdp_core::Histogram;
use osdp_noise::Laplace;
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The share of the budget DAWA spends on partitioning by default (the value
/// used by the original implementation).
pub const DEFAULT_PARTITION_SHARE: f64 = 0.25;

/// The DAWA differentially private histogram-release algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dawa {
    epsilon: f64,
    partition_share: f64,
}

/// The output of a DAWA release: the estimate plus the partition that
/// produced it (needed by `DAWAz`'s zero-bin redistribution step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DawaResult {
    /// The estimated histogram.
    pub estimate: Histogram,
    /// The buckets chosen by the private partitioning stage.
    pub partition: Partition,
    /// The noisy bucket totals, aligned with `partition`.
    pub bucket_totals: Vec<f64>,
}

/// Reusable buffers for [`Dawa::release_into`], the allocation-free release
/// path. After a call, [`DawaScratch::partition`] and
/// [`DawaScratch::bucket_totals`] hold the same data a [`DawaResult`] would —
/// borrowed instead of owned, so a caller running release after release
/// (trial batches, `DAWAz`'s DP stage) stops paying DAWA's per-release
/// allocation bill.
#[derive(Debug, Default)]
pub struct DawaScratch {
    partitioner: PartitionScratch,
    /// The partition chosen by stage 1 of the most recent release.
    pub partition: Partition,
    /// The noisy bucket totals of stage 2, aligned with `partition`.
    pub bucket_totals: Vec<f64>,
}

impl DawaScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Dawa {
    /// Creates a DAWA instance with the default 25% / 75% budget split.
    pub fn new(epsilon: f64) -> Result<Self> {
        Self::with_partition_share(epsilon, DEFAULT_PARTITION_SHARE)
    }

    /// Creates a DAWA instance with an explicit partitioning budget share.
    pub fn with_partition_share(epsilon: f64, partition_share: f64) -> Result<Self> {
        validate_epsilon(epsilon)?;
        validate_fraction("partition_share", partition_share)?;
        Ok(Self { epsilon, partition_share })
    }

    /// Total privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Budget spent on stage 1.
    pub fn epsilon1(&self) -> f64 {
        self.epsilon * self.partition_share
    }

    /// Budget spent on stage 2.
    pub fn epsilon2(&self) -> f64 {
        self.epsilon * (1.0 - self.partition_share)
    }

    /// Releases an ε-DP estimate of the histogram.
    pub fn release<R: Rng + ?Sized>(&self, hist: &Histogram, rng: &mut R) -> DawaResult {
        let partitioner = Partitioner::new(self.epsilon1(), self.epsilon2())
            .expect("budgets validated at construction");
        let partition = partitioner.partition(hist, rng);
        self.release_with_partition(hist, partition, rng)
    }

    /// Stage 2 only: releases bucket totals for a given partition and expands
    /// them uniformly. Exposed separately for the ablation benches (it lets a
    /// caller compare partitions while holding stage 2 fixed).
    pub fn release_with_partition<R: Rng + ?Sized>(
        &self,
        hist: &Histogram,
        partition: Partition,
        rng: &mut R,
    ) -> DawaResult {
        // Bounded-DP histogram sensitivity is 2: one record changing value
        // moves one unit of count between two buckets.
        let noise = Laplace::for_epsilon(2.0, self.epsilon2()).expect("validated at construction");
        let mut estimate = Histogram::zeros(hist.len());
        let mut bucket_totals = Vec::with_capacity(partition.len());
        for &(start, end) in &partition {
            let true_total = hist.range_sum(start..end);
            let noisy_total = (true_total + noise.sample(rng)).max(0.0);
            bucket_totals.push(noisy_total);
            let per_bin = noisy_total / (end - start) as f64;
            for i in start..end {
                estimate.set(i, per_bin);
            }
        }
        DawaResult { estimate, partition, bucket_totals }
    }

    /// The allocation-free equivalent of [`Dawa::release`], writing the
    /// estimate into `out` (resized and overwritten) and leaving the chosen
    /// partition and noisy bucket totals in `scratch`.
    ///
    /// **Contract**: bitwise-identical output and RNG consumption to
    /// [`Dawa::release`], which stays the oracle (property-tested). The win
    /// is mechanical: the arena partitioner plus reused buffers remove every
    /// per-release allocation except the cost evaluator's prefix sums.
    pub fn release_into<R: Rng + ?Sized>(
        &self,
        hist: &Histogram,
        rng: &mut R,
        scratch: &mut DawaScratch,
        out: &mut Histogram,
    ) {
        let partitioner = Partitioner::new(self.epsilon1(), self.epsilon2())
            .expect("budgets validated at construction");
        let DawaScratch { partitioner: partition_scratch, partition, bucket_totals } = scratch;
        partitioner.partition_into(hist, rng, partition_scratch, partition);

        // Stage 2 noise, one draw per bucket, pre-drawn as a block through
        // the fill kernel (the reference path draws the identical sequence
        // one bucket at a time).
        let noise = Laplace::for_epsilon(2.0, self.epsilon2()).expect("validated at construction");
        let noise_buf = partition_scratch.noise_buffer();
        noise_buf.resize(partition.len(), 0.0);
        noise.fill(noise_buf, rng);

        out.reset_zeroed(hist.len());
        let counts = out.counts_mut();
        bucket_totals.clear();
        bucket_totals.reserve(partition.len());
        for (&(start, end), &z) in partition.iter().zip(noise_buf.iter()) {
            let true_total = hist.range_sum(start..end);
            let noisy_total = (true_total + z).max(0.0);
            bucket_totals.push(noisy_total);
            let per_bin = noisy_total / (end - start) as f64;
            for slot in &mut counts[start..end] {
                *slot = per_bin;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdp_metrics::mean_relative_error;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(77)
    }

    #[test]
    fn construction_and_budget_split() {
        let d = Dawa::new(1.0).unwrap();
        assert_eq!(d.epsilon(), 1.0);
        assert!((d.epsilon1() - 0.25).abs() < 1e-12);
        assert!((d.epsilon2() - 0.75).abs() < 1e-12);
        assert!(Dawa::new(0.0).is_err());
        assert!(Dawa::with_partition_share(1.0, 0.0).is_err());
        assert!(Dawa::with_partition_share(1.0, 1.0).is_err());
        let custom = Dawa::with_partition_share(2.0, 0.5).unwrap();
        assert_eq!(custom.epsilon1(), 1.0);
        assert_eq!(custom.epsilon2(), 1.0);
    }

    #[test]
    fn release_has_right_shape_and_nonnegative_counts() {
        let d = Dawa::new(1.0).unwrap();
        let mut r = rng();
        let hist = Histogram::from_counts((0..128).map(|i| ((i / 16) * 10) as f64).collect());
        let result = d.release(&hist, &mut r);
        assert_eq!(result.estimate.len(), hist.len());
        assert!(result.estimate.is_non_negative());
        assert_eq!(result.bucket_totals.len(), result.partition.len());
        assert!(crate::partition::is_valid_partition(&result.partition, hist.len()));
        // Bins inside a bucket share the same estimate.
        for (b, &(start, end)) in result.partition.iter().enumerate() {
            let per_bin = result.bucket_totals[b] / (end - start) as f64;
            for i in start..end {
                assert!((result.estimate.get(i) - per_bin).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn release_into_matches_release_bitwise() {
        let d = Dawa::new(0.7).unwrap();
        let hist = Histogram::from_counts((0..512).map(|i| ((i / 32) * 7) as f64).collect());
        let mut scratch = DawaScratch::new();
        let mut out = Histogram::zeros(0);
        for seed in [1u64, 44, 901] {
            let reference = d.release(&hist, &mut ChaCha12Rng::seed_from_u64(seed));
            // Scratch and output buffer reused across seeds.
            d.release_into(&hist, &mut ChaCha12Rng::seed_from_u64(seed), &mut scratch, &mut out);
            assert_eq!(reference.estimate, out);
            assert_eq!(reference.partition, scratch.partition);
            assert_eq!(reference.bucket_totals, scratch.bucket_totals);
        }
    }

    #[test]
    fn accuracy_improves_with_larger_epsilon() {
        let mut r = rng();
        let hist =
            Histogram::from_counts((0..512).map(|i| if i < 256 { 100.0 } else { 5.0 }).collect());
        let mre_of = |eps: f64, r: &mut ChaCha12Rng| {
            let d = Dawa::new(eps).unwrap();
            let mut total = 0.0;
            for _ in 0..5 {
                total += mean_relative_error(&hist, &d.release(&hist, r).estimate).unwrap();
            }
            total / 5.0
        };
        let low = mre_of(0.05, &mut r);
        let high = mre_of(2.0, &mut r);
        assert!(high < low, "MRE at eps=2 ({high}) should beat eps=0.05 ({low})");
    }

    #[test]
    fn dawa_beats_identity_on_clustered_data() {
        // DAWA's raison d'être: on piecewise-constant data the partition
        // averages away most of the noise.
        use crate::identity::Identity;
        let mut r = rng();
        let counts: Vec<f64> = (0..1024)
            .map(|i| match i / 128 {
                0 | 1 => 40.0,
                2..=4 => 200.0,
                _ => 3.0,
            })
            .collect();
        let hist = Histogram::from_counts(counts);
        let eps = 0.05;
        let dawa = Dawa::new(eps).unwrap();
        let identity = Identity::new(eps).unwrap();
        let mut dawa_err = 0.0;
        let mut id_err = 0.0;
        for _ in 0..5 {
            dawa_err += mean_relative_error(&hist, &dawa.release(&hist, &mut r).estimate).unwrap();
            id_err += mean_relative_error(&hist, &identity.release(&hist, &mut r)).unwrap();
        }
        assert!(
            dawa_err < id_err,
            "DAWA ({dawa_err}) should beat the Laplace identity mechanism ({id_err}) on clustered data"
        );
    }

    #[test]
    fn release_with_fixed_partition_respects_it() {
        let d = Dawa::new(1.0).unwrap();
        let mut r = rng();
        let hist = Histogram::from_counts(vec![1.0, 2.0, 3.0, 4.0]);
        let partition = vec![(0usize, 2usize), (2, 4)];
        let result = d.release_with_partition(&hist, partition.clone(), &mut r);
        assert_eq!(result.partition, partition);
        assert_eq!(result.bucket_totals.len(), 2);
    }
}
