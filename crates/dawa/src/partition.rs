//! Stage 1 of DAWA: ε₁-private, data-aware partitioning of the domain.
//!
//! The partitioner searches for a partition of the domain into buckets that
//! minimises the estimated total error of the second stage:
//!
//! ```text
//! cost(partition) = Σ_B [ dev(B) + c ]
//! ```
//!
//! where `dev(B)` is the L1 deviation of bucket `B` from its mean
//! (approximation error of uniform expansion) and `c` is the expected L1
//! error of the noisy bucket total added in stage 2 (`c = 2/ε₂`).
//!
//! The search follows DAWA's dyadic strategy: candidate buckets are intervals
//! of a binary tree over the domain and the optimal dyadic partition is found
//! by a bottom-up merge. To make the stage ε₁-differentially private every
//! deviation is evaluated with Laplace noise whose scale accounts for the
//! number of tree levels a single record can influence.

use crate::cost::CostEvaluator;
use osdp_core::error::{validate_epsilon, Result};
use osdp_core::Histogram;
use osdp_noise::Laplace;
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A partition of `0..domain` into consecutive, non-overlapping buckets
/// (half-open intervals), in increasing order.
pub type Partition = Vec<(usize, usize)>;

/// Reusable buffers for the allocation-free partitioning path.
///
/// The reference [`Partitioner::partition`] allocates one `Vec` per tree node
/// (≈ 2·domain small allocations per release) and carries 32-byte node
/// structs through every merge. The arena path exploits a structural fact of
/// the dyadic merge (including its odd-node carry rule): the node at
/// `(level, index)` always covers exactly
/// `[index << level, min(index << level + 2^level, domain))`, so the only
/// per-node state worth storing is the best cost and one decision bit. A
/// scratch amortizes to zero allocations once it has been through one
/// release of the same domain size.
#[derive(Debug, Default)]
pub struct PartitionScratch {
    /// `costs[l][j]`: best cost of node `j` at tree level `l` (0 = leaves).
    costs: Vec<Vec<f64>>,
    /// `merged[l][j]`: whether node `j`'s best solution is the single merged
    /// bucket (`true`) or its children's concatenated partitions.
    merged: Vec<Vec<bool>>,
    /// Per-level noise block (leaf costs, then one draw per attempted merge).
    noise: Vec<f64>,
    /// DFS stack of `(level, index)` used by partition reconstruction.
    stack: Vec<(usize, usize)>,
}

impl PartitionScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The noise block, free for reuse between partitioning runs (stage 2 of
    /// `Dawa::release_into` borrows it for the bucket-total draws).
    pub(crate) fn noise_buffer(&mut self) -> &mut Vec<f64> {
        &mut self.noise
    }

    /// Clears and returns handles to level `depth`'s buffers, growing the
    /// per-level vectors on first use.
    fn level_mut(&mut self, depth: usize) -> (&mut Vec<f64>, &mut Vec<bool>) {
        while self.costs.len() <= depth {
            self.costs.push(Vec::new());
            self.merged.push(Vec::new());
        }
        let costs = &mut self.costs[depth];
        let merged = &mut self.merged[depth];
        costs.clear();
        merged.clear();
        (costs, merged)
    }
}

/// The interval covered by dyadic-tree node `(level, index)` over a domain
/// of `n` bins (the odd-carry rule preserves this invariant: a carried node
/// keeps its index scaled by 2 and always sits at the ragged right edge).
#[inline]
fn node_interval(level: usize, index: usize, n: usize) -> (usize, usize) {
    let start = index << level;
    (start, (start + (1usize << level)).min(n))
}

/// The ε₁-private dyadic partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Partitioner {
    epsilon1: f64,
    bucket_constant: f64,
}

impl Partitioner {
    /// Creates a partitioner.
    ///
    /// * `epsilon1` — privacy budget of the partitioning stage.
    /// * `epsilon2` — budget that stage 2 will use; it only enters the cost
    ///   model (per-bucket constant `2/ε₂`), not the privacy accounting of
    ///   this stage.
    pub fn new(epsilon1: f64, epsilon2: f64) -> Result<Self> {
        validate_epsilon(epsilon1)?;
        validate_epsilon(epsilon2)?;
        Ok(Self { epsilon1, bucket_constant: 2.0 / epsilon2 })
    }

    /// The per-bucket noise constant `c` of the cost model.
    pub fn bucket_constant(&self) -> f64 {
        self.bucket_constant
    }

    /// Computes an ε₁-private partition of the histogram's domain.
    ///
    /// A single record influences at most two bins (bounded DP), each bin
    /// belongs to one candidate interval per tree level, and a unit change of
    /// a count changes an interval's deviation by at most 2 — so the total L1
    /// sensitivity of all evaluated costs is `4·levels` and each cost is
    /// perturbed with `Lap(4·levels / ε₁)`.
    pub fn partition<R: Rng + ?Sized>(&self, hist: &Histogram, rng: &mut R) -> Partition {
        let n = hist.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(0, 1)];
        }
        let ev = CostEvaluator::new(hist);
        let levels = (n as f64).log2().ceil().max(1.0);
        let noise = Laplace::centered(4.0 * levels / self.epsilon1)
            .expect("scale is positive by construction");

        // Bottom-up merge. Each node carries (start, end, cost of the best
        // dyadic partition inside it, that partition).
        struct Node {
            start: usize,
            end: usize,
            cost: f64,
            partition: Partition,
        }

        let mut level: Vec<Node> = (0..n)
            .map(|i| Node {
                start: i,
                end: i + 1,
                cost: self.bucket_constant + noise.sample(rng),
                partition: vec![(i, i + 1)],
            })
            .collect();

        while level.len() > 1 {
            let mut next: Vec<Node> = Vec::with_capacity(level.len() / 2 + 1);
            let mut iter = level.into_iter();
            while let Some(left) = iter.next() {
                let Some(right) = iter.next() else {
                    // Odd node carries straight up.
                    next.push(left);
                    break;
                };
                let merged_cost = ev.bucket_cost(left.start, right.end)
                    + self.bucket_constant
                    + noise.sample(rng);
                let split_cost = left.cost + right.cost;
                if merged_cost <= split_cost {
                    next.push(Node {
                        start: left.start,
                        end: right.end,
                        cost: merged_cost,
                        partition: vec![(left.start, right.end)],
                    });
                } else {
                    let mut partition = left.partition;
                    partition.extend(right.partition);
                    next.push(Node {
                        start: left.start,
                        end: right.end,
                        cost: split_cost,
                        partition,
                    });
                }
            }
            level = next;
        }
        level.pop().map(|n| n.partition).unwrap_or_default()
    }

    /// The allocation-free equivalent of [`Partitioner::partition`], writing
    /// the chosen partition into `out` and reusing `scratch` across calls.
    ///
    /// **Contract**: consumes the RNG draw-for-draw like the reference path
    /// (one leaf cost per bin, one noise draw per attempted merge, in the
    /// same order) and produces the bitwise-identical partition — the
    /// reference `partition` stays the oracle, and the parity is
    /// property-tested. What changes is purely mechanical: tree levels live
    /// in flat arena buffers and each merge stores a decision bit instead of
    /// cloning bucket lists, so the ≈ `2·domain` per-node `Vec` allocations
    /// of the reference path disappear from the hot loop.
    pub fn partition_into<R: Rng + ?Sized>(
        &self,
        hist: &Histogram,
        rng: &mut R,
        scratch: &mut PartitionScratch,
        out: &mut Partition,
    ) {
        out.clear();
        let n = hist.len();
        if n == 0 {
            return;
        }
        if n == 1 {
            out.push((0, 1));
            return;
        }
        let ev = CostEvaluator::new(hist);
        let levels = (n as f64).log2().ceil().max(1.0);
        let noise = Laplace::centered(4.0 * levels / self.epsilon1)
            .expect("scale is positive by construction");

        // Level 0: one leaf per bin, its noise drawn through the block fill
        // kernel (bitwise-identical to the reference path's per-leaf
        // sampling). A leaf's best solution is itself, so its merged bit is
        // set.
        let mut depth = 0usize;
        scratch.noise.resize(n, 0.0);
        noise.fill(&mut scratch.noise, rng);
        {
            let noise_buf = std::mem::take(&mut scratch.noise);
            let (costs, merged) = scratch.level_mut(0);
            costs.extend(noise_buf.iter().map(|z| self.bucket_constant + z));
            merged.resize(n, true);
            scratch.noise = noise_buf;
        }

        // Bottom-up merge, identical pairing and draw order to the reference
        // path: each level's merge noise is pre-drawn as one block (the
        // reference draws the same variates one pair at a time, in the same
        // order), and the odd trailing node is carried up verbatim (its
        // child mapping stays `2·j` because `2·⌊len/2⌋ = len − 1` for odd
        // lengths).
        while scratch.costs[depth].len() > 1 {
            let len = scratch.costs[depth].len();
            let pairs = len / 2;
            scratch.noise.resize(pairs, 0.0);
            noise.fill(&mut scratch.noise[..pairs], rng);

            // The next level is built into buffers temporarily moved out of
            // the scratch, so the current level can be read in peace.
            let (next_costs_slot, next_merged_slot) = scratch.level_mut(depth + 1);
            let mut next_costs = std::mem::take(next_costs_slot);
            let mut next_merged = std::mem::take(next_merged_slot);
            next_costs.reserve(pairs + 1);
            next_merged.reserve(pairs + 1);
            let cur_costs = &scratch.costs[depth];
            let cur_merged = &scratch.merged[depth];
            for (j, z) in scratch.noise[..pairs].iter().enumerate() {
                let (start, end) = node_interval(depth + 1, j, n);
                let merged_cost = ev.bucket_cost(start, end) + self.bucket_constant + z;
                let split_cost = cur_costs[2 * j] + cur_costs[2 * j + 1];
                if merged_cost <= split_cost {
                    next_costs.push(merged_cost);
                    next_merged.push(true);
                } else {
                    next_costs.push(split_cost);
                    next_merged.push(false);
                }
            }
            if len % 2 == 1 {
                next_costs.push(cur_costs[len - 1]);
                next_merged.push(cur_merged[len - 1]);
            }
            scratch.costs[depth + 1] = next_costs;
            scratch.merged[depth + 1] = next_merged;
            depth += 1;
        }

        // Reconstruct the winning partition left-to-right by following the
        // decision bits (right child pushed first so the left pops first).
        scratch.stack.clear();
        scratch.stack.push((depth, 0));
        while let Some((lvl, j)) = scratch.stack.pop() {
            if lvl == 0 || scratch.merged[lvl][j] {
                out.push(node_interval(lvl, j, n));
            } else {
                let child_len = scratch.costs[lvl - 1].len();
                if 2 * j + 1 < child_len {
                    scratch.stack.push((lvl - 1, 2 * j + 1));
                }
                scratch.stack.push((lvl - 1, 2 * j));
            }
        }
    }
}

/// Checks that a partition covers `0..domain` with consecutive, non-empty,
/// non-overlapping buckets. Used by tests and by `DAWAz`'s post-processing.
pub fn is_valid_partition(partition: &Partition, domain: usize) -> bool {
    if domain == 0 {
        return partition.is_empty();
    }
    let mut expected_start = 0usize;
    for &(start, end) in partition {
        if start != expected_start || end <= start {
            return false;
        }
        expected_start = end;
    }
    expected_start == domain
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(10)
    }

    #[test]
    fn construction_validates_budgets() {
        assert!(Partitioner::new(0.1, 0.9).is_ok());
        assert!(Partitioner::new(0.0, 0.9).is_err());
        assert!(Partitioner::new(0.1, -0.1).is_err());
        let p = Partitioner::new(0.5, 0.5).unwrap();
        assert_eq!(p.bucket_constant(), 4.0);
    }

    #[test]
    fn partition_is_always_valid() {
        let p = Partitioner::new(0.1, 0.9).unwrap();
        let mut r = rng();
        for n in [1usize, 2, 3, 7, 16, 100, 257] {
            let hist = Histogram::from_counts((0..n).map(|i| (i % 5) as f64).collect());
            let partition = p.partition(&hist, &mut r);
            assert!(is_valid_partition(&partition, n), "n={n}: {partition:?}");
        }
        assert!(p.partition(&Histogram::zeros(0), &mut r).is_empty());
    }

    #[test]
    fn arena_partitioner_matches_the_reference_bitwise() {
        use rand::RngCore;
        let p = Partitioner::new(0.4, 0.8).unwrap();
        let mut scratch = PartitionScratch::new();
        let mut out = Partition::new();
        for n in [0usize, 1, 2, 3, 5, 7, 16, 100, 257, 1024] {
            for seed in [0u64, 3, 91] {
                let hist =
                    Histogram::from_counts((0..n).map(|i| ((i * 7) % 13) as f64 * 10.0).collect());
                let mut reference_rng = ChaCha12Rng::seed_from_u64(seed);
                let reference = p.partition(&hist, &mut reference_rng);
                // The scratch is deliberately reused across domain sizes.
                let mut arena_rng = ChaCha12Rng::seed_from_u64(seed);
                p.partition_into(&hist, &mut arena_rng, &mut scratch, &mut out);
                assert_eq!(reference, out, "n={n}, seed={seed}");
                if n > 1 {
                    // Same residual RNG state: draw-for-draw consumption.
                    assert_eq!(reference_rng.next_u64(), arena_rng.next_u64());
                }
            }
        }
    }

    #[test]
    fn uniform_data_gets_merged_into_few_buckets() {
        // With a generous stage-1 budget the cost comparisons are essentially
        // exact, so the dyadic DP must collapse perfectly uniform data into a
        // handful of buckets (each merge saves one per-bucket noise constant).
        let p = Partitioner::new(50.0, 1.0).unwrap();
        let mut r = rng();
        let hist = Histogram::from_counts(vec![50.0; 256]);
        let partition = p.partition(&hist, &mut r);
        assert!(
            partition.len() <= 8,
            "uniform data should collapse to a handful of buckets, got {}",
            partition.len()
        );
    }

    #[test]
    fn uniform_data_merges_more_than_spiky_data_at_moderate_budget() {
        let p = Partitioner::new(1.0, 1.0).unwrap();
        let mut r = rng();
        let uniform = Histogram::from_counts(vec![50.0; 256]);
        let mut spiky_counts = vec![0.0; 256];
        for i in (0..256).step_by(8) {
            spiky_counts[i] = 10_000.0;
        }
        let spiky = Histogram::from_counts(spiky_counts);
        let avg_buckets = |h: &Histogram, r: &mut ChaCha12Rng| {
            (0..5).map(|_| p.partition(h, r).len()).sum::<usize>() as f64 / 5.0
        };
        let uniform_buckets = avg_buckets(&uniform, &mut r);
        let spiky_buckets = avg_buckets(&spiky, &mut r);
        assert!(
            uniform_buckets < spiky_buckets,
            "uniform ({uniform_buckets}) should merge more than spiky ({spiky_buckets})"
        );
    }

    #[test]
    fn spiky_data_isolates_the_spikes() {
        let p = Partitioner::new(2.0, 2.0).unwrap();
        let mut r = rng();
        let mut counts = vec![0.0; 256];
        counts[40] = 5_000.0;
        counts[200] = 8_000.0;
        let hist = Histogram::from_counts(counts);
        let partition = p.partition(&hist, &mut r);
        assert!(is_valid_partition(&partition, 256));
        // The buckets containing the spikes should be small (the spike is not
        // averaged into a huge uniform region).
        for &(start, end) in &partition {
            if (start..end).contains(&40) || (start..end).contains(&200) {
                assert!(end - start <= 64, "spike bucket too large: {start}..{end}");
            }
        }
        assert!(partition.len() > 2);
    }

    #[test]
    fn validity_checker_rejects_bad_partitions() {
        assert!(is_valid_partition(&vec![(0, 3), (3, 5)], 5));
        assert!(!is_valid_partition(&vec![(0, 3), (4, 5)], 5), "gap");
        assert!(!is_valid_partition(&vec![(0, 3), (2, 5)], 5), "overlap");
        assert!(!is_valid_partition(&vec![(0, 3)], 5), "does not cover");
        assert!(!is_valid_partition(&vec![(0, 0), (0, 5)], 5), "empty bucket");
        assert!(is_valid_partition(&vec![], 0));
        assert!(!is_valid_partition(&vec![], 3));
    }
}
