//! Write-ahead ledger framing and replay.
//!
//! Every record is one frame: `[len: u32 LE][crc: u32 LE][payload]`, where
//! `crc` is the CRC-32 of the payload. Replay walks frames in order and
//! stops at the first frame that is torn (fewer bytes than the header
//! promises), oversized, checksum-failing, or undecodable — everything
//! before that point is the durable prefix; everything after is discarded
//! by truncation, exactly as an interrupted `write(2)` demands.

use crate::crc::crc32;
use crate::record::WalRecord;

/// Frame header size: payload length + checksum.
pub(crate) const FRAME_HEADER: usize = 8;

/// Upper bound on a frame payload. Real records are a few hundred bytes; a
/// length field above this is bit rot, not a record, and replay treats it
/// as a torn tail rather than attempting a multi-gigabyte read.
pub(crate) const MAX_PAYLOAD: usize = 1 << 20;

/// When the ledger flushes **and fsyncs** buffered frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every append is flushed and fsync'd before the call returns: a
    /// granted release is durable before its sample exists. Highest
    /// latency, zero grants lost on crash.
    Always,
    /// Flush + fsync once every `n` appends (and on drop / snapshot). A
    /// crash loses at most the last `n − 1` grants — the recovered spent
    /// total is then *under* the true total, which refuses strictly less
    /// than the cap allows (the safe direction for a privacy ledger).
    EveryN(u32),
    /// Flush + fsync only on drop, snapshot, or an explicit sync. The
    /// in-memory-comparable fast path; a hard kill can lose every grant
    /// since the last snapshot.
    OnDrop,
}

/// Appends `record` to `buf` as one checksummed frame.
pub fn append_record(buf: &mut Vec<u8>, record: &WalRecord) {
    let mut payload = Vec::with_capacity(128);
    record.encode_into(&mut payload);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
}

/// The result of replaying a frame stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Every record of the longest valid frame prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of that valid prefix.
    pub valid_len: usize,
    /// Whether bytes were discarded after the valid prefix (a torn or
    /// corrupt tail — expected after a crash, impossible after a clean
    /// shutdown).
    pub truncated: bool,
}

/// Decodes the longest valid frame prefix of `bytes` (the WAL body, after
/// any file header). Never fails: a torn or corrupt tail is *data*, not an
/// error — it marks where durability ended.
pub fn replay(bytes: &[u8]) -> ReplayOutcome {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("len checked")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("len checked"));
        if len > MAX_PAYLOAD || bytes.len() - at - FRAME_HEADER < len {
            break;
        }
        let payload = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        let Ok(record) = WalRecord::decode(payload) else {
            break;
        };
        records.push(record);
        at += FRAME_HEADER + len;
    }
    ReplayOutcome { records, valid_len: at, truncated: at != bytes.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GrantRecord, GuaranteeTag, RefusalRecord};

    fn grant(index: u64, units: u64) -> WalRecord {
        WalRecord::Grant(GrantRecord {
            index,
            units,
            epsilon: units as f64 * 1e-12,
            trials: 1,
            bins: 8,
            guarantee: GuaranteeTag::Osdp,
            mechanism: "M".into(),
            policy: "P".into(),
            query: "q".into(),
        })
    }

    fn stream(n: u64) -> (Vec<u8>, Vec<WalRecord>) {
        let mut buf = Vec::new();
        let mut records = Vec::new();
        for i in 0..n {
            let r = if i % 4 == 3 {
                WalRecord::Refusal(RefusalRecord {
                    units: 5,
                    epsilon: 5e-12,
                    mechanism: "M".into(),
                })
            } else {
                grant(i, 100 + i)
            };
            append_record(&mut buf, &r);
            records.push(r);
        }
        (buf, records)
    }

    #[test]
    fn clean_streams_replay_exactly() {
        let (buf, records) = stream(12);
        let outcome = replay(&buf);
        assert_eq!(outcome.records, records);
        assert_eq!(outcome.valid_len, buf.len());
        assert!(!outcome.truncated);
        let empty = replay(&[]);
        assert!(empty.records.is_empty() && !empty.truncated);
    }

    #[test]
    fn every_truncation_point_yields_a_record_prefix() {
        let (buf, records) = stream(8);
        for cut in 0..=buf.len() {
            let outcome = replay(&buf[..cut]);
            assert!(outcome.valid_len <= cut);
            assert_eq!(
                outcome.records[..],
                records[..outcome.records.len()],
                "cut at {cut} must yield a prefix"
            );
            assert_eq!(outcome.truncated, outcome.valid_len != cut);
        }
    }

    #[test]
    fn corruption_stops_replay_at_the_bad_frame() {
        // Six identical-length frames, so frame boundaries are arithmetic.
        let records: Vec<WalRecord> = (0..6).map(|i| grant(i, 100)).collect();
        let mut buf = Vec::new();
        for r in &records {
            append_record(&mut buf, r);
        }
        // Flip a byte in the 4th frame's payload region.
        let frame = buf.len() / 6;
        buf[3 * frame + FRAME_HEADER + 2] ^= 0x01;
        let outcome = replay(&buf);
        assert_eq!(outcome.records, records[..3].to_vec());
        assert!(outcome.truncated);
        // An absurd length field is a torn tail, not an allocation request.
        let mut bomb = Vec::new();
        append_record(&mut bomb, &grant(0, 1));
        let keep = bomb.len();
        bomb.extend_from_slice(&u32::MAX.to_le_bytes());
        bomb.extend_from_slice(&[0u8; 12]);
        let outcome = replay(&bomb);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.valid_len, keep);
    }
}
