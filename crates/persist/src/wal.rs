//! Write-ahead ledger framing and replay.
//!
//! Every record is one frame: `[len: u32 LE][crc: u32 LE][payload]`, where
//! `crc` is the CRC-32 of the payload. Replay walks frames in order and
//! stops at the first frame that is torn (fewer bytes than the header
//! promises), oversized, checksum-failing, or undecodable — everything
//! before that point is the durable prefix; everything after is discarded
//! by truncation, exactly as an interrupted `write(2)` demands.

use crate::crc::crc32;
use crate::record::{RecordRef, WalRecord};
use crate::vfs::{persist_error, VfsFile};
use osdp_core::error::{FaultClass, PersistError, PersistOp};
use std::io::{IoSlice, SeekFrom};
use std::path::PathBuf;
use std::time::Duration;

/// Frame header size: payload length + checksum.
pub(crate) const FRAME_HEADER: usize = 8;

/// Upper bound on a frame payload. Real records are a few hundred bytes; a
/// length field above this is bit rot, not a record, and replay treats it
/// as a torn tail rather than attempting a multi-gigabyte read.
pub(crate) const MAX_PAYLOAD: usize = 1 << 20;

/// When the ledger flushes **and fsyncs** buffered frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every append is flushed and fsync'd before the call returns: a
    /// granted release is durable before its sample exists. Highest
    /// latency, zero grants lost on crash.
    Always,
    /// Flush + fsync once every `n` appends (and on drop / snapshot). A
    /// crash loses at most the last `n − 1` grants — the recovered spent
    /// total is then *under* the true total, which refuses strictly less
    /// than the cap allows (the safe direction for a privacy ledger).
    EveryN(u32),
    /// Flush + fsync only on drop, snapshot, or an explicit sync. The
    /// in-memory-comparable fast path; a hard kill can lose every grant
    /// since the last snapshot.
    OnDrop,
    /// **Group commit**: `Always`-grade durability per grant at amortized
    /// fsync cost under concurrency. Appenders encode their frame and hand
    /// it to a dedicated committer thread (per ledger, lazily spawned on
    /// the first append), which drains up to `max_batch` queued frames —
    /// waiting at most `max_wait` after the first for stragglers — into one
    /// vectored write + **one fsync**, then advances the durable watermark
    /// and wakes the blocked appenders. Every append still returns only
    /// once its own frame is durable, so nothing admitted is ever lost on
    /// crash; with `k` concurrent grantors the fsync cost is paid once per
    /// batch instead of once per grant. Single-threaded it degrades to one
    /// fsync per append (plus a thread handoff) — use
    /// [`SyncPolicy::group_commit`] for defaults tuned to the serving
    /// plane.
    GroupCommit {
        /// Most frames one batch may carry (≥ 1; one write + one fsync per
        /// batch regardless of how many queue up).
        max_batch: u32,
        /// How long the committer waits after the first queued frame for
        /// more to arrive before fsyncing. `Duration::ZERO` (the default)
        /// relies on *natural batching*: frames that queue while the
        /// previous fsync is in flight ride the next batch together, which
        /// on a busy ledger already yields near-full batches without adding
        /// latency.
        max_wait: Duration,
    },
}

impl SyncPolicy {
    /// The default group-commit configuration: batches of up to 64 frames,
    /// no artificial wait (natural batching only).
    pub fn group_commit() -> Self {
        SyncPolicy::GroupCommit { max_batch: 64, max_wait: Duration::ZERO }
    }
}

/// Bounded exponential backoff for **transient** write faults (interrupted
/// syscalls, would-block, timeouts). Permanent faults — `ENOSPC`, a failed
/// fsync, a bad descriptor — are never retried on the same handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total write attempts, including the first (≥ 1; 1 disables retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based): exponential,
    /// capped at [`RetryPolicy::max_delay`].
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

/// Encodes `record` as one checksummed frame appended to `out`, reusing
/// `scratch` for the payload encoding — no allocations once both buffers
/// have grown to frame size.
pub(crate) fn encode_frame_into(out: &mut Vec<u8>, scratch: &mut Vec<u8>, record: RecordRef<'_>) {
    scratch.clear();
    record.encode_into(scratch);
    out.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(scratch).to_le_bytes());
    out.extend_from_slice(scratch);
}

/// The buffered frame writer behind a ledger: owns the WAL file handle, the
/// pending (encoded-but-unwritten) frame bytes, and a reusable payload
/// encode buffer, so appending a grant frame on the hot path costs **zero
/// allocations** — the record encodes into the scratch buffer and the frame
/// bytes land in the pending buffer, both of which are reused across
/// appends.
///
/// ## Fault handling
///
/// The writer tracks `written_len`, the byte boundary up to which the file
/// is known to hold complete frames. Any failed write may have landed a
/// torn prefix past that boundary; before every retry (and before giving
/// up) the writer **truncates back to the boundary**, so a retry never
/// duplicates bytes mid-file — the corruption that would make replay drop
/// every later acknowledged frame. Transient faults are retried with the
/// bounded backoff of [`RetryPolicy`]; permanent faults fail immediately.
///
/// A failed **fsync** (or a failed boundary restore) poisons the handle:
/// the page-cache state is unknown, so every later operation is refused
/// with the original error until the ledger is reopened — never re-fsync a
/// handle whose fsync already failed.
#[derive(Debug)]
pub struct WalWriter {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    /// Encoded frames accepted but not yet handed to the OS — the bytes a
    /// simulated crash loses.
    pending: Vec<u8>,
    /// Reused payload encode buffer.
    scratch: Vec<u8>,
    /// Bytes known fully written: the truncate-and-retry boundary.
    written_len: u64,
    retry: RetryPolicy,
    /// Set by a failed fsync or a failed boundary restore; every later
    /// operation returns a clone of it.
    poisoned: Option<PersistError>,
}

impl WalWriter {
    /// A writer over an opened WAL file positioned at its end, whose first
    /// `written_len` bytes are known-good frames.
    pub(crate) fn new(
        file: Box<dyn VfsFile>,
        path: PathBuf,
        written_len: u64,
        retry: RetryPolicy,
    ) -> Self {
        Self {
            file,
            path,
            pending: Vec::new(),
            scratch: Vec::new(),
            written_len,
            retry,
            poisoned: None,
        }
    }

    /// The underlying file (crash simulation's torn-tail write).
    pub(crate) fn file_mut(&mut self) -> &mut dyn VfsFile {
        self.file.as_mut()
    }

    /// The pending (unflushed) frame bytes.
    pub(crate) fn pending(&self) -> &[u8] {
        &self.pending
    }

    /// Mutable access to the pending buffer (crash stashing).
    pub(crate) fn pending_mut(&mut self) -> &mut Vec<u8> {
        &mut self.pending
    }

    /// Encodes `record` as one frame into the pending buffer (no IO, no
    /// allocation beyond buffer growth).
    pub(crate) fn buffer_record(&mut self, record: RecordRef<'_>) {
        // Split borrows: encode into scratch, frame into pending.
        let Self { pending, scratch, .. } = self;
        encode_frame_into(pending, scratch, record);
    }

    /// Fails with the poison error if the handle is poisoned.
    fn ensure_usable(&self) -> Result<(), PersistError> {
        match &self.poisoned {
            Some(err) => Err(err.clone()),
            None => Ok(()),
        }
    }

    /// Truncates the file back to the known-good boundary after a failed
    /// write, discarding any torn prefix the attempt landed. A failed
    /// restore poisons the handle — the file may now hold garbage past the
    /// boundary, and appending after it would put frames beyond replay's
    /// reach.
    fn restore_boundary(&mut self) -> Result<(), PersistError> {
        let outcome = self
            .file
            .set_len(self.written_len)
            .and_then(|()| self.file.seek(SeekFrom::End(0)).map(|_| ()));
        if let Err(e) = outcome {
            let mut err = persist_error(PersistOp::Write, &self.path, &e);
            err.class = FaultClass::Permanent;
            err.detail = format!(
                "restoring the write boundary after a torn write failed (handle poisoned; \
                 reopen the ledger): {}",
                err.detail
            );
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        Ok(())
    }

    /// `fdatasync`, poisoning the handle on failure: after a failed fsync
    /// the page-cache state is unknown, and fsyncing the same descriptor
    /// again proves nothing — the only safe move is reopen + recover.
    pub(crate) fn sync(&mut self) -> Result<(), PersistError> {
        self.ensure_usable()?;
        match self.file.sync_data() {
            Ok(()) => Ok(()),
            Err(e) => {
                let mut err = persist_error(PersistOp::Fsync, &self.path, &e);
                err.class = FaultClass::Permanent;
                err.detail = format!(
                    "{} (fsync failed: page-cache state unknown, handle poisoned; reopen the \
                     ledger before any further attempt)",
                    err.detail
                );
                self.poisoned = Some(err.clone());
                Err(err)
            }
        }
    }

    /// Writes the whole pending buffer, retrying transient faults with
    /// truncate-back-to-boundary between attempts. On success the pending
    /// buffer is cleared and the boundary advances; on failure the pending
    /// frames stay buffered (a later flush retries them whole) and the
    /// file holds no torn bytes.
    fn write_pending_with_retry(&mut self) -> Result<(), PersistError> {
        let mut attempt = 1u32;
        loop {
            match self.file.write_all(&self.pending) {
                Ok(()) => {
                    self.written_len += self.pending.len() as u64;
                    self.pending.clear();
                    return Ok(());
                }
                Err(e) => {
                    let err = persist_error(PersistOp::Write, &self.path, &e);
                    self.restore_boundary()?;
                    if err.class != FaultClass::Transient || attempt >= self.retry.max_attempts {
                        return Err(err);
                    }
                    std::thread::sleep(self.retry.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Writes + fsyncs the pending buffer (no-op when empty).
    pub(crate) fn flush_and_sync(&mut self) -> Result<(), PersistError> {
        self.ensure_usable()?;
        if self.pending.is_empty() {
            return Ok(());
        }
        self.write_pending_with_retry()?;
        self.sync()
    }

    /// Writes every pre-encoded frame buffer in `frames` with vectored IO
    /// (one syscall for the common case) and issues **one** fsync for the
    /// whole batch — the group-commit write path. Transient write faults
    /// are retried from the batch start after truncating back to the
    /// boundary, so a partially-landed batch never leaves torn bytes.
    pub(crate) fn commit_vectored(&mut self, frames: &[&[u8]]) -> Result<(), PersistError> {
        self.ensure_usable()?;
        let total: u64 = frames.iter().map(|f| f.len() as u64).sum();
        let mut attempt = 1u32;
        loop {
            match write_frames_once(self.file.as_mut(), frames) {
                Ok(()) => {
                    self.written_len += total;
                    break;
                }
                Err(e) => {
                    let err = persist_error(PersistOp::Write, &self.path, &e);
                    self.restore_boundary()?;
                    if err.class != FaultClass::Transient || attempt >= self.retry.max_attempts {
                        return Err(err);
                    }
                    std::thread::sleep(self.retry.backoff(attempt));
                    attempt += 1;
                }
            }
        }
        self.sync()
    }

    /// Replaces the file contents with `image` (the rotation / torn-tail
    /// rewrite path) and fsyncs, resetting the boundary to the image
    /// length.
    pub(crate) fn rewrite(&mut self, image: &[u8]) -> Result<(), PersistError> {
        self.ensure_usable()?;
        self.written_len = 0;
        self.file
            .set_len(0)
            .and_then(|()| self.file.seek(SeekFrom::Start(0)).map(|_| ()))
            .map_err(|e| persist_error(PersistOp::Write, &self.path, &e))?;
        let mut attempt = 1u32;
        loop {
            match self.file.write_all(image) {
                Ok(()) => {
                    self.written_len = image.len() as u64;
                    break;
                }
                Err(e) => {
                    let err = persist_error(PersistOp::Write, &self.path, &e);
                    self.restore_boundary()?;
                    if err.class != FaultClass::Transient || attempt >= self.retry.max_attempts {
                        return Err(err);
                    }
                    std::thread::sleep(self.retry.backoff(attempt));
                    attempt += 1;
                }
            }
        }
        self.sync()
    }
}

/// One vectored-write pass over the whole batch. Unlike
/// `std::io::Write::write_all_vectored`-style loops this does **not**
/// swallow `Interrupted`: every error surfaces so the caller's
/// truncate-and-retry boundary logic owns the recovery.
fn write_frames_once(file: &mut dyn VfsFile, frames: &[&[u8]]) -> std::io::Result<()> {
    let mut slices: Vec<IoSlice<'_>> = frames.iter().map(|f| IoSlice::new(f)).collect();
    let mut bufs = &mut slices[..];
    while !bufs.is_empty() {
        match file.write_vectored(bufs) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "wal file refused the batch write",
                ));
            }
            Ok(n) => IoSlice::advance_slices(&mut bufs, n),
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Appends `record` to `buf` as one checksummed frame.
pub fn append_record(buf: &mut Vec<u8>, record: &WalRecord) {
    let mut payload = Vec::with_capacity(128);
    record.encode_into(&mut payload);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
}

/// Why a frame failed checksum verification (see
/// [`WalReader::verify_frames`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDefect {
    /// The stored CRC-32 disagrees with the payload — silent bit rot.
    CrcMismatch {
        /// The checksum the frame header claims.
        stored: u32,
        /// The checksum the payload actually hashes to.
        actual: u32,
    },
    /// A fully-present header carries a length above the frame cap: the
    /// length field itself rotted (a torn append leaves a *valid* header
    /// with a short payload, never an absurd length).
    OversizedLength {
        /// The claimed payload length.
        len: u64,
    },
}

impl std::fmt::Display for FrameDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDefect::CrcMismatch { stored, actual } => {
                write!(f, "crc mismatch (stored {stored:#010x}, actual {actual:#010x})")
            }
            FrameDefect::OversizedLength { len } => {
                write!(f, "oversized length field ({len} bytes)")
            }
        }
    }
}

/// A checksum failure found mid-stream by [`WalReader::verify_frames`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameCorruption {
    /// Byte offset of the corrupt frame's header, relative to the start of
    /// the verified byte stream (the WAL body, after any file header).
    pub offset: u64,
    /// What failed.
    pub defect: FrameDefect,
}

/// The result of a verify-only pass over a frame stream
/// ([`WalReader::verify_frames`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameVerification {
    /// Frames whose CRC checked out.
    pub frames: u64,
    /// Byte length of the verified prefix.
    pub valid_len: usize,
    /// A **complete** frame whose checksum or length field is wrong —
    /// silent corruption of durable data. `None` when every byte up to (at
    /// most) a torn tail verifies.
    pub corruption: Option<FrameCorruption>,
    /// Bytes after the verified prefix that do not amount to a complete
    /// frame — the benign torn tail an interrupted append (or a read racing
    /// a live writer) leaves behind. Zero when `corruption` is set (the
    /// remainder is attributed to the corrupt frame instead).
    pub torn_tail_bytes: u64,
}

impl FrameVerification {
    /// Whether the stream holds no evidence of bit rot (a torn tail is
    /// *not* corruption — it is where durability ended).
    pub fn is_clean(&self) -> bool {
        self.corruption.is_none()
    }
}

/// The verify-only reader over WAL frame streams: checks framing and
/// CRC-32s **without decoding payloads** (and therefore without allocating
/// records). This is the fast path shared by the cold-segment scrubber
/// ([`crate::scrub`]) and recovery's preflight — both need "are the durable
/// bytes still the bytes we wrote?", not the records themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalReader;

impl WalReader {
    /// Verifies the longest checksummed frame prefix of `bytes` (the WAL
    /// body, after any file header). Distinguishes the two ways a stream
    /// can end early:
    ///
    /// * a **torn tail** — fewer bytes than one more frame needs — is the
    ///   expected residue of an interrupted append (or of reading behind a
    ///   live writer) and leaves the stream *clean*;
    /// * a **complete frame that fails its CRC** (or a full header whose
    ///   length field is absurd) is silent corruption of bytes that were
    ///   once durable, reported as [`FrameCorruption`].
    ///
    /// Never reads past `valid_len + one frame`, never decodes a payload,
    /// never fails: corruption is *data* for the health plane, not an
    /// error.
    pub fn verify_frames(bytes: &[u8]) -> FrameVerification {
        let mut frames = 0u64;
        let mut at = 0usize;
        while bytes.len() - at >= FRAME_HEADER {
            let len =
                u32::from_le_bytes(bytes[at..at + 4].try_into().expect("len checked")) as usize;
            let stored = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("len checked"));
            if len > MAX_PAYLOAD {
                return FrameVerification {
                    frames,
                    valid_len: at,
                    corruption: Some(FrameCorruption {
                        offset: at as u64,
                        defect: FrameDefect::OversizedLength { len: len as u64 },
                    }),
                    torn_tail_bytes: 0,
                };
            }
            if bytes.len() - at - FRAME_HEADER < len {
                break; // torn tail: the frame never finished landing
            }
            let actual = crc32(&bytes[at + FRAME_HEADER..at + FRAME_HEADER + len]);
            if actual != stored {
                return FrameVerification {
                    frames,
                    valid_len: at,
                    corruption: Some(FrameCorruption {
                        offset: at as u64,
                        defect: FrameDefect::CrcMismatch { stored, actual },
                    }),
                    torn_tail_bytes: 0,
                };
            }
            frames += 1;
            at += FRAME_HEADER + len;
        }
        FrameVerification {
            frames,
            valid_len: at,
            corruption: None,
            torn_tail_bytes: (bytes.len() - at) as u64,
        }
    }
}

/// The result of replaying a frame stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Every record of the longest valid frame prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of that valid prefix.
    pub valid_len: usize,
    /// Whether bytes were discarded after the valid prefix (a torn or
    /// corrupt tail — expected after a crash, impossible after a clean
    /// shutdown).
    pub truncated: bool,
}

/// Decodes the longest valid frame prefix of `bytes` (the WAL body, after
/// any file header). Never fails: a torn or corrupt tail is *data*, not an
/// error — it marks where durability ended.
pub fn replay(bytes: &[u8]) -> ReplayOutcome {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("len checked")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("len checked"));
        if len > MAX_PAYLOAD || bytes.len() - at - FRAME_HEADER < len {
            break;
        }
        let payload = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        let Ok(record) = WalRecord::decode(payload) else {
            break;
        };
        records.push(record);
        at += FRAME_HEADER + len;
    }
    ReplayOutcome { records, valid_len: at, truncated: at != bytes.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GrantRecord, GuaranteeTag, RefusalRecord};

    fn grant(index: u64, units: u64) -> WalRecord {
        WalRecord::Grant(GrantRecord {
            index,
            units,
            epsilon: units as f64 * 1e-12,
            trials: 1,
            bins: 8,
            guarantee: GuaranteeTag::Osdp,
            mechanism: "M".into(),
            policy: "P".into(),
            query: "q".into(),
            policy_version: 0,
        })
    }

    fn stream(n: u64) -> (Vec<u8>, Vec<WalRecord>) {
        let mut buf = Vec::new();
        let mut records = Vec::new();
        for i in 0..n {
            let r = if i % 4 == 3 {
                WalRecord::Refusal(RefusalRecord {
                    units: 5,
                    epsilon: 5e-12,
                    mechanism: "M".into(),
                })
            } else {
                grant(i, 100 + i)
            };
            append_record(&mut buf, &r);
            records.push(r);
        }
        (buf, records)
    }

    #[test]
    fn clean_streams_replay_exactly() {
        let (buf, records) = stream(12);
        let outcome = replay(&buf);
        assert_eq!(outcome.records, records);
        assert_eq!(outcome.valid_len, buf.len());
        assert!(!outcome.truncated);
        let empty = replay(&[]);
        assert!(empty.records.is_empty() && !empty.truncated);
    }

    #[test]
    fn every_truncation_point_yields_a_record_prefix() {
        let (buf, records) = stream(8);
        for cut in 0..=buf.len() {
            let outcome = replay(&buf[..cut]);
            assert!(outcome.valid_len <= cut);
            assert_eq!(
                outcome.records[..],
                records[..outcome.records.len()],
                "cut at {cut} must yield a prefix"
            );
            assert_eq!(outcome.truncated, outcome.valid_len != cut);
        }
    }

    #[test]
    fn corruption_stops_replay_at_the_bad_frame() {
        // Six identical-length frames, so frame boundaries are arithmetic.
        let records: Vec<WalRecord> = (0..6).map(|i| grant(i, 100)).collect();
        let mut buf = Vec::new();
        for r in &records {
            append_record(&mut buf, r);
        }
        // Flip a byte in the 4th frame's payload region.
        let frame = buf.len() / 6;
        buf[3 * frame + FRAME_HEADER + 2] ^= 0x01;
        let outcome = replay(&buf);
        assert_eq!(outcome.records, records[..3].to_vec());
        assert!(outcome.truncated);
        // An absurd length field is a torn tail, not an allocation request.
        let mut bomb = Vec::new();
        append_record(&mut bomb, &grant(0, 1));
        let keep = bomb.len();
        bomb.extend_from_slice(&u32::MAX.to_le_bytes());
        bomb.extend_from_slice(&[0u8; 12]);
        let outcome = replay(&bomb);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.valid_len, keep);
    }

    #[test]
    fn verify_frames_matches_replay_on_clean_and_torn_streams() {
        let (buf, records) = stream(12);
        let v = WalReader::verify_frames(&buf);
        assert!(v.is_clean());
        assert_eq!(v.frames, records.len() as u64);
        assert_eq!(v.valid_len, buf.len());
        assert_eq!(v.torn_tail_bytes, 0);
        // Every truncation point is a benign torn tail, never corruption,
        // and the verified prefix agrees with replay's byte-for-byte.
        for cut in 0..=buf.len() {
            let v = WalReader::verify_frames(&buf[..cut]);
            let r = replay(&buf[..cut]);
            assert!(v.is_clean(), "cut at {cut} is a torn tail, not corruption");
            assert_eq!(v.valid_len, r.valid_len, "cut at {cut}");
            assert_eq!(v.frames, r.records.len() as u64, "cut at {cut}");
            assert_eq!(v.torn_tail_bytes as usize, cut - v.valid_len, "cut at {cut}");
        }
    }

    #[test]
    fn verify_frames_pins_seeded_bit_flips_to_their_frame() {
        // Regression for silent bit rot: flip bit positions chosen by a
        // seeded walk and assert verification never admits the rotted frame
        // — it either flags corruption pinned to the right frame offset, or
        // (only when the flip inflates a *length field* past the remaining
        // bytes) sees the same torn tail an interrupted append would leave.
        // Either way the verified prefix agrees with replay's.
        let records: Vec<WalRecord> = (0..6).map(|i| grant(i, 100)).collect();
        let mut clean = Vec::new();
        for r in &records {
            append_record(&mut clean, r);
        }
        let frame = clean.len() / 6;
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..256 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let byte = (seed >> 33) as usize % clean.len();
            let bit = (seed >> 29) as u32 & 7;
            let mut rotted = clean.clone();
            rotted[byte] ^= 1 << bit;
            let v = WalReader::verify_frames(&rotted);
            let hit_frame = byte / frame;
            let in_len_field = byte % frame < 4;
            assert!(
                v.frames as usize <= hit_frame,
                "flip at byte {byte} bit {bit}: the rotted frame must not verify"
            );
            match v.corruption {
                Some(corruption) => {
                    assert_eq!(
                        corruption.offset,
                        (hit_frame * frame) as u64,
                        "flip at byte {byte} pins to frame {hit_frame}"
                    );
                    assert_eq!(v.valid_len, hit_frame * frame);
                    assert_eq!(v.torn_tail_bytes, 0);
                }
                None => {
                    // Only an inflated length field can masquerade as a torn
                    // tail; payload and CRC flips must always be caught.
                    assert!(in_len_field, "flip at byte {byte} bit {bit} escaped detection");
                    assert_eq!(v.valid_len, hit_frame * frame);
                }
            }
            assert_eq!(
                replay(&rotted).valid_len,
                v.valid_len,
                "replay and verify agree on the durable prefix"
            );
        }
    }

    #[test]
    fn verify_frames_reports_an_oversized_length_as_corruption() {
        let mut buf = Vec::new();
        append_record(&mut buf, &grant(0, 1));
        let keep = buf.len();
        // A full header claiming a multi-gigabyte payload is rot in the
        // length field, not a torn append.
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 12]);
        let v = WalReader::verify_frames(&buf);
        assert_eq!(v.frames, 1);
        assert_eq!(v.valid_len, keep);
        let corruption = v.corruption.expect("oversized length is corruption");
        assert_eq!(corruption.offset, keep as u64);
        assert!(matches!(
            corruption.defect,
            FrameDefect::OversizedLength { len } if len == u32::MAX as u64
        ));
    }
}
