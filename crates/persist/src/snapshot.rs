//! The compact per-tenant snapshot: everything recovery needs to seed a
//! `BudgetAccountant` + `AuditLog` pair without replaying the full history.
//!
//! A snapshot collapses the WAL into a counter block plus one aggregate row
//! per `(mechanism, policy, guarantee)` triple — the ledger view keeps its
//! totals and its per-mechanism breakdown, while the file stays O(distinct
//! labels) instead of O(releases). The snapshot file is one checksummed
//! frame behind a magic header, written to a temporary name and renamed
//! into place, so a torn snapshot write can never shadow a good one.

use crate::record::{put_counters, put_str, put_u64, read_counters, GuaranteeTag, Reader};
use crate::record::{EpochRecord, GrantRecord, SnapshotCounters};
use crate::wal::append_record;
use crate::WalRecord;
use osdp_core::error::{OsdpError, Result};
use std::collections::BTreeMap;

/// Magic header of `snapshot.bin`.
pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"OSDPSNP1";

/// One aggregate row of a snapshot: the collapsed grants of a
/// `(mechanism, policy, guarantee)` triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateRow {
    /// Mechanism display name.
    pub mechanism: String,
    /// Policy label.
    pub policy: String,
    /// Guarantee kind.
    pub guarantee: GuaranteeTag,
    /// Fixed-point unit total across the collapsed grants.
    pub units: u64,
    /// Number of collapsed grant records.
    pub releases: u64,
}

/// A decoded snapshot: generation, counter block, aggregate rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotState {
    /// Monotone snapshot generation; the WAL header carries the generation
    /// it continues from, which is how recovery pairs the two files.
    pub generation: u64,
    /// The counter block.
    pub counters: SnapshotCounters,
    /// Aggregate rows, sorted by `(mechanism, policy, guarantee)`.
    pub rows: Vec<AggregateRow>,
}

impl SnapshotState {
    /// Serializes the snapshot file image (magic + one checksummed frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + 64 * self.rows.len());
        put_u64(&mut payload, self.generation);
        put_counters(&mut payload, &self.counters);
        put_u64(&mut payload, self.rows.len() as u64);
        for row in &self.rows {
            payload.push(row.guarantee.to_byte());
            put_u64(&mut payload, row.units);
            put_u64(&mut payload, row.releases);
            put_str(&mut payload, &row.mechanism);
            put_str(&mut payload, &row.policy);
        }
        let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + payload.len() + 8);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        // Reuse the WAL framing (len + crc32) for the single snapshot frame.
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crate::crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        out.extend_from_slice(&frame);
        out
    }

    /// Decodes a snapshot file image, verifying magic and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(OsdpError::Persistence("snapshot file has a bad magic header".into()));
        }
        let body = &bytes[SNAPSHOT_MAGIC.len()..];
        let mut r = Reader::new(body);
        let len = r.u32()? as usize;
        let crc = r.u32()?;
        let mut r = Reader::new(body.get(8..8 + len).ok_or_else(|| {
            OsdpError::Persistence("snapshot frame is shorter than its header promises".into())
        })?);
        if crate::crc32(&body[8..8 + len]) != crc {
            return Err(OsdpError::Persistence("snapshot frame failed its checksum".into()));
        }
        let generation = r.u64()?;
        let counters = read_counters(&mut r)?;
        let row_count = r.u64()? as usize;
        let mut rows = Vec::with_capacity(row_count.min(1 << 16));
        for _ in 0..row_count {
            let guarantee = GuaranteeTag::from_byte(r.u8()?)?;
            let units = r.u64()?;
            let releases = r.u64()?;
            let mechanism = r.string()?;
            let policy = r.string()?;
            rows.push(AggregateRow { mechanism, policy, guarantee, units, releases });
        }
        r.finish()?;
        Ok(Self { generation, counters, rows })
    }
}

/// The in-memory mirror of the logged state: what a snapshot taken *now*
/// would contain. The [`crate::TenantLedger`] updates it under the same
/// lock as each WAL append, so snapshots are consistent-by-construction
/// with the log — never read from live session counters, which may be
/// ahead of what has been logged.
#[derive(Debug, Clone, Default)]
pub(crate) struct MirrorState {
    pub(crate) generation: u64,
    pub(crate) counters: SnapshotCounters,
    pub(crate) rows: BTreeMap<(String, String, GuaranteeTag), (u64, u64)>,
    /// Every epoch transition logged so far, in version order. Unlike
    /// grants, transitions are never collapsed into aggregate rows — the
    /// stale-policy verifier needs the full version history — so rotation
    /// re-emits them into the fresh WAL verbatim.
    pub(crate) transitions: Vec<EpochRecord>,
}

impl MirrorState {
    /// Seeds the mirror from a decoded snapshot base.
    pub(crate) fn from_snapshot(base: &SnapshotState) -> Self {
        let mut rows = BTreeMap::new();
        for row in &base.rows {
            rows.insert(
                (row.mechanism.clone(), row.policy.clone(), row.guarantee),
                (row.units, row.releases),
            );
        }
        Self { generation: base.generation, counters: base.counters, rows, transitions: Vec::new() }
    }

    /// Applies one grant.
    pub(crate) fn apply_grant(&mut self, g: &GrantRecord) {
        self.counters.spent_units = self.counters.spent_units.saturating_add(g.units);
        self.counters.audit_units = self.counters.audit_units.saturating_add(g.units);
        self.counters.audit_seq = self.counters.audit_seq.max(g.index + 1);
        self.counters.grants += 1;
        let row =
            self.rows.entry((g.mechanism.clone(), g.policy.clone(), g.guarantee)).or_insert((0, 0));
        row.0 = row.0.saturating_add(g.units);
        row.1 += 1;
    }

    /// Applies one refusal.
    pub(crate) fn apply_refusal(&mut self) {
        self.counters.refusals += 1;
    }

    /// Applies one epoch transition, keeping the history sorted by version
    /// and free of duplicates (rotation re-emits transitions, and a crash
    /// between the rewrite and the next append could otherwise double
    /// them on replay).
    pub(crate) fn apply_transition(&mut self, t: &EpochRecord) {
        if self.transitions.iter().any(|seen| seen.version == t.version) {
            return;
        }
        let at = self.transitions.partition_point(|seen| seen.version < t.version);
        self.transitions.insert(at, t.clone());
    }

    /// The snapshot image of the mirror at generation `generation`.
    pub(crate) fn to_snapshot(&self, generation: u64) -> SnapshotState {
        SnapshotState {
            generation,
            counters: self.counters,
            rows: self
                .rows
                .iter()
                .map(|((mechanism, policy, guarantee), &(units, releases))| AggregateRow {
                    mechanism: mechanism.clone(),
                    policy: policy.clone(),
                    guarantee: *guarantee,
                    units,
                    releases,
                })
                .collect(),
        }
    }
}

/// Sanity guard used by tests and the ledger: a freshly-rotated WAL body is
/// one marker frame; everything about it must agree with the snapshot.
pub(crate) fn marker_frame(generation: u64, counters: SnapshotCounters) -> Vec<u8> {
    let mut buf = Vec::with_capacity(80);
    append_record(&mut buf, &WalRecord::SnapshotMarker { generation, counters });
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::replay;

    fn state() -> SnapshotState {
        SnapshotState {
            generation: 2,
            counters: SnapshotCounters {
                spent_units: 1_000,
                audit_seq: 4,
                audit_units: 1_000,
                grants: 4,
                refusals: 1,
            },
            rows: vec![
                AggregateRow {
                    mechanism: "DAWA".into(),
                    policy: "P90".into(),
                    guarantee: GuaranteeTag::Dp,
                    units: 400,
                    releases: 1,
                },
                AggregateRow {
                    mechanism: "OsdpLaplaceL1".into(),
                    policy: "P90".into(),
                    guarantee: GuaranteeTag::Osdp,
                    units: 600,
                    releases: 3,
                },
            ],
        }
    }

    #[test]
    fn snapshots_round_trip() {
        let original = state();
        let bytes = original.encode();
        assert_eq!(SnapshotState::decode(&bytes).unwrap(), original);
        assert_eq!(SnapshotState::default().generation, 0);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let mut bytes = state().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        assert!(SnapshotState::decode(&bytes).is_err());
        assert!(SnapshotState::decode(b"NOTASNAP").is_err());
        assert!(SnapshotState::decode(&state().encode()[..20]).is_err());
    }

    #[test]
    fn mirror_round_trips_through_snapshots() {
        let base = state();
        let mut mirror = MirrorState::from_snapshot(&base);
        mirror.apply_grant(&GrantRecord {
            index: 4,
            units: 250,
            epsilon: 250e-12,
            trials: 1,
            bins: 8,
            guarantee: GuaranteeTag::Osdp,
            mechanism: "OsdpLaplaceL1".into(),
            policy: "P90".into(),
            query: "q".into(),
            policy_version: 0,
        });
        mirror.apply_refusal();
        let snap = mirror.to_snapshot(3);
        assert_eq!(snap.generation, 3);
        assert_eq!(snap.counters.spent_units, 1_250);
        assert_eq!(snap.counters.audit_seq, 5);
        assert_eq!(snap.counters.grants, 5);
        assert_eq!(snap.counters.refusals, 2);
        // The OsdpLaplaceL1 row absorbed the grant; row count unchanged.
        assert_eq!(snap.rows.len(), 2);
        let row = snap.rows.iter().find(|r| r.mechanism == "OsdpLaplaceL1").unwrap();
        assert_eq!((row.units, row.releases), (850, 4));
        // The marker frame replays to the same counters.
        let marker = marker_frame(3, snap.counters);
        let outcome = replay(&marker);
        assert_eq!(
            outcome.records,
            vec![WalRecord::SnapshotMarker { generation: 3, counters: snap.counters }]
        );
    }
}
