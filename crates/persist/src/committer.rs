//! The group-commit committer: one dedicated thread per
//! [`crate::TenantLedger`] running [`SyncPolicy::GroupCommit`], draining a
//! submission channel into batched WAL writes.
//!
//! ## Protocol
//!
//! Appenders encode their frame (no lock held), push a `Submission` onto
//! the channel, and block on a fresh per-submission `Waiter`. The committer
//! drains up to `max_batch` frames per round — waiting at most `max_wait`
//! after the first for stragglers — then, under the ledger's inner lock,
//! issues **one vectored write + one fsync** for the whole batch, applies
//! the batch to the snapshot mirror, advances the durable-frame watermark
//! ([`GroupCommitStats::durable_frames`]), and wakes every blocked
//! appender. An append therefore returns only once its own frame is
//! durable — `Always`-grade semantics — while the fsync cost is shared by
//! every frame that queued behind the previous fsync (*natural batching*).
//!
//! ## Failure and crash semantics
//!
//! A write/fsync error poisons the ledger: the batch's appenders get the
//! typed [`PersistError`], the channel is drained with every queued
//! appender failed, and all later appends are refused (the engine's grant
//! path then refuses the release — ε stays conservatively spent, nothing
//! unlogged escapes). [`crate::TenantLedger::crash`] severs **mid-batch**:
//! queued frames are stashed into the writer's pending buffer (so
//! `crash(keep_fraction)` can write a torn prefix of them, exactly like a
//! real crash mid-`write(2)`), their appenders fail, and the committer
//! exits.
//!
//! **No appender blocks forever.** Three mechanisms bound every wait:
//! every unsettled `FrameSubmission` fails its waiter *on drop* — so a
//! committer that dies for any reason (panic included) settles every
//! queued frame the moment the channel's receiver unwinds; the failure
//! paths above settle frames explicitly with the real error; and each
//! appender's wait carries the ledger's `commit_deadline`, after which it
//! returns a typed transient timeout even if the committer is wedged mid-
//! fsync.
//!
//! [`SyncPolicy::GroupCommit`]: crate::SyncPolicy::GroupCommit

use crate::ledger::{auto_rotate_due, crashed_persist, rotate_locked, Inner, Shared};
use crate::record::WalRecord;
use osdp_core::error::{FaultClass, OsdpError, PersistError, PersistOp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Observability counters of a group-commit committer (all zero for other
/// sync policies and for ledgers that have not yet appended).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupCommitStats {
    /// Frames handed to the committer.
    pub submitted_frames: u64,
    /// The durable watermark: frames written **and fsync'd**. Equals
    /// `submitted_frames` whenever no append is in flight, because every
    /// append blocks until its frame is at or below this watermark.
    pub durable_frames: u64,
    /// Batches committed (each one vectored write + one fsync); the
    /// amortization factor is `durable_frames / batches`.
    pub batches: u64,
    /// Largest batch committed so far.
    pub largest_batch: u64,
}

/// The atomic counters behind [`GroupCommitStats`].
#[derive(Debug, Default)]
pub(crate) struct GroupCounters {
    submitted: AtomicU64,
    durable: AtomicU64,
    batches: AtomicU64,
    largest: AtomicU64,
}

impl GroupCounters {
    /// Counts one submitted frame.
    pub(crate) fn count_submission(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Advances the durable watermark by one committed batch of `frames`.
    fn record_batch(&self, frames: u64) {
        self.durable.fetch_add(frames, Ordering::Release);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.largest.fetch_max(frames, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting.
    pub(crate) fn snapshot(&self) -> GroupCommitStats {
        GroupCommitStats {
            submitted_frames: self.submitted.load(Ordering::Relaxed),
            durable_frames: self.durable.load(Ordering::Acquire),
            batches: self.batches.load(Ordering::Relaxed),
            largest_batch: self.largest.load(Ordering::Relaxed),
        }
    }
}

/// The settled state of one submitted frame.
#[derive(Debug)]
enum WaitState {
    /// Not yet committed.
    Pending,
    /// Written and fsync'd.
    Durable,
    /// The committer failed, died, or the ledger crashed before the frame
    /// landed.
    Failed(PersistError),
}

/// One appender's handle on its in-flight frame. **Fresh per submission**:
/// a reused waiter could be settled by a stale in-flight submission after
/// its appender timed out and re-armed it for a new frame.
#[derive(Debug)]
pub(crate) struct Waiter {
    state: Mutex<WaitState>,
    cv: Condvar,
}

/// The typed error an appender gets when its wait deadline expires before
/// the committer settles the frame.
fn deadline_error(deadline: Duration) -> PersistError {
    PersistError::new(
        PersistOp::Commit,
        "",
        FaultClass::Transient,
        format!(
            "group-commit frame was not durable within the {deadline:?} deadline; the \
             committer may be stalled and the frame may still commit later — treat the \
             grant as refused (its ε stays conservatively spent)"
        ),
    )
}

/// The typed error a frame gets when the committer thread is gone without
/// recording a more specific failure (e.g. it panicked, or the submission
/// raced a dying channel).
fn committer_died_error() -> PersistError {
    PersistError::new(
        PersistOp::Commit,
        "",
        FaultClass::Permanent,
        "the wal committer thread died before this frame was committed; the grant is \
         refused (reopen the ledger to recover)",
    )
}

impl Waiter {
    /// A fresh, pending waiter.
    pub(crate) fn new() -> Self {
        Self { state: Mutex::new(WaitState::Pending), cv: Condvar::new() }
    }

    /// Marks the frame durable and wakes the appender.
    fn complete(&self) {
        *self.state.lock().expect("waiter lock") = WaitState::Durable;
        self.cv.notify_all();
    }

    /// Fails the frame and wakes the appender.
    fn fail(&self, err: &PersistError) {
        *self.state.lock().expect("waiter lock") = WaitState::Failed(err.clone());
        self.cv.notify_all();
    }

    /// Blocks until the frame settles or `deadline` elapses. A settled
    /// state always wins; on expiry the appender gets a typed *transient*
    /// timeout and must treat the grant as refused while leaving its ε
    /// spent (the frame may still commit behind its back — ambiguity is
    /// resolved in the fail-closed direction).
    pub(crate) fn wait(&self, deadline: Duration) -> Result<(), PersistError> {
        let start = Instant::now();
        let mut state = self.state.lock().expect("waiter lock");
        loop {
            match &*state {
                WaitState::Durable => return Ok(()),
                WaitState::Failed(err) => return Err(err.clone()),
                WaitState::Pending => {
                    let elapsed = start.elapsed();
                    if elapsed >= deadline {
                        return Err(deadline_error(deadline));
                    }
                    let (guard, _timeout) =
                        self.cv.wait_timeout(state, deadline - elapsed).expect("waiter lock");
                    state = guard;
                }
            }
        }
    }
}

/// One submitted frame: its encoded bytes, the record (the committer
/// applies it to the snapshot mirror at commit time), and the blocked
/// appender's waiter.
///
/// The waiter is settled **exactly once**: by [`FrameSubmission::complete`]
/// or [`FrameSubmission::fail`] on the normal paths, or — if the submission
/// is dropped unsettled (committer panicked, channel receiver unwound, a
/// send raced a dying committer) — by the `Drop` guard, which fails the
/// waiter with the recorded group error or a "committer died" error. This
/// is what guarantees no appender blocks forever.
#[derive(Debug)]
pub(crate) struct FrameSubmission {
    /// The complete frame bytes (header + payload).
    pub(crate) bytes: Vec<u8>,
    /// The record, for the mirror.
    pub(crate) record: WalRecord,
    waiter: Option<Arc<Waiter>>,
    shared: Arc<Shared>,
}

impl FrameSubmission {
    /// A new unsettled submission.
    pub(crate) fn new(
        bytes: Vec<u8>,
        record: WalRecord,
        waiter: Arc<Waiter>,
        shared: Arc<Shared>,
    ) -> Self {
        Self { bytes, record, waiter: Some(waiter), shared }
    }

    /// Settles the waiter as durable.
    fn complete(mut self) {
        if let Some(waiter) = self.waiter.take() {
            waiter.complete();
        }
    }

    /// Settles the waiter with `err`.
    fn fail(mut self, err: &PersistError) {
        if let Some(waiter) = self.waiter.take() {
            waiter.fail(err);
        }
    }
}

impl Drop for FrameSubmission {
    fn drop(&mut self) {
        // Unsettled at drop: the committer never reached this frame. Fail
        // the appender with the recorded fatal error, or a generic
        // committer-death error when none was recorded.
        if let Some(waiter) = self.waiter.take() {
            let err = self
                .shared
                .group_error
                .lock()
                .ok()
                .and_then(|g| g.clone())
                .unwrap_or_else(committer_died_error);
            waiter.fail(&err);
        }
    }
}

/// One message on the submission channel.
#[derive(Debug)]
pub(crate) enum Submission {
    /// An encoded frame (see [`FrameSubmission`]).
    Frame(FrameSubmission),
    /// A bare wake-up (crash uses it to unblock a committer in `recv`).
    Nudge,
}

/// The ledger's handle on its lazily-spawned committer.
#[derive(Debug)]
pub(crate) struct CommitterHandle {
    /// The submission side of the channel. Dropping it (ledger drop) is the
    /// clean-shutdown signal.
    pub(crate) tx: Sender<Submission>,
    /// The thread handle, joined on crash or drop.
    pub(crate) join: Mutex<Option<JoinHandle<()>>>,
}

/// Spawns the committer thread for `shared`.
pub(crate) fn spawn(
    shared: Arc<Shared>,
    rx: Receiver<Submission>,
    max_batch: usize,
    max_wait: Duration,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("osdp-wal-committer".into())
        .spawn(move || run(&shared, &rx, max_batch.max(1), max_wait))
        .expect("spawning the WAL committer thread")
}

/// Whether the committer keeps running after a batch.
enum Flow {
    Continue,
    Stop,
}

/// The committer main loop: block for the first submission, accumulate a
/// batch, commit it, repeat until the channel disconnects (ledger drop) or
/// the ledger crashes / the disk fails.
fn run(shared: &Shared, rx: &Receiver<Submission>, max_batch: usize, max_wait: Duration) {
    let mut batch: Vec<Submission> = Vec::new();
    loop {
        batch.clear();
        match rx.recv() {
            Ok(first) => batch.push(first),
            // Disconnected: the ledger is being dropped. Appends block, so
            // nothing can be in flight — fall through to the final drain
            // for defense in depth, then exit.
            Err(_) => break,
        }
        let mut frames = batch.iter().filter(|s| matches!(s, Submission::Frame(_))).count();
        let deadline = (max_wait > Duration::ZERO).then(|| Instant::now() + max_wait);
        let mut disconnected = false;
        while frames < max_batch {
            let next = match deadline {
                Some(d) => match rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
                    Ok(s) => Some(s),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        disconnected = true;
                        None
                    }
                },
                None => match rx.try_recv() {
                    Ok(s) => Some(s),
                    Err(TryRecvError::Empty) => None,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        None
                    }
                },
            };
            let Some(next) = next else { break };
            if matches!(next, Submission::Frame(_)) {
                frames += 1;
            }
            batch.push(next);
        }
        if matches!(commit_batch(shared, rx, &mut batch), Flow::Stop) {
            return;
        }
        if disconnected {
            break;
        }
    }
    // Final drain (clean shutdown): commit anything still queued.
    batch.clear();
    while let Ok(s) = rx.try_recv() {
        batch.push(s);
    }
    let _ = commit_batch(shared, rx, &mut batch);
}

/// Converts a rotation failure (any [`OsdpError`]) into the typed form the
/// health plane consumes.
fn to_persist(err: &OsdpError) -> PersistError {
    match err {
        OsdpError::Persist(p) => p.clone(),
        other => PersistError::new(PersistOp::Commit, "", FaultClass::Permanent, other.to_string()),
    }
}

/// Commits one batch: one vectored write + one fsync under the inner lock,
/// mirror application, watermark advance, waiter wake-ups — or, on crash /
/// IO failure, the stash-and-fail path.
fn commit_batch(shared: &Shared, rx: &Receiver<Submission>, batch: &mut Vec<Submission>) -> Flow {
    let mut inner = shared.inner.lock().expect("ledger lock");
    if inner.crashed {
        stash_and_fail(rx, &mut inner, batch);
        return Flow::Stop;
    }
    let frames: Vec<&[u8]> = batch
        .iter()
        .filter_map(|s| match s {
            Submission::Frame(f) => Some(f.bytes.as_slice()),
            Submission::Nudge => None,
        })
        .collect();
    if frames.is_empty() {
        // Nudge-only round (no crash observed): nothing to do.
        batch.clear();
        return Flow::Continue;
    }
    let committed = frames.len() as u64;
    match inner.writer.commit_vectored(&frames) {
        Ok(()) => {
            drop(frames);
            for submission in batch.iter() {
                if let Submission::Frame(f) = submission {
                    match &f.record {
                        WalRecord::Grant(g) => inner.mirror.apply_grant(g),
                        WalRecord::Refusal(_) => inner.mirror.apply_refusal(),
                        WalRecord::SnapshotMarker { .. } => {}
                        WalRecord::EpochTransition(t) => inner.mirror.apply_transition(t),
                    }
                    inner.frames_since_rotation += 1;
                }
            }
            shared.counters.record_batch(committed);
            let rotation = if auto_rotate_due(shared, &inner) {
                rotate_locked(shared, &mut inner)
            } else {
                Ok(())
            };
            drop(inner);
            // The frames are durable regardless of how rotation fared.
            for submission in batch.drain(..) {
                if let Submission::Frame(f) = submission {
                    f.complete();
                }
            }
            match rotation {
                Ok(()) => Flow::Continue,
                Err(e) => {
                    // Durable frames acknowledged, but the shard can no
                    // longer rotate — poison and stop accepting appends.
                    let mut err = to_persist(&e);
                    err.detail = format!("group-commit auto-snapshot failed: {}", err.detail);
                    poison(shared, &err);
                    drain_queued(rx);
                    Flow::Stop
                }
            }
        }
        Err(e) => {
            let mut err = e;
            err.detail = format!("group commit write failed: {}", err.detail);
            poison(shared, &err);
            drop(inner);
            for submission in batch.drain(..) {
                if let Submission::Frame(f) = submission {
                    f.fail(&err);
                }
            }
            drain_queued(rx);
            Flow::Stop
        }
    }
}

/// Crash path: stash every unwritten frame (batch order) into the writer's
/// pending buffer — [`crate::TenantLedger::crash`] then writes a
/// `keep_fraction` prefix of it as the torn tail, severing **mid-batch** —
/// and fail every blocked appender, batch and channel alike.
fn stash_and_fail(rx: &Receiver<Submission>, inner: &mut Inner, batch: &mut Vec<Submission>) {
    let crashed = crashed_persist();
    let mut stash = |submission: Submission| {
        if let Submission::Frame(f) = submission {
            inner.writer.pending_mut().extend_from_slice(&f.bytes);
            f.fail(&crashed);
        }
    };
    for submission in batch.drain(..) {
        stash(submission);
    }
    while let Ok(submission) = rx.try_recv() {
        stash(submission);
    }
}

/// Drains everything still queued after a fatal committer error. Dropping
/// an unsettled submission fails its waiter with the recorded group error
/// (the drop guard), so no explicit per-frame failure is needed here — and
/// any submission that slips in *after* this drain is settled the same way
/// when the channel's receiver drops.
fn drain_queued(rx: &Receiver<Submission>) {
    while let Ok(submission) = rx.try_recv() {
        drop(submission);
    }
}

/// Records a fatal committer error and raises the poison flag.
fn poison(shared: &Shared, err: &PersistError) {
    *shared.group_error.lock().expect("group error lock") = Some(err.clone());
    shared.poisoned.store(true, Ordering::Release);
}
