//! The group-commit committer: one dedicated thread per
//! [`crate::TenantLedger`] running [`SyncPolicy::GroupCommit`], draining a
//! submission channel into batched WAL writes.
//!
//! ## Protocol
//!
//! Appenders encode their frame (no lock held), push a `Submission` onto
//! the channel, and block on a per-thread `Waiter`. The committer drains
//! up to `max_batch` frames per round — waiting at most `max_wait` after
//! the first for stragglers — then, under the ledger's inner lock, issues
//! **one vectored write + one fsync** for the whole batch, applies the
//! batch to the snapshot mirror, advances the durable-frame watermark
//! ([`GroupCommitStats::durable_frames`]), and wakes every blocked
//! appender. An append therefore returns only once its own frame is
//! durable — `Always`-grade semantics — while the fsync cost is shared by
//! every frame that queued behind the previous fsync (*natural batching*).
//!
//! ## Failure and crash semantics
//!
//! A write/fsync error poisons the ledger: the batch's appenders get the
//! error, the channel is drained with every queued appender failed, and
//! all later appends are refused (the engine's grant path then refuses the
//! release — ε stays conservatively spent, nothing unlogged escapes).
//! [`crate::TenantLedger::crash`] severs **mid-batch**: queued frames are
//! stashed into the writer's pending buffer (so `crash(keep_fraction)` can
//! write a torn prefix of them, exactly like a real crash mid-`write(2)`),
//! their appenders fail, and the committer exits.
//!
//! [`SyncPolicy::GroupCommit`]: crate::SyncPolicy::GroupCommit

use crate::ledger::{auto_rotate_due, rotate_locked, Inner, Shared, CRASHED_MSG};
use crate::record::WalRecord;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Observability counters of a group-commit committer (all zero for other
/// sync policies and for ledgers that have not yet appended).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupCommitStats {
    /// Frames handed to the committer.
    pub submitted_frames: u64,
    /// The durable watermark: frames written **and fsync'd**. Equals
    /// `submitted_frames` whenever no append is in flight, because every
    /// append blocks until its frame is at or below this watermark.
    pub durable_frames: u64,
    /// Batches committed (each one vectored write + one fsync); the
    /// amortization factor is `durable_frames / batches`.
    pub batches: u64,
    /// Largest batch committed so far.
    pub largest_batch: u64,
}

/// The atomic counters behind [`GroupCommitStats`].
#[derive(Debug, Default)]
pub(crate) struct GroupCounters {
    submitted: AtomicU64,
    durable: AtomicU64,
    batches: AtomicU64,
    largest: AtomicU64,
}

impl GroupCounters {
    /// Counts one submitted frame.
    pub(crate) fn count_submission(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Advances the durable watermark by one committed batch of `frames`.
    fn record_batch(&self, frames: u64) {
        self.durable.fetch_add(frames, Ordering::Release);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.largest.fetch_max(frames, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting.
    pub(crate) fn snapshot(&self) -> GroupCommitStats {
        GroupCommitStats {
            submitted_frames: self.submitted.load(Ordering::Relaxed),
            durable_frames: self.durable.load(Ordering::Acquire),
            batches: self.batches.load(Ordering::Relaxed),
            largest_batch: self.largest.load(Ordering::Relaxed),
        }
    }
}

/// How long a blocked appender sleeps between re-checks of the poison flag
/// (the normal wake-up is the committer's notify; this only bounds the
/// stall when a crash races a submission into a dying channel).
const POISON_RECHECK: Duration = Duration::from_millis(25);

/// The settled state of one submitted frame.
#[derive(Debug)]
enum WaitState {
    /// Not yet committed.
    Pending,
    /// Written and fsync'd.
    Durable,
    /// The committer failed or the ledger crashed before the frame landed.
    Failed(String),
}

/// One appender's handle on its in-flight frame. Reused per thread (an
/// append is synchronous, so a thread has at most one frame in flight).
#[derive(Debug)]
pub(crate) struct Waiter {
    state: Mutex<WaitState>,
    cv: Condvar,
}

impl Waiter {
    fn new() -> Self {
        Self { state: Mutex::new(WaitState::Pending), cv: Condvar::new() }
    }

    /// Re-arms the waiter for a fresh submission.
    fn reset(&self) {
        *self.state.lock().expect("waiter lock") = WaitState::Pending;
    }

    /// Marks the frame durable and wakes the appender.
    fn complete(&self) {
        *self.state.lock().expect("waiter lock") = WaitState::Durable;
        self.cv.notify_all();
    }

    /// Fails the frame and wakes the appender.
    fn fail(&self, msg: &str) {
        *self.state.lock().expect("waiter lock") = WaitState::Failed(msg.to_string());
        self.cv.notify_all();
    }

    /// Blocks until the frame settles. `poisoned` is the ledger-wide crash
    /// flag: if it rises while the frame is still pending (a submission
    /// racing a crash can slip past the committer's final drain), the wait
    /// gives up with the crash error — the conservative direction, since an
    /// unacknowledged frame during a crash is exactly a real crash's
    /// ambiguity.
    fn wait(&self, poisoned: &AtomicBool) -> Result<(), String> {
        let mut state = self.state.lock().expect("waiter lock");
        loop {
            match &*state {
                WaitState::Durable => return Ok(()),
                WaitState::Failed(msg) => return Err(msg.clone()),
                WaitState::Pending => {
                    let (guard, timeout) =
                        self.cv.wait_timeout(state, POISON_RECHECK).expect("waiter lock");
                    state = guard;
                    // A settled state always wins over the poison flag.
                    if timeout.timed_out()
                        && matches!(*state, WaitState::Pending)
                        && poisoned.load(Ordering::Acquire)
                    {
                        return Err(CRASHED_MSG.to_string());
                    }
                }
            }
        }
    }
}

std::thread_local! {
    /// The per-thread reusable waiter (appends are synchronous: at most one
    /// in-flight frame per thread, across all ledgers).
    static THREAD_WAITER: Arc<Waiter> = Arc::new(Waiter::new());
}

/// Re-arms and hands out the calling thread's waiter.
pub(crate) fn armed_thread_waiter() -> Arc<Waiter> {
    THREAD_WAITER.with(|w| {
        w.reset();
        Arc::clone(w)
    })
}

/// Blocks on the calling thread's waiter (see [`Waiter::wait`]).
pub(crate) fn wait_thread_waiter(poisoned: &AtomicBool) -> Result<(), String> {
    THREAD_WAITER.with(|w| w.wait(poisoned))
}

/// One message on the submission channel.
#[derive(Debug)]
pub(crate) enum Submission {
    /// An encoded frame plus the record it encodes (the committer applies
    /// the record to the snapshot mirror at commit time) and the appender's
    /// waiter.
    Frame {
        /// The complete frame bytes (header + payload).
        bytes: Vec<u8>,
        /// The record, for the mirror.
        record: WalRecord,
        /// The blocked appender.
        waiter: Arc<Waiter>,
    },
    /// A bare wake-up (crash uses it to unblock a committer in `recv`).
    Nudge,
}

/// The ledger's handle on its lazily-spawned committer.
#[derive(Debug)]
pub(crate) struct CommitterHandle {
    /// The submission side of the channel. Dropping it (ledger drop) is the
    /// clean-shutdown signal.
    pub(crate) tx: Sender<Submission>,
    /// The thread handle, joined on crash or drop.
    pub(crate) join: Mutex<Option<JoinHandle<()>>>,
}

/// Spawns the committer thread for `shared`.
pub(crate) fn spawn(
    shared: Arc<Shared>,
    rx: Receiver<Submission>,
    max_batch: usize,
    max_wait: Duration,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("osdp-wal-committer".into())
        .spawn(move || run(&shared, &rx, max_batch.max(1), max_wait))
        .expect("spawning the WAL committer thread")
}

/// Whether the committer keeps running after a batch.
enum Flow {
    Continue,
    Stop,
}

/// The committer main loop: block for the first submission, accumulate a
/// batch, commit it, repeat until the channel disconnects (ledger drop) or
/// the ledger crashes / the disk fails.
fn run(shared: &Shared, rx: &Receiver<Submission>, max_batch: usize, max_wait: Duration) {
    let mut batch: Vec<Submission> = Vec::new();
    loop {
        batch.clear();
        match rx.recv() {
            Ok(first) => batch.push(first),
            // Disconnected: the ledger is being dropped. Appends block, so
            // nothing can be in flight — fall through to the final drain
            // for defense in depth, then exit.
            Err(_) => break,
        }
        let mut frames = batch.iter().filter(|s| matches!(s, Submission::Frame { .. })).count();
        let deadline = (max_wait > Duration::ZERO).then(|| Instant::now() + max_wait);
        let mut disconnected = false;
        while frames < max_batch {
            let next = match deadline {
                Some(d) => match rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
                    Ok(s) => Some(s),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        disconnected = true;
                        None
                    }
                },
                None => match rx.try_recv() {
                    Ok(s) => Some(s),
                    Err(TryRecvError::Empty) => None,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        None
                    }
                },
            };
            let Some(next) = next else { break };
            if matches!(next, Submission::Frame { .. }) {
                frames += 1;
            }
            batch.push(next);
        }
        if matches!(commit_batch(shared, rx, &mut batch), Flow::Stop) {
            return;
        }
        if disconnected {
            break;
        }
    }
    // Final drain (clean shutdown): commit anything still queued.
    batch.clear();
    while let Ok(s) = rx.try_recv() {
        batch.push(s);
    }
    let _ = commit_batch(shared, rx, &mut batch);
}

/// Commits one batch: one vectored write + one fsync under the inner lock,
/// mirror application, watermark advance, waiter wake-ups — or, on crash /
/// IO failure, the stash-and-fail path.
fn commit_batch(shared: &Shared, rx: &Receiver<Submission>, batch: &mut Vec<Submission>) -> Flow {
    let mut inner = shared.inner.lock().expect("ledger lock");
    if inner.crashed {
        stash_and_fail(rx, &mut inner, batch);
        return Flow::Stop;
    }
    let frames: Vec<&[u8]> = batch
        .iter()
        .filter_map(|s| match s {
            Submission::Frame { bytes, .. } => Some(bytes.as_slice()),
            Submission::Nudge => None,
        })
        .collect();
    if frames.is_empty() {
        // Nudge-only round (no crash observed): nothing to do.
        return Flow::Continue;
    }
    let committed = frames.len() as u64;
    match inner.writer.commit_vectored(&frames) {
        Ok(()) => {
            drop(frames);
            for submission in batch.iter() {
                if let Submission::Frame { record, .. } = submission {
                    match record {
                        WalRecord::Grant(g) => inner.mirror.apply_grant(g),
                        WalRecord::Refusal(_) => inner.mirror.apply_refusal(),
                        WalRecord::SnapshotMarker { .. } => {}
                    }
                    inner.frames_since_rotation += 1;
                }
            }
            shared.counters.record_batch(committed);
            let rotation = if auto_rotate_due(shared, &inner) {
                rotate_locked(shared, &mut inner)
            } else {
                Ok(())
            };
            drop(inner);
            // The frames are durable regardless of how rotation fared.
            for submission in batch.iter() {
                if let Submission::Frame { waiter, .. } = submission {
                    waiter.complete();
                }
            }
            match rotation {
                Ok(()) => Flow::Continue,
                Err(e) => {
                    // Durable frames acknowledged, but the shard can no
                    // longer rotate — poison and stop accepting appends.
                    poison(shared, &format!("group-commit auto-snapshot failed: {e}"));
                    drain_and_fail(shared, rx);
                    Flow::Stop
                }
            }
        }
        Err(e) => {
            let msg = format!("group commit write failed: {e}");
            poison(shared, &msg);
            drop(inner);
            for submission in batch.iter() {
                if let Submission::Frame { waiter, .. } = submission {
                    waiter.fail(&msg);
                }
            }
            drain_and_fail(shared, rx);
            Flow::Stop
        }
    }
}

/// Crash path: stash every unwritten frame (batch order) into the writer's
/// pending buffer — [`crate::TenantLedger::crash`] then writes a
/// `keep_fraction` prefix of it as the torn tail, severing **mid-batch** —
/// and fail every blocked appender, batch and channel alike.
fn stash_and_fail(rx: &Receiver<Submission>, inner: &mut Inner, batch: &mut Vec<Submission>) {
    let mut stash = |submission: Submission| {
        if let Submission::Frame { bytes, waiter, .. } = submission {
            inner.writer.pending_mut().extend_from_slice(&bytes);
            waiter.fail(CRASHED_MSG);
        }
    };
    for submission in batch.drain(..) {
        stash(submission);
    }
    while let Ok(submission) = rx.try_recv() {
        stash(submission);
    }
}

/// Fails everything still queued after a committer IO failure.
fn drain_and_fail(shared: &Shared, rx: &Receiver<Submission>) {
    let msg = shared
        .group_error
        .lock()
        .expect("group error lock")
        .clone()
        .unwrap_or_else(|| CRASHED_MSG.to_string());
    while let Ok(submission) = rx.try_recv() {
        if let Submission::Frame { waiter, .. } = submission {
            waiter.fail(&msg);
        }
    }
}

/// Records a fatal committer error and raises the poison flag.
fn poison(shared: &Shared, msg: &str) {
    *shared.group_error.lock().expect("group error lock") = Some(msg.to_string());
    shared.poisoned.store(true, Ordering::Release);
}
