//! [`TenantLedger`]: one tenant shard's durable budget state on disk.
//!
//! A tenant shard is a directory holding three files:
//!
//! * `wal.log` — header (`OSDPWAL1` + the generation it continues from)
//!   followed by checksummed record frames ([`crate::wal`]);
//! * `snapshot.bin` — the compact collapsed state as of the last rotation
//!   ([`crate::snapshot`]), written via temp-file + rename;
//! * `LOCK` — created with `O_CREAT|O_EXCL`; whoever creates it is the
//!   shard's **single writer**. A crashed writer leaves a stale lock behind
//!   (exactly as a real `kill -9` would); [`force_unlock`] removes it once
//!   the operator knows the process is gone.
//!
//! ## Crash consistency
//!
//! Snapshot rotation orders its writes so that every crash point recovers:
//! flush + fsync the WAL, rename the new snapshot into place, then rewrite
//! the WAL as `header(generation+1) + marker`. A crash between the rename
//! and the rewrite leaves a WAL whose header generation is *older* than the
//! snapshot's — recovery detects the pair mismatch and ignores the stale
//! records (the snapshot already contains them), which is what makes the
//! rotation atomic without double-counting or loss.
//!
//! ## Write paths
//!
//! The buffered policies (`Always`, `EveryN`, `OnDrop`) append under the
//! inner mutex: encode into the writer's reused buffers, flush per policy.
//! [`SyncPolicy::GroupCommit`] appends **lock-free**: the appender encodes
//! its frame, hands it to the per-ledger committer thread
//! ([`crate::committer`]), and blocks until the committer's batched
//! write + single fsync makes it durable — so the per-grant durability
//! contract of `Always` holds while the fsync cost is amortized across
//! every frame in the batch.

use crate::committer::{
    armed_thread_waiter, spawn, wait_thread_waiter, CommitterHandle, GroupCommitStats,
    GroupCounters, Submission,
};
use crate::record::{GrantRecord, RecordRef, RefusalRecord, SnapshotCounters, WalRecord};
use crate::snapshot::{marker_frame, MirrorState, SnapshotState};
use crate::wal::{encode_frame_into, replay, SyncPolicy, WalWriter};
use osdp_core::error::{OsdpError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Magic header of `wal.log`.
const WAL_MAGIC: &[u8; 8] = b"OSDPWAL1";

/// WAL header size: magic + the `u64` snapshot generation it continues.
const WAL_HEADER: usize = 16;

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.bin";
const LOCK_FILE: &str = "LOCK";

/// The error every operation returns after [`TenantLedger::crash`].
pub(crate) const CRASHED_MSG: &str = "ledger writer has crashed (simulated)";

/// Maps an io error into the workspace error type with context.
fn io_err(what: &str, err: std::io::Error) -> OsdpError {
    OsdpError::Persistence(format!("{what}: {err}"))
}

/// The crashed-ledger error.
fn crashed_err() -> OsdpError {
    OsdpError::Persistence(CRASHED_MSG.into())
}

/// Removes a stale `LOCK` file left behind by a crashed writer, returning
/// whether one existed. Only call this once the previous writer process is
/// known to be dead — removing a *live* writer's lock re-opens the shard to
/// a second writer and voids the single-writer guarantee.
pub fn force_unlock(dir: impl AsRef<Path>) -> Result<bool> {
    match std::fs::remove_file(dir.as_ref().join(LOCK_FILE)) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(io_err("removing LOCK", e)),
    }
}

/// What [`TenantLedger::open`] reconstructed from disk. The `base` /
/// `grants` split is deliberate: recovery seeds counters from `base` as
/// plain integers and replays `grants` one record at a time, so the
/// reconstructed accountant and audit totals are integer sums of exactly
/// what was durably logged — bit for bit, no float round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredLedger {
    /// The snapshot state recovery started from (generation 0 and all-zero
    /// counters for a fresh shard).
    pub base: SnapshotState,
    /// The grant records replayed from the WAL tail, in log order (which
    /// under concurrent writers may differ from index order).
    pub grants: Vec<GrantRecord>,
    /// Refusal records replayed from the WAL tail.
    pub refusals: Vec<RefusalRecord>,
    /// Bytes discarded from a torn or corrupt WAL tail (0 after a clean
    /// shutdown).
    pub truncated_bytes: u64,
    /// True when the snapshot file was missing or unreadable and the base
    /// counters were reconstructed from the WAL's snapshot marker instead:
    /// totals are intact, but the per-mechanism aggregate rows of the
    /// pre-marker history are lost.
    pub degraded: bool,
}

impl RecoveredLedger {
    /// Total admitted spend in fixed-point units: base + replayed grants.
    pub fn spent_units(&self) -> u64 {
        self.grants.iter().fold(self.base.counters.spent_units, |t, g| t.saturating_add(g.units))
    }

    /// The audit ε total in fixed-point units: base + replayed grants.
    pub fn audit_units(&self) -> u64 {
        self.grants.iter().fold(self.base.counters.audit_units, |t, g| t.saturating_add(g.units))
    }

    /// The next audit release index (every replayed index is below it).
    pub fn audit_seq(&self) -> u64 {
        self.grants.iter().fold(self.base.counters.audit_seq, |s, g| s.max(g.index + 1))
    }

    /// Total refusals logged (base + replayed).
    pub fn refusal_count(&self) -> u64 {
        self.base.counters.refusals + self.refusals.len() as u64
    }

    /// Total grants logged (base + replayed).
    pub fn grant_count(&self) -> u64 {
        self.base.counters.grants + self.grants.len() as u64
    }

    /// Whether the shard had no durable history at all.
    pub fn is_fresh(&self) -> bool {
        self.base == SnapshotState::default()
            && self.grants.is_empty()
            && self.refusals.is_empty()
            && self.truncated_bytes == 0
    }
}

/// Tuning knobs of [`TenantLedger::open_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerOptions {
    /// Rotate a fresh snapshot automatically once this many frames have
    /// been appended since the last rotation, bounding recovery replay to
    /// at most that many tail frames for long-lived tenants. `None` (the
    /// default) never rotates automatically — rotation stays an explicit
    /// [`TenantLedger::rotate_snapshot`] call.
    pub auto_snapshot_every: Option<u64>,
}

/// The writer state behind the ledger's mutex.
#[derive(Debug)]
pub(crate) struct Inner {
    /// The WAL file + pending frames + reused encode buffers.
    pub(crate) writer: WalWriter,
    /// Appends since the last fsync (drives [`SyncPolicy::EveryN`]).
    unsynced: u32,
    /// The snapshot-consistent mirror of everything logged so far (under
    /// group commit: everything *committed* so far).
    pub(crate) mirror: MirrorState,
    /// Set by [`TenantLedger::crash`]: every later operation fails, drop
    /// flushes nothing and leaves the `LOCK` file behind.
    pub(crate) crashed: bool,
    /// Frames appended since the last snapshot rotation (drives
    /// [`LedgerOptions::auto_snapshot_every`]).
    pub(crate) frames_since_rotation: u64,
}

/// The state shared between the ledger handle and its committer thread.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) dir: PathBuf,
    pub(crate) inner: Mutex<Inner>,
    /// Raised by crash or a fatal committer error; lets blocked group
    /// appenders give up without taking the inner lock.
    pub(crate) poisoned: AtomicBool,
    /// The fatal committer error, if any (None after a plain crash).
    pub(crate) group_error: Mutex<Option<String>>,
    /// Group-commit observability counters (all zero otherwise).
    pub(crate) counters: GroupCounters,
    /// The auto-snapshot threshold ([`LedgerOptions::auto_snapshot_every`]).
    pub(crate) auto_snapshot_every: Option<u64>,
}

/// Whether the auto-snapshot threshold is due.
pub(crate) fn auto_rotate_due(shared: &Shared, inner: &Inner) -> bool {
    shared.auto_snapshot_every.is_some_and(|n| inner.frames_since_rotation >= n.max(1))
}

/// A single-writer, append-only durable ledger for one tenant shard (see
/// the module docs for the file layout and crash-consistency argument).
#[derive(Debug)]
pub struct TenantLedger {
    shared: Arc<Shared>,
    sync: SyncPolicy,
    /// The group-commit committer, spawned lazily on the first append.
    committer: OnceLock<CommitterHandle>,
}

impl TenantLedger {
    /// Opens (creating if absent) the tenant shard at `dir`, acquiring its
    /// writer lock and recovering whatever state is durable. The returned
    /// [`RecoveredLedger`] seeds the in-memory accountant/audit pair; the
    /// ledger itself is positioned to append.
    pub fn open(dir: impl Into<PathBuf>, sync: SyncPolicy) -> Result<(Self, RecoveredLedger)> {
        Self::open_with(dir, sync, LedgerOptions::default())
    }

    /// [`TenantLedger::open`] with explicit [`LedgerOptions`].
    pub fn open_with(
        dir: impl Into<PathBuf>,
        sync: SyncPolicy,
        options: LedgerOptions,
    ) -> Result<(Self, RecoveredLedger)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("creating tenant shard dir", e))?;
        // O_CREAT|O_EXCL: exactly one writer per shard, across processes.
        match OpenOptions::new().write(true).create_new(true).open(dir.join(LOCK_FILE)) {
            Ok(mut lock) => {
                let _ = writeln!(lock, "{}", std::process::id());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                return Err(OsdpError::Persistence(format!(
                    "tenant shard '{}' is locked by another writer (or a crashed one left a \
                     stale LOCK; use force_unlock once that process is known dead)",
                    dir.display()
                )));
            }
            Err(e) => return Err(io_err("creating LOCK", e)),
        }
        // From here on, errors must release the lock we just took.
        match Self::open_locked(&dir, sync, options) {
            Ok(ok) => Ok(ok),
            Err(e) => {
                let _ = std::fs::remove_file(dir.join(LOCK_FILE));
                Err(e)
            }
        }
    }

    fn open_locked(
        dir: &Path,
        sync: SyncPolicy,
        options: LedgerOptions,
    ) -> Result<(Self, RecoveredLedger)> {
        let recovered = read_state(dir)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(WAL_FILE))
            .map_err(|e| io_err("opening wal.log", e))?;
        let len = file.metadata().map_err(|e| io_err("stat wal.log", e))?.len();
        let expected = wal_len_after_recovery(&recovered, len);
        if expected != len {
            // Torn tail or stale/partial header: rewrite the file to the
            // recovered prefix so the next crash has a clean base.
            rewrite_wal(&mut file, &recovered)?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| io_err("seeking wal.log", e))?;
        let mut mirror = MirrorState::from_snapshot(&recovered.base);
        for grant in &recovered.grants {
            mirror.apply_grant(grant);
        }
        for _ in &recovered.refusals {
            mirror.apply_refusal();
        }
        // The replayed tail counts against the auto-snapshot threshold, so
        // "recovery replays ≤ N frames" holds across reopen chains too.
        let frames_since_rotation = (recovered.grants.len() + recovered.refusals.len()) as u64;
        let ledger = Self {
            shared: Arc::new(Shared {
                dir: dir.to_path_buf(),
                inner: Mutex::new(Inner {
                    writer: WalWriter::new(file),
                    unsynced: 0,
                    mirror,
                    crashed: false,
                    frames_since_rotation,
                }),
                poisoned: AtomicBool::new(false),
                group_error: Mutex::new(None),
                counters: GroupCounters::default(),
                auto_snapshot_every: options.auto_snapshot_every,
            }),
            sync,
            committer: OnceLock::new(),
        };
        Ok((ledger, recovered))
    }

    /// Reads a shard's durable state **without** taking the writer lock,
    /// truncating, or rewriting anything. For audits and tests that need an
    /// independent view of what is on disk; racing a live writer sees some
    /// durable prefix.
    pub fn peek(dir: impl AsRef<Path>) -> Result<RecoveredLedger> {
        read_state(dir.as_ref())
    }

    /// The shard directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// The configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// The counters a snapshot taken now would contain — the mirror of
    /// everything logged so far (logged state, not live session state).
    pub fn counters(&self) -> SnapshotCounters {
        self.shared.inner.lock().expect("ledger lock").mirror.counters
    }

    /// Group-commit observability: submitted frames, the durable-frame
    /// watermark, batches committed, largest batch. All zero for the other
    /// sync policies.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.shared.counters.snapshot()
    }

    /// Appends one grant record, durable per the sync policy before return.
    pub fn append_grant(&self, grant: &GrantRecord) -> Result<()> {
        self.append(RecordRef::Grant(grant))
    }

    /// Appends one refusal record, durable per the sync policy.
    pub fn append_refusal(&self, refusal: &RefusalRecord) -> Result<()> {
        self.append(RecordRef::Refusal(refusal))
    }

    fn append(&self, record: RecordRef<'_>) -> Result<()> {
        if let SyncPolicy::GroupCommit { max_batch, max_wait } = self.sync {
            return self.append_group(record, max_batch, max_wait);
        }
        let mut inner = self.shared.inner.lock().expect("ledger lock");
        if inner.crashed {
            return Err(crashed_err());
        }
        match record {
            RecordRef::Grant(g) => inner.mirror.apply_grant(g),
            RecordRef::Refusal(_) => inner.mirror.apply_refusal(),
            RecordRef::Marker { .. } => unreachable!("markers are written by rotation"),
        }
        inner.writer.buffer_record(record);
        inner.unsynced += 1;
        inner.frames_since_rotation += 1;
        let flush = match self.sync {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => inner.unsynced >= n.max(1),
            SyncPolicy::OnDrop => false,
            SyncPolicy::GroupCommit { .. } => unreachable!("handled above"),
        };
        if flush {
            flush_inner(&mut inner)?;
        }
        if auto_rotate_due(&self.shared, &inner) {
            rotate_locked(&self.shared, &mut inner)?;
        }
        Ok(())
    }

    /// The group-commit append path: encode lock-free, submit, block until
    /// the committer's batched fsync covers this frame.
    fn append_group(
        &self,
        record: RecordRef<'_>,
        max_batch: u32,
        max_wait: std::time::Duration,
    ) -> Result<()> {
        if self.shared.poisoned.load(Ordering::Acquire) {
            return Err(self.group_failure());
        }
        let handle = self.committer.get_or_init(|| {
            let (tx, rx) = std::sync::mpsc::channel();
            let join = spawn(Arc::clone(&self.shared), rx, max_batch as usize, max_wait);
            CommitterHandle { tx, join: Mutex::new(Some(join)) }
        });
        // Encode the frame outside any lock. The frame buffer must be owned
        // (it crosses threads); the payload scratch is thread-local and
        // reused across appends.
        std::thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        let mut bytes = Vec::with_capacity(192);
        SCRATCH.with(|s| encode_frame_into(&mut bytes, &mut s.borrow_mut(), record));
        let waiter = armed_thread_waiter();
        let submission = Submission::Frame { bytes, record: record.to_owned_record(), waiter };
        if handle.tx.send(submission).is_err() {
            // The committer exited (crash or fatal IO error) — refuse.
            return Err(self.group_failure());
        }
        self.shared.counters.count_submission();
        wait_thread_waiter(&self.shared.poisoned).map_err(OsdpError::Persistence)
    }

    /// The error group appends report once the ledger is poisoned.
    fn group_failure(&self) -> OsdpError {
        match self.shared.group_error.lock().expect("group error lock").clone() {
            Some(msg) => OsdpError::Persistence(msg),
            None => crashed_err(),
        }
    }

    /// Flushes and fsyncs every buffered frame, regardless of policy. Under
    /// group commit this is a no-op barrier: every append that has returned
    /// is already durable (that is the policy's contract), and in-flight
    /// appends on other threads have made no promise to this caller yet.
    pub fn sync(&self) -> Result<()> {
        if matches!(self.sync, SyncPolicy::GroupCommit { .. }) {
            if self.shared.poisoned.load(Ordering::Acquire) {
                return Err(self.group_failure());
            }
            let crashed = self.shared.inner.lock().expect("ledger lock").crashed;
            return if crashed { Err(crashed_err()) } else { Ok(()) };
        }
        let mut inner = self.shared.inner.lock().expect("ledger lock");
        if inner.crashed {
            return Err(crashed_err());
        }
        flush_inner(&mut inner)
    }

    /// Rotates the shard: collapses the logged history into a new snapshot
    /// generation and resets the WAL to `header + marker`. See the module
    /// docs for why each crash point in this sequence recovers cleanly.
    /// Under group commit the inner lock serializes this against batch
    /// commits; frames still queued commit *after* the rotation, into the
    /// new generation, which recovery replays as the tail.
    pub fn rotate_snapshot(&self) -> Result<()> {
        let mut inner = self.shared.inner.lock().expect("ledger lock");
        if inner.crashed {
            return Err(crashed_err());
        }
        rotate_locked(&self.shared, &mut inner)
    }

    /// **Crash simulation**: drops the writer as an abrupt process death
    /// would. Buffered frames are lost; a `keep_fraction` in `(0, 1]`
    /// additionally writes that fraction of the buffered *bytes* first —
    /// a torn frame mid-write, exercising the CRC truncation path. Under
    /// group commit the crash severs **mid-batch**: the committer is
    /// stopped, every frame still queued (its appender blocked, its grant
    /// not yet acknowledged) joins the pending buffer, and `keep_fraction`
    /// applies to those bytes — frames whose append already *returned* were
    /// fsync'd and survive in full, which is exactly the `Always`-grade
    /// guarantee. The `LOCK` file is deliberately left behind (a dead
    /// process releases nothing), so reopening requires [`force_unlock`],
    /// same as after a real `kill -9`. Every later operation on this ledger
    /// fails.
    ///
    /// What this does **not** simulate: loss of OS-buffered writes that
    /// were never fsync'd (the file system keeps what `write(2)` accepted,
    /// a powered-off machine may not), and torn *sector* writes inside
    /// fsync'd data. Those need a real `kill -9` / power-cut harness.
    pub fn crash(&self, keep_fraction: f64) -> Result<()> {
        {
            let mut inner = self.shared.inner.lock().expect("ledger lock");
            if inner.crashed {
                return Ok(());
            }
            inner.crashed = true;
        }
        self.shared.poisoned.store(true, Ordering::Release);
        // Stop the committer (if group commit ever spawned one): it stashes
        // every queued frame into the pending buffer and fails the blocked
        // appenders, then exits; joining makes the stash visible below.
        if let Some(handle) = self.committer.get() {
            let _ = handle.tx.send(Submission::Nudge);
            if let Some(join) = handle.join.lock().expect("committer join lock").take() {
                let _ = join.join();
            }
        }
        let mut inner = self.shared.inner.lock().expect("ledger lock");
        let keep = (inner.writer.pending().len() as f64 * keep_fraction.clamp(0.0, 1.0)) as usize;
        if keep > 0 {
            let torn: Vec<u8> = inner.writer.pending()[..keep].to_vec();
            inner.writer.file_mut().write_all(&torn).map_err(|e| io_err("writing torn tail", e))?;
        }
        inner.writer.pending_mut().clear();
        Ok(())
    }

    /// Whether [`TenantLedger::crash`] has been called.
    pub fn is_crashed(&self) -> bool {
        self.shared.inner.lock().expect("ledger lock").crashed
    }
}

impl Drop for TenantLedger {
    fn drop(&mut self) {
        // Retire the committer first: dropping the sender disconnects the
        // channel, the committer drains and commits what little could
        // remain, and the join makes that ordering visible. (After a crash
        // the committer has already exited and the join slot is empty.)
        if let Some(handle) = self.committer.take() {
            let CommitterHandle { tx, join } = handle;
            drop(tx);
            if let Ok(Some(join)) = join.into_inner() {
                let _ = join.join();
            }
        }
        let Ok(mut inner) = self.shared.inner.lock() else {
            return;
        };
        if inner.crashed {
            // A crashed writer releases nothing: pending bytes are gone and
            // the LOCK file stays, exactly like a killed process.
            return;
        }
        let _ = flush_inner(&mut inner);
        let _ = std::fs::remove_file(self.shared.dir.join(LOCK_FILE));
    }
}

/// Writes + fsyncs the pending buffer.
fn flush_inner(inner: &mut Inner) -> Result<()> {
    inner.writer.flush_and_sync().map_err(|e| io_err("flushing wal.log", e))?;
    inner.unsynced = 0;
    Ok(())
}

/// The rotation body, shared by [`TenantLedger::rotate_snapshot`], the
/// auto-snapshot threshold on the buffered append path, and the committer's
/// post-batch auto-snapshot check (which already holds the inner lock).
pub(crate) fn rotate_locked(shared: &Shared, inner: &mut Inner) -> Result<()> {
    flush_inner(inner)?;
    let generation = inner.mirror.generation + 1;
    let snapshot = inner.mirror.to_snapshot(generation);
    // Temp + rename: a torn snapshot write never shadows the good one.
    let tmp = shared.dir.join("snapshot.tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| io_err("creating snapshot.tmp", e))?;
        f.write_all(&snapshot.encode()).map_err(|e| io_err("writing snapshot.tmp", e))?;
        f.sync_data().map_err(|e| io_err("syncing snapshot.tmp", e))?;
    }
    std::fs::rename(&tmp, shared.dir.join(SNAPSHOT_FILE))
        .map_err(|e| io_err("renaming snapshot into place", e))?;
    if let Ok(d) = File::open(&shared.dir) {
        let _ = d.sync_all();
    }
    inner.mirror.generation = generation;
    // Reset the WAL behind the new snapshot. A crash before this block
    // leaves WAL generation < snapshot generation: recovery ignores the
    // (now collapsed) records instead of double-counting them.
    let base = RecoveredLedger {
        base: snapshot,
        grants: Vec::new(),
        refusals: Vec::new(),
        truncated_bytes: 0,
        degraded: false,
    };
    rewrite_wal(inner.writer.file_mut(), &base)?;
    inner.writer.file_mut().seek(SeekFrom::End(0)).map_err(|e| io_err("seeking wal.log", e))?;
    inner.unsynced = 0;
    inner.frames_since_rotation = 0;
    Ok(())
}

/// The byte length `wal.log` should have after recovering `recovered` from
/// a file currently `len` bytes long (used to decide whether a rewrite is
/// needed).
fn wal_len_after_recovery(recovered: &RecoveredLedger, len: u64) -> u64 {
    if recovered.truncated_bytes > 0 || len < WAL_HEADER as u64 {
        // Rewrite to the valid prefix.
        u64::MAX
    } else {
        len
    }
}

/// Rewrites `wal.log` from scratch: header at the base generation, a
/// marker when there is a snapshot to mark, then the recovered tail frames.
fn rewrite_wal(file: &mut File, recovered: &RecoveredLedger) -> Result<()> {
    let mut image = Vec::with_capacity(WAL_HEADER + 256);
    image.extend_from_slice(WAL_MAGIC);
    image.extend_from_slice(&recovered.base.generation.to_le_bytes());
    if recovered.base.generation > 0 {
        image.extend_from_slice(&marker_frame(recovered.base.generation, recovered.base.counters));
    }
    // Interleaving of the tail is unknown after a crash; grants-then-
    // refusals preserves every total (replay is order-independent).
    let mut scratch = Vec::with_capacity(128);
    for grant in &recovered.grants {
        encode_frame_into(&mut image, &mut scratch, RecordRef::Grant(grant));
    }
    for refusal in &recovered.refusals {
        encode_frame_into(&mut image, &mut scratch, RecordRef::Refusal(refusal));
    }
    file.set_len(0).map_err(|e| io_err("truncating wal.log", e))?;
    file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seeking wal.log", e))?;
    file.write_all(&image).map_err(|e| io_err("rewriting wal.log", e))?;
    file.sync_data().map_err(|e| io_err("syncing wal.log", e))?;
    Ok(())
}

/// Reads and reconciles `snapshot.bin` + `wal.log` (shared by `open` and
/// `peek`; never writes).
fn read_state(dir: &Path) -> Result<RecoveredLedger> {
    let snapshot = match std::fs::read(dir.join(SNAPSHOT_FILE)) {
        Ok(bytes) => Some(SnapshotState::decode(&bytes)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(io_err("reading snapshot.bin", e)),
    };
    let wal = match File::open(dir.join(WAL_FILE)) {
        Ok(mut f) => {
            let mut bytes = Vec::new();
            f.read_to_end(&mut bytes).map_err(|e| io_err("reading wal.log", e))?;
            bytes
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("opening wal.log", e)),
    };
    let base_or_default = snapshot.clone().unwrap_or_default();
    if wal.len() < WAL_HEADER {
        // Empty or mid-rewrite header: no tail survived; the snapshot (if
        // any) is the whole durable state.
        return Ok(RecoveredLedger {
            base: base_or_default,
            grants: Vec::new(),
            refusals: Vec::new(),
            truncated_bytes: wal.len() as u64,
            degraded: false,
        });
    }
    if &wal[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(OsdpError::Persistence("wal.log has a bad magic header".into()));
    }
    let wal_generation =
        u64::from_le_bytes(wal[WAL_MAGIC.len()..WAL_HEADER].try_into().expect("len checked"));
    let snapshot_generation = base_or_default.generation;
    if wal_generation < snapshot_generation {
        // Rotation crashed between the snapshot rename and the WAL rewrite:
        // every WAL record is already collapsed into the snapshot.
        return Ok(RecoveredLedger {
            base: base_or_default,
            grants: Vec::new(),
            refusals: Vec::new(),
            truncated_bytes: (wal.len() - WAL_HEADER) as u64,
            degraded: false,
        });
    }
    let outcome = replay(&wal[WAL_HEADER..]);
    let mut records = outcome.records.into_iter();
    let (base, degraded) = if wal_generation == snapshot_generation {
        (base_or_default, false)
    } else {
        // WAL is ahead of the snapshot: only a lost/deleted snapshot file
        // can cause this (the rename is atomic). Fall back to the marker's
        // counter block — totals survive, aggregate rows do not.
        match records.next() {
            Some(WalRecord::SnapshotMarker { generation, counters })
                if generation == wal_generation =>
            {
                let base = SnapshotState { generation: wal_generation, counters, rows: Vec::new() };
                (base, true)
            }
            _ => {
                return Err(OsdpError::Persistence(format!(
                    "wal.log continues snapshot generation {wal_generation} but snapshot.bin \
                     is at generation {snapshot_generation} and the WAL carries no marker to \
                     recover from"
                )));
            }
        }
    };
    let mut grants = Vec::new();
    let mut refusals = Vec::new();
    for record in records {
        match record {
            WalRecord::Grant(g) => grants.push(g),
            WalRecord::Refusal(r) => refusals.push(r),
            WalRecord::SnapshotMarker { generation, counters } => {
                // The rotation marker: must agree with the base it follows.
                if generation != base.generation || counters != base.counters {
                    return Err(OsdpError::Persistence(
                        "wal.log snapshot marker disagrees with the recovered base state".into(),
                    ));
                }
            }
        }
    }
    Ok(RecoveredLedger {
        base,
        grants,
        refusals,
        truncated_bytes: (wal.len() - WAL_HEADER - outcome.valid_len) as u64,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::GuaranteeTag;
    use crate::wal::append_record;
    use std::time::Duration;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("osdp-persist-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grant(index: u64, units: u64) -> GrantRecord {
        GrantRecord {
            index,
            units,
            epsilon: units as f64 * 1e-12,
            trials: 1,
            bins: 8,
            guarantee: GuaranteeTag::Osdp,
            mechanism: "OsdpLaplaceL1".into(),
            policy: "P".into(),
            query: "q".into(),
        }
    }

    #[test]
    fn clean_shutdown_recovers_everything() {
        let dir = tmp_dir("clean");
        {
            let (ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
            assert!(recovered.is_fresh());
            for i in 0..5 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger
                .append_refusal(&RefusalRecord {
                    units: 100,
                    epsilon: 1e-10,
                    mechanism: "M".into(),
                })
                .unwrap();
        }
        let (ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        assert_eq!(recovered.grants.len(), 5);
        assert_eq!(recovered.spent_units(), 500);
        assert_eq!(recovered.audit_seq(), 5);
        assert_eq!(recovered.refusal_count(), 1);
        assert_eq!(recovered.truncated_bytes, 0);
        assert!(!recovered.degraded);
        drop(ledger);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_loses_only_unflushed_tail() {
        let dir = tmp_dir("crash");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::EveryN(2)).unwrap();
            for i in 0..5 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            // 4 flushed (EveryN(2)), the 5th pending; crash drops it.
            ledger.crash(0.0).unwrap();
            assert!(ledger.is_crashed());
            assert!(ledger.append_grant(&grant(9, 1)).is_err());
            assert!(ledger.sync().is_err());
            assert!(ledger.rotate_snapshot().is_err());
        }
        // The crashed writer left its LOCK behind.
        assert!(TenantLedger::open(&dir, SyncPolicy::Always).is_err());
        assert!(force_unlock(&dir).unwrap());
        assert!(!force_unlock(&dir).unwrap());
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(recovered.grants.len(), 4, "the unflushed grant is gone");
        assert_eq!(recovered.spent_units(), 400);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let dir = tmp_dir("torn");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
            for i in 0..4 {
                ledger.append_grant(&grant(i, 250)).unwrap();
            }
            // Write ~60% of the pending bytes: two-and-a-bit frames.
            ledger.crash(0.6).unwrap();
        }
        force_unlock(&dir).unwrap();
        let peek = TenantLedger::peek(&dir).unwrap();
        assert!(peek.truncated_bytes > 0, "the torn frame is detected");
        assert!(peek.grants.len() < 4);
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        assert_eq!(recovered.grants.len(), peek.grants.len());
        assert_eq!(recovered.spent_units(), 250 * peek.grants.len() as u64);
        // Open rewrote the file: a second recovery sees a clean log.
        force_unlock(&dir).unwrap();
        let again = TenantLedger::peek(&dir).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(again.spent_units(), recovered.spent_units());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_collapses_history_and_survives() {
        let dir = tmp_dir("rotate");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
            for i in 0..6 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger.rotate_snapshot().unwrap();
            for i in 6..8 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
        }
        let (ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        assert_eq!(recovered.base.generation, 1);
        assert_eq!(recovered.base.counters.spent_units, 600);
        assert_eq!(recovered.grants.len(), 2, "only the tail is replayed");
        assert_eq!(recovered.spent_units(), 800);
        assert_eq!(recovered.audit_seq(), 8);
        assert_eq!(recovered.base.rows.len(), 1);
        assert_eq!(recovered.base.rows[0].releases, 6);
        assert!(!recovered.degraded);
        assert_eq!(ledger.counters().spent_units, 800);
        drop(ledger);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_interrupted_rotation_is_not_double_counted() {
        let dir = tmp_dir("stale");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
            for i in 0..3 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger.rotate_snapshot().unwrap();
        }
        // Simulate the crash window between snapshot rename and WAL rewrite:
        // regress the WAL to generation 0 with the old records.
        let mut image = Vec::new();
        image.extend_from_slice(WAL_MAGIC);
        image.extend_from_slice(&0u64.to_le_bytes());
        for i in 0..3 {
            append_record(&mut image, &WalRecord::Grant(grant(i, 100)));
        }
        std::fs::write(dir.join(WAL_FILE), &image).unwrap();
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(recovered.base.generation, 1);
        assert_eq!(recovered.spent_units(), 300, "stale records are not re-added");
        assert!(recovered.grants.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lost_snapshot_falls_back_to_the_marker() {
        let dir = tmp_dir("marker");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
            for i in 0..3 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger.rotate_snapshot().unwrap();
            ledger.append_grant(&grant(3, 50)).unwrap();
        }
        std::fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
        assert!(recovered.degraded, "rows lost, totals kept");
        assert_eq!(recovered.spent_units(), 350);
        assert_eq!(recovered.audit_seq(), 4);
        assert!(recovered.base.rows.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_writer_is_refused_while_locked() {
        let dir = tmp_dir("lock");
        let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        let err = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap_err();
        assert!(err.to_string().contains("locked"));
        drop(ledger);
        // A clean drop releases the lock.
        let (_again, _) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_appends_are_durable_on_return() {
        let dir = tmp_dir("group-basic");
        {
            let (ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::group_commit()).unwrap();
            assert!(recovered.is_fresh());
            for i in 0..6 {
                ledger.append_grant(&grant(i, 100)).unwrap();
                // Every returned append is at or below the watermark — and
                // visible to an independent peek immediately.
                let stats = ledger.group_commit_stats();
                assert_eq!(stats.durable_frames, i + 1);
                assert_eq!(stats.submitted_frames, i + 1);
            }
            let peek = TenantLedger::peek(&dir).unwrap();
            assert_eq!(peek.spent_units(), 600, "durable before the append returns");
            assert!(ledger.group_commit_stats().batches >= 1);
            ledger.sync().unwrap();
            ledger.rotate_snapshot().unwrap();
            ledger.append_grant(&grant(6, 50)).unwrap();
            assert_eq!(ledger.counters().spent_units, 650);
        }
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::group_commit()).unwrap();
        assert_eq!(recovered.base.generation, 1);
        assert_eq!(recovered.spent_units(), 650);
        assert_eq!(recovered.grants.len(), 1, "rotation collapsed the first six");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_crash_severs_mid_batch() {
        let dir = tmp_dir("group-crash");
        {
            let (ledger, _) = TenantLedger::open(
                &dir,
                SyncPolicy::GroupCommit { max_batch: 8, max_wait: Duration::from_millis(1) },
            )
            .unwrap();
            for i in 0..4 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            // Crash with nothing in flight: every returned append survives
            // in full — the Always-grade guarantee.
            ledger.crash(0.5).unwrap();
            assert!(ledger.append_grant(&grant(9, 1)).is_err());
        }
        force_unlock(&dir).unwrap();
        let peek = TenantLedger::peek(&dir).unwrap();
        assert_eq!(peek.spent_units(), 400, "returned group appends are never lost");
        assert_eq!(peek.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_snapshot_threshold_bounds_replay() {
        let dir = tmp_dir("auto-rotate");
        let options = LedgerOptions { auto_snapshot_every: Some(8) };
        {
            let (ledger, _) = TenantLedger::open_with(&dir, SyncPolicy::OnDrop, options).unwrap();
            for i in 0..20 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
        }
        let (ledger, recovered) =
            TenantLedger::open_with(&dir, SyncPolicy::OnDrop, options).unwrap();
        // 20 appends with rotations at 8 and 16: the tail replays ≤ 8.
        assert_eq!(recovered.base.generation, 2);
        assert_eq!(recovered.grants.len(), 4);
        assert!(recovered.grants.len() as u64 <= 8);
        assert_eq!(recovered.spent_units(), 2_000, "rotation loses nothing");
        assert_eq!(recovered.audit_seq(), 20);
        // The replayed tail counts toward the next threshold: 4 more
        // appends trip rotation again (4 replayed + 4 fresh = 8).
        for i in 20..24 {
            ledger.append_grant(&grant(i, 100)).unwrap();
        }
        drop(ledger);
        let peek = TenantLedger::peek(&dir).unwrap();
        assert_eq!(peek.base.generation, 3);
        assert!(peek.grants.len() as u64 <= 8);
        assert_eq!(peek.spent_units(), 2_400);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_snapshot_works_under_group_commit() {
        let dir = tmp_dir("auto-group");
        let options = LedgerOptions { auto_snapshot_every: Some(4) };
        {
            let (ledger, _) =
                TenantLedger::open_with(&dir, SyncPolicy::group_commit(), options).unwrap();
            for i in 0..10 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
        }
        let peek = TenantLedger::peek(&dir).unwrap();
        assert!(peek.base.generation >= 2, "the committer rotated at the threshold");
        assert!(peek.grants.len() as u64 <= 4);
        assert_eq!(peek.spent_units(), 1_000);
        assert_eq!(peek.audit_seq(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
