//! [`TenantLedger`]: one tenant shard's durable budget state on disk.
//!
//! A tenant shard is a directory holding three files:
//!
//! * `wal.log` — header (`OSDPWAL1` + the generation it continues from)
//!   followed by checksummed record frames ([`crate::wal`]);
//! * `snapshot.bin` — the compact collapsed state as of the last rotation
//!   ([`crate::snapshot`]), written via temp-file + rename;
//! * `LOCK` — created with `O_CREAT|O_EXCL`; whoever creates it is the
//!   shard's **single writer**. A crashed writer leaves a stale lock behind
//!   (exactly as a real `kill -9` would); [`force_unlock`] removes it once
//!   the operator knows the process is gone.
//!
//! ## Crash consistency
//!
//! Snapshot rotation orders its writes so that every crash point recovers:
//! flush + fsync the WAL, rename the new snapshot into place, then rewrite
//! the WAL as `header(generation+1) + marker`. A crash between the rename
//! and the rewrite leaves a WAL whose header generation is *older* than the
//! snapshot's — recovery detects the pair mismatch and ignores the stale
//! records (the snapshot already contains them), which is what makes the
//! rotation atomic without double-counting or loss.
//!
//! ## Write paths
//!
//! The buffered policies (`Always`, `EveryN`, `OnDrop`) append under the
//! inner mutex: encode into the writer's reused buffers, flush per policy.
//! [`SyncPolicy::GroupCommit`] appends **lock-free**: the appender encodes
//! its frame, hands it to the per-ledger committer thread
//! ([`crate::committer`]), and blocks until the committer's batched
//! write + single fsync makes it durable — so the per-grant durability
//! contract of `Always` holds while the fsync cost is amortized across
//! every frame in the batch.

use crate::committer::{
    spawn, CommitterHandle, FrameSubmission, GroupCommitStats, GroupCounters, Submission, Waiter,
};
use crate::record::{
    EpochRecord, GrantRecord, RecordRef, RefusalRecord, SnapshotCounters, WalRecord,
};
use crate::snapshot::{marker_frame, MirrorState, SnapshotState};
use crate::vfs::{persist_error, StdVfs, Vfs};
use crate::wal::{encode_frame_into, replay, RetryPolicy, SyncPolicy, WalWriter};
use osdp_core::error::{FaultClass, OsdpError, PersistError, PersistOp, Result};
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Magic header of `wal.log`.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"OSDPWAL1";

/// WAL header size: magic + the `u64` snapshot generation it continues.
pub(crate) const WAL_HEADER: usize = 16;

pub(crate) const WAL_FILE: &str = "wal.log";
pub(crate) const SNAPSHOT_FILE: &str = "snapshot.bin";
/// The parked prior snapshot generation: rotation renames the old
/// `snapshot.bin` here before moving the new one into place, covering the
/// crash window in which `snapshot.bin` is briefly absent and giving
/// corrupt-snapshot recovery a fallback.
pub(crate) const SNAPSHOT_PREV_FILE: &str = "snapshot.prev";
pub(crate) const LOCK_FILE: &str = "LOCK";

/// The error every operation returns after [`TenantLedger::crash`].
pub(crate) const CRASHED_MSG: &str = "ledger writer has crashed (simulated)";

/// Maps an io error into the workspace error type with context (logical
/// failures; typed IO faults go through [`pe`]).
fn io_err(what: &str, err: std::io::Error) -> OsdpError {
    OsdpError::Persistence(format!("{what}: {err}"))
}

/// A typed persistence error for an IO fault on `path`.
fn pe(op: PersistOp, path: &Path, err: &std::io::Error) -> OsdpError {
    OsdpError::Persist(persist_error(op, path, err))
}

/// The crashed-ledger error (typed: permanent, nothing on this handle can
/// succeed again).
pub(crate) fn crashed_persist() -> PersistError {
    PersistError::new(PersistOp::Commit, "", FaultClass::Permanent, CRASHED_MSG)
}

/// The crashed-ledger error as a workspace error.
fn crashed_err() -> OsdpError {
    OsdpError::Persist(crashed_persist())
}

/// This boot's identity token, recorded in `LOCK` files so a later open can
/// distinguish a live writer (same boot, pid running) from a crash leftover
/// (different boot, or pid gone). Falls back to a constant when the kernel
/// does not expose a boot id — then only pid liveness discriminates.
fn boot_token() -> &'static str {
    static TOKEN: OnceLock<String> = OnceLock::new();
    TOKEN.get_or_init(|| {
        std::fs::read_to_string("/proc/sys/kernel/random/boot_id")
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown-boot".into())
    })
}

/// What inspecting an existing `LOCK` file concluded about its holder.
enum LockHolder {
    /// The recorded writer is (or may be) alive — refuse.
    Alive,
    /// The recorded writer is provably gone; the note says why.
    Dead(String),
    /// Cannot decide (unreadable lock, no liveness oracle) — refuse
    /// conservatively; [`force_unlock`] remains the manual override.
    Unknown,
}

/// Decides whether the holder of `lock_path` is still alive. The lock body
/// is `pid\nboot-token\n`; a token from another boot proves the writer
/// died with that boot, and within the same boot `/proc/<pid>` decides.
/// Legacy single-line locks (pid only) fall back to pid liveness alone.
fn lock_holder_status(vfs: &dyn Vfs, lock_path: &Path) -> LockHolder {
    let Ok(bytes) = vfs.read(lock_path) else {
        return LockHolder::Unknown;
    };
    let text = String::from_utf8_lossy(&bytes);
    let mut lines = text.lines();
    let pid: Option<u32> = lines.next().and_then(|l| l.trim().parse().ok());
    let token = lines.next().map(|l| l.trim().to_string()).filter(|t| !t.is_empty());
    if let Some(token) = &token {
        if token != "unknown-boot" && token != boot_token() {
            return LockHolder::Dead(format!(
                "cleared stale LOCK from a previous boot (token {token}, pid {pid:?})"
            ));
        }
    }
    let Some(pid) = pid else {
        return LockHolder::Unknown;
    };
    if pid == std::process::id() {
        // Our own pid: a live (or crashed-but-undropped) writer in this
        // process still owns the shard.
        return LockHolder::Alive;
    }
    if !Path::new("/proc").is_dir() {
        return LockHolder::Unknown;
    }
    if Path::new(&format!("/proc/{pid}")).exists() {
        LockHolder::Alive
    } else {
        LockHolder::Dead(format!("cleared stale LOCK left by dead pid {pid} (same boot)"))
    }
}

/// Takes the shard's single-writer lock: `O_CREAT|O_EXCL` on `LOCK`, whose
/// body records our pid + boot token. When the file already exists, the
/// recorded holder is probed — a provably-dead holder's lock is cleared
/// (recorded in `report`) and acquisition retried once; a live or
/// undecidable holder refuses with the "locked" error.
fn acquire_lock(vfs: &dyn Vfs, dir: &Path, report: &mut RecoveryReport) -> Result<()> {
    let lock_path = dir.join(LOCK_FILE);
    let locked = |dir: &Path| {
        OsdpError::Persistence(format!(
            "tenant shard '{}' is locked by another writer (or a crashed one left a stale \
             LOCK that could not be proven dead; use force_unlock once that process is \
             known dead)",
            dir.display()
        ))
    };
    for pass in 0..2u8 {
        match vfs.create_new(&lock_path) {
            Ok(mut lock) => {
                let body = format!("{}\n{}\n", std::process::id(), boot_token());
                let _ = lock.write_all(body.as_bytes());
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists && pass == 0 => {
                match lock_holder_status(vfs, &lock_path) {
                    LockHolder::Dead(note) => {
                        match vfs.remove_file(&lock_path) {
                            Ok(()) => {}
                            // Already gone: another opener cleared it first.
                            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                            Err(e) => return Err(pe(PersistOp::Lock, &lock_path, &e)),
                        }
                        report.cleared_stale_lock = true;
                        report.notes.push(note);
                        // Loop: retry the exclusive create exactly once.
                    }
                    LockHolder::Alive | LockHolder::Unknown => return Err(locked(dir)),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                // The re-acquire after clearing raced another opener.
                return Err(locked(dir));
            }
            Err(e) => return Err(pe(PersistOp::Lock, &lock_path, &e)),
        }
    }
    Err(locked(dir))
}

/// Removes a stale `LOCK` file left behind by a crashed writer, returning
/// whether one existed. Only call this once the previous writer process is
/// known to be dead — removing a *live* writer's lock re-opens the shard to
/// a second writer and voids the single-writer guarantee. Usually
/// unnecessary: [`TenantLedger::open`] auto-clears locks whose recorded
/// writer is provably gone (dead pid, or a previous boot); this is the
/// manual override for the undecidable cases.
pub fn force_unlock(dir: impl AsRef<Path>) -> Result<bool> {
    match std::fs::remove_file(dir.as_ref().join(LOCK_FILE)) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(io_err("removing LOCK", e)),
    }
}

/// What recovery had to repair or fall back to while opening a shard — all
/// empty/false after a clean open. Surfaced on [`RecoveredLedger::report`]
/// so operators can distinguish "opened clean" from "opened by quarantining
/// a corrupt snapshot and replaying the full WAL".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// The file name a corrupt `snapshot.bin` was parked under
    /// (`snapshot.corrupt-<wal-generation>`), if quarantine happened.
    pub quarantined_snapshot: Option<String>,
    /// Recovery fell back to the parked prior snapshot generation
    /// (`snapshot.prev`) and replayed the full WAL on top of it.
    pub used_prev_snapshot: bool,
    /// Recovery reconstructed base counters from the WAL's snapshot marker
    /// (totals intact, per-mechanism rows lost) — mirrors
    /// [`RecoveredLedger::degraded`].
    pub used_marker_fallback: bool,
    /// A stale `LOCK` from a provably-dead writer was auto-cleared.
    pub cleared_stale_lock: bool,
    /// Human-readable notes for each repair or fallback taken.
    pub notes: Vec<String>,
}

impl RecoveryReport {
    /// Whether recovery needed no repair or fallback at all.
    pub fn is_clean(&self) -> bool {
        self == &RecoveryReport::default()
    }
}

/// What [`TenantLedger::open`] reconstructed from disk. The `base` /
/// `grants` split is deliberate: recovery seeds counters from `base` as
/// plain integers and replays `grants` one record at a time, so the
/// reconstructed accountant and audit totals are integer sums of exactly
/// what was durably logged — bit for bit, no float round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredLedger {
    /// The snapshot state recovery started from (generation 0 and all-zero
    /// counters for a fresh shard).
    pub base: SnapshotState,
    /// The grant records replayed from the WAL tail, in log order (which
    /// under concurrent writers may differ from index order).
    pub grants: Vec<GrantRecord>,
    /// Refusal records replayed from the WAL tail.
    pub refusals: Vec<RefusalRecord>,
    /// Every policy epoch transition recovered, sorted by version and
    /// deduplicated (rotation re-emits transitions into the fresh WAL, so
    /// the same version can legitimately appear in more than one file
    /// across a crash). Unlike grants, transitions are never collapsed
    /// into the snapshot: the full version history is recovered
    /// bit-for-bit for the stale-policy verifier.
    pub transitions: Vec<EpochRecord>,
    /// Bytes discarded from a torn or corrupt WAL tail (0 after a clean
    /// shutdown).
    pub truncated_bytes: u64,
    /// True when the snapshot file was missing or unreadable and the base
    /// counters were reconstructed from the WAL's snapshot marker instead:
    /// totals are intact, but the per-mechanism aggregate rows of the
    /// pre-marker history are lost.
    pub degraded: bool,
    /// What recovery had to repair or fall back to (all-default after a
    /// clean open).
    pub report: RecoveryReport,
}

impl RecoveredLedger {
    /// Total admitted spend in fixed-point units: base + replayed grants.
    pub fn spent_units(&self) -> u64 {
        self.grants.iter().fold(self.base.counters.spent_units, |t, g| t.saturating_add(g.units))
    }

    /// The audit ε total in fixed-point units: base + replayed grants.
    pub fn audit_units(&self) -> u64 {
        self.grants.iter().fold(self.base.counters.audit_units, |t, g| t.saturating_add(g.units))
    }

    /// The next audit release index (every replayed index is below it).
    pub fn audit_seq(&self) -> u64 {
        self.grants.iter().fold(self.base.counters.audit_seq, |s, g| s.max(g.index + 1))
    }

    /// Total refusals logged (base + replayed).
    pub fn refusal_count(&self) -> u64 {
        self.base.counters.refusals + self.refusals.len() as u64
    }

    /// Total grants logged (base + replayed).
    pub fn grant_count(&self) -> u64 {
        self.base.counters.grants + self.grants.len() as u64
    }

    /// The policy epoch version in force when the shard last served (the
    /// highest recovered transition's version; 0 for a shard that never
    /// transitioned).
    pub fn current_policy_version(&self) -> u64 {
        self.transitions.last().map_or(0, |t| t.version)
    }

    /// Whether the shard had no durable history at all.
    pub fn is_fresh(&self) -> bool {
        self.base == SnapshotState::default()
            && self.grants.is_empty()
            && self.refusals.is_empty()
            && self.transitions.is_empty()
            && self.truncated_bytes == 0
    }
}

/// Tuning knobs of [`TenantLedger::open_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerOptions {
    /// Rotate a fresh snapshot automatically once this many frames have
    /// been appended since the last rotation, bounding recovery replay to
    /// at most that many tail frames for long-lived tenants. `None` (the
    /// default) never rotates automatically — rotation stays an explicit
    /// [`TenantLedger::rotate_snapshot`] call.
    pub auto_snapshot_every: Option<u64>,
    /// Bounded-backoff retry for transient WAL write faults (see
    /// [`RetryPolicy`]). Fsync failures are never retried regardless of
    /// this setting.
    pub retry: RetryPolicy,
    /// Upper bound on how long one group-commit append blocks waiting for
    /// the committer to make its frame durable (30 s by default —
    /// effectively "committer is wedged", far above any healthy fsync).
    /// On expiry the append returns a typed *transient* timeout error; the
    /// frame **may still commit later**, so callers must treat the grant as
    /// refused while leaving its ε conservatively spent — the fail-closed
    /// direction. Irrelevant to the buffered policies.
    pub commit_deadline: Duration,
}

impl Default for LedgerOptions {
    fn default() -> Self {
        Self {
            auto_snapshot_every: None,
            retry: RetryPolicy::default(),
            commit_deadline: Duration::from_secs(30),
        }
    }
}

/// The writer state behind the ledger's mutex.
#[derive(Debug)]
pub(crate) struct Inner {
    /// The WAL file + pending frames + reused encode buffers.
    pub(crate) writer: WalWriter,
    /// Appends since the last fsync (drives [`SyncPolicy::EveryN`]).
    unsynced: u32,
    /// The snapshot-consistent mirror of everything logged so far (under
    /// group commit: everything *committed* so far).
    pub(crate) mirror: MirrorState,
    /// Set by [`TenantLedger::crash`]: every later operation fails, drop
    /// flushes nothing and leaves the `LOCK` file behind.
    pub(crate) crashed: bool,
    /// Frames appended since the last snapshot rotation (drives
    /// [`LedgerOptions::auto_snapshot_every`]).
    pub(crate) frames_since_rotation: u64,
}

/// The state shared between the ledger handle and its committer thread.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) dir: PathBuf,
    /// The file-system this shard does all its IO through.
    pub(crate) vfs: Arc<dyn Vfs>,
    pub(crate) inner: Mutex<Inner>,
    /// Raised by crash or a fatal committer error; lets blocked group
    /// appenders give up without taking the inner lock.
    pub(crate) poisoned: AtomicBool,
    /// The fatal committer error, if any (None after a plain crash).
    pub(crate) group_error: Mutex<Option<PersistError>>,
    /// Group-commit observability counters (all zero otherwise).
    pub(crate) counters: GroupCounters,
    /// The open-time options (auto-snapshot threshold, retry policy,
    /// commit deadline).
    pub(crate) options: LedgerOptions,
}

/// Whether the auto-snapshot threshold is due.
pub(crate) fn auto_rotate_due(shared: &Shared, inner: &Inner) -> bool {
    shared.options.auto_snapshot_every.is_some_and(|n| inner.frames_since_rotation >= n.max(1))
}

/// A single-writer, append-only durable ledger for one tenant shard (see
/// the module docs for the file layout and crash-consistency argument).
#[derive(Debug)]
pub struct TenantLedger {
    shared: Arc<Shared>,
    sync: SyncPolicy,
    /// The group-commit committer, spawned lazily on the first append.
    committer: OnceLock<CommitterHandle>,
}

impl TenantLedger {
    /// Opens (creating if absent) the tenant shard at `dir`, acquiring its
    /// writer lock and recovering whatever state is durable. The returned
    /// [`RecoveredLedger`] seeds the in-memory accountant/audit pair; the
    /// ledger itself is positioned to append.
    pub fn open(dir: impl Into<PathBuf>, sync: SyncPolicy) -> Result<(Self, RecoveredLedger)> {
        Self::open_with(dir, sync, LedgerOptions::default())
    }

    /// [`TenantLedger::open`] with explicit [`LedgerOptions`].
    pub fn open_with(
        dir: impl Into<PathBuf>,
        sync: SyncPolicy,
        options: LedgerOptions,
    ) -> Result<(Self, RecoveredLedger)> {
        Self::open_with_vfs(dir, sync, options, Arc::new(StdVfs))
    }

    /// [`TenantLedger::open_with`] over an explicit file system — the
    /// injection point for [`crate::vfs::FaultVfs`] in fault tests.
    pub fn open_with_vfs(
        dir: impl Into<PathBuf>,
        sync: SyncPolicy,
        options: LedgerOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(Self, RecoveredLedger)> {
        let dir = dir.into();
        vfs.create_dir_all(&dir).map_err(|e| pe(PersistOp::CreateDir, &dir, &e))?;
        let mut lock_report = RecoveryReport::default();
        acquire_lock(vfs.as_ref(), &dir, &mut lock_report)?;
        // From here on, errors must release the lock we just took.
        match Self::open_locked(&dir, sync, options, vfs.clone(), lock_report) {
            Ok(ok) => Ok(ok),
            Err(e) => {
                let _ = vfs.remove_file(&dir.join(LOCK_FILE));
                Err(e)
            }
        }
    }

    fn open_locked(
        dir: &Path,
        sync: SyncPolicy,
        options: LedgerOptions,
        vfs: Arc<dyn Vfs>,
        lock_report: RecoveryReport,
    ) -> Result<(Self, RecoveredLedger)> {
        let mut recovered = read_state(vfs.as_ref(), dir, true)?;
        recovered.report.cleared_stale_lock = lock_report.cleared_stale_lock;
        recovered.report.notes.splice(0..0, lock_report.notes);
        let wal_path = dir.join(WAL_FILE);
        let mut file = vfs.open_rw(&wal_path).map_err(|e| pe(PersistOp::Open, &wal_path, &e))?;
        let len = file.seek(SeekFrom::End(0)).map_err(|e| pe(PersistOp::Open, &wal_path, &e))?;
        let mut writer = WalWriter::new(file, wal_path, len, options.retry);
        let expected = wal_len_after_recovery(&recovered, len);
        if expected != len {
            // Torn tail or stale/partial header: rewrite the file to the
            // recovered prefix so the next crash has a clean base.
            writer.rewrite(&wal_image(&recovered)).map_err(OsdpError::from)?;
        }
        let mut mirror = MirrorState::from_snapshot(&recovered.base);
        for grant in &recovered.grants {
            mirror.apply_grant(grant);
        }
        for _ in &recovered.refusals {
            mirror.apply_refusal();
        }
        for transition in &recovered.transitions {
            mirror.apply_transition(transition);
        }
        // The replayed tail counts against the auto-snapshot threshold, so
        // "recovery replays ≤ N frames" holds across reopen chains too.
        let frames_since_rotation = (recovered.grants.len() + recovered.refusals.len()) as u64;
        let ledger = Self {
            shared: Arc::new(Shared {
                dir: dir.to_path_buf(),
                vfs,
                inner: Mutex::new(Inner {
                    writer,
                    unsynced: 0,
                    mirror,
                    crashed: false,
                    frames_since_rotation,
                }),
                poisoned: AtomicBool::new(false),
                group_error: Mutex::new(None),
                counters: GroupCounters::default(),
                options,
            }),
            sync,
            committer: OnceLock::new(),
        };
        Ok((ledger, recovered))
    }

    /// Reads a shard's durable state **without** taking the writer lock,
    /// truncating, rewriting, or quarantining anything. For audits and
    /// tests that need an independent view of what is on disk; racing a
    /// live writer sees some durable prefix.
    pub fn peek(dir: impl AsRef<Path>) -> Result<RecoveredLedger> {
        read_state(&StdVfs, dir.as_ref(), false)
    }

    /// [`TenantLedger::peek`] over an explicit file system.
    pub fn peek_with_vfs(dir: impl AsRef<Path>, vfs: &dyn Vfs) -> Result<RecoveredLedger> {
        read_state(vfs, dir.as_ref(), false)
    }

    /// Verifies this shard's cold data (WAL frame CRCs, snapshot codecs)
    /// through the ledger's own VFS, **without decoding records, taking a
    /// lock, or writing a byte** — see [`crate::scrub::scrub_shard`]. Safe
    /// while the ledger is serving: a racing append shows up as (at most) a
    /// benign torn-tail warning.
    pub fn scrub(&self) -> Result<crate::scrub::ScrubReport> {
        crate::scrub::scrub_shard(self.shared.vfs.as_ref(), &self.shared.dir)
            .map_err(OsdpError::Persist)
    }

    /// The shard directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// The configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// The counters a snapshot taken now would contain — the mirror of
    /// everything logged so far (logged state, not live session state).
    pub fn counters(&self) -> SnapshotCounters {
        self.shared.inner.lock().expect("ledger lock").mirror.counters
    }

    /// Group-commit observability: submitted frames, the durable-frame
    /// watermark, batches committed, largest batch. All zero for the other
    /// sync policies.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.shared.counters.snapshot()
    }

    /// Appends one grant record, durable per the sync policy before return.
    pub fn append_grant(&self, grant: &GrantRecord) -> Result<()> {
        self.append(RecordRef::Grant(grant))
    }

    /// Appends one refusal record, durable per the sync policy.
    pub fn append_refusal(&self, refusal: &RefusalRecord) -> Result<()> {
        self.append(RecordRef::Refusal(refusal))
    }

    /// Appends one policy epoch transition, durable per the sync policy.
    pub fn append_epoch_transition(&self, transition: &EpochRecord) -> Result<()> {
        self.append(RecordRef::Epoch(transition))
    }

    fn append(&self, record: RecordRef<'_>) -> Result<()> {
        if let SyncPolicy::GroupCommit { max_batch, max_wait } = self.sync {
            return self.append_group(record, max_batch, max_wait);
        }
        let mut inner = self.shared.inner.lock().expect("ledger lock");
        if inner.crashed {
            return Err(crashed_err());
        }
        match record {
            RecordRef::Grant(g) => inner.mirror.apply_grant(g),
            RecordRef::Refusal(_) => inner.mirror.apply_refusal(),
            RecordRef::Epoch(t) => inner.mirror.apply_transition(t),
            RecordRef::Marker { .. } => unreachable!("markers are written by rotation"),
        }
        inner.writer.buffer_record(record);
        inner.unsynced += 1;
        inner.frames_since_rotation += 1;
        let flush = match self.sync {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => inner.unsynced >= n.max(1),
            SyncPolicy::OnDrop => false,
            SyncPolicy::GroupCommit { .. } => unreachable!("handled above"),
        };
        if flush {
            flush_inner(&mut inner)?;
        }
        if auto_rotate_due(&self.shared, &inner) {
            rotate_locked(&self.shared, &mut inner)?;
        }
        Ok(())
    }

    /// The group-commit append path: encode lock-free, submit, block until
    /// the committer's batched fsync covers this frame.
    fn append_group(
        &self,
        record: RecordRef<'_>,
        max_batch: u32,
        max_wait: std::time::Duration,
    ) -> Result<()> {
        if self.shared.poisoned.load(Ordering::Acquire) {
            return Err(self.group_failure());
        }
        let handle = self.committer.get_or_init(|| {
            let (tx, rx) = std::sync::mpsc::channel();
            let join = spawn(Arc::clone(&self.shared), rx, max_batch as usize, max_wait);
            CommitterHandle { tx, join: Mutex::new(Some(join)) }
        });
        // Encode the frame outside any lock. The frame buffer must be owned
        // (it crosses threads); the payload scratch is thread-local and
        // reused across appends.
        std::thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        let mut bytes = Vec::with_capacity(192);
        SCRATCH.with(|s| encode_frame_into(&mut bytes, &mut s.borrow_mut(), record));
        // A fresh waiter per submission: a reused waiter could be settled by
        // a stale in-flight submission after this appender's deadline fires.
        let waiter = Arc::new(Waiter::new());
        let submission = Submission::Frame(FrameSubmission::new(
            bytes,
            record.to_owned_record(),
            Arc::clone(&waiter),
            Arc::clone(&self.shared),
        ));
        if handle.tx.send(submission).is_err() {
            // The committer exited (crash or fatal IO error) — refuse.
            // (The undelivered submission's drop guard settles the waiter,
            // but we already know the failure here.)
            return Err(self.group_failure());
        }
        self.shared.counters.count_submission();
        waiter.wait(self.shared.options.commit_deadline).map_err(OsdpError::from)
    }

    /// The error group appends report once the ledger is poisoned.
    fn group_failure(&self) -> OsdpError {
        match self.shared.group_error.lock().expect("group error lock").clone() {
            Some(err) => OsdpError::Persist(err),
            None => crashed_err(),
        }
    }

    /// Flushes and fsyncs every buffered frame, regardless of policy. Under
    /// group commit this is a no-op barrier: every append that has returned
    /// is already durable (that is the policy's contract), and in-flight
    /// appends on other threads have made no promise to this caller yet.
    pub fn sync(&self) -> Result<()> {
        if matches!(self.sync, SyncPolicy::GroupCommit { .. }) {
            if self.shared.poisoned.load(Ordering::Acquire) {
                return Err(self.group_failure());
            }
            let crashed = self.shared.inner.lock().expect("ledger lock").crashed;
            return if crashed { Err(crashed_err()) } else { Ok(()) };
        }
        let mut inner = self.shared.inner.lock().expect("ledger lock");
        if inner.crashed {
            return Err(crashed_err());
        }
        flush_inner(&mut inner)
    }

    /// Rotates the shard: collapses the logged history into a new snapshot
    /// generation and resets the WAL to `header + marker`. See the module
    /// docs for why each crash point in this sequence recovers cleanly.
    /// Under group commit the inner lock serializes this against batch
    /// commits; frames still queued commit *after* the rotation, into the
    /// new generation, which recovery replays as the tail.
    pub fn rotate_snapshot(&self) -> Result<()> {
        let mut inner = self.shared.inner.lock().expect("ledger lock");
        if inner.crashed {
            return Err(crashed_err());
        }
        rotate_locked(&self.shared, &mut inner)
    }

    /// **Crash simulation**: drops the writer as an abrupt process death
    /// would. Buffered frames are lost; a `keep_fraction` in `(0, 1]`
    /// additionally writes that fraction of the buffered *bytes* first —
    /// a torn frame mid-write, exercising the CRC truncation path. Under
    /// group commit the crash severs **mid-batch**: the committer is
    /// stopped, every frame still queued (its appender blocked, its grant
    /// not yet acknowledged) joins the pending buffer, and `keep_fraction`
    /// applies to those bytes — frames whose append already *returned* were
    /// fsync'd and survive in full, which is exactly the `Always`-grade
    /// guarantee. The `LOCK` file is deliberately left behind (a dead
    /// process releases nothing), so reopening requires [`force_unlock`],
    /// same as after a real `kill -9`. Every later operation on this ledger
    /// fails.
    ///
    /// What this does **not** simulate: loss of OS-buffered writes that
    /// were never fsync'd (the file system keeps what `write(2)` accepted,
    /// a powered-off machine may not), and torn *sector* writes inside
    /// fsync'd data. Those need a real `kill -9` / power-cut harness.
    pub fn crash(&self, keep_fraction: f64) -> Result<()> {
        {
            let mut inner = self.shared.inner.lock().expect("ledger lock");
            if inner.crashed {
                return Ok(());
            }
            inner.crashed = true;
        }
        self.shared.poisoned.store(true, Ordering::Release);
        // Stop the committer (if group commit ever spawned one): it stashes
        // every queued frame into the pending buffer and fails the blocked
        // appenders, then exits; joining makes the stash visible below.
        if let Some(handle) = self.committer.get() {
            let _ = handle.tx.send(Submission::Nudge);
            if let Some(join) = handle.join.lock().expect("committer join lock").take() {
                let _ = join.join();
            }
        }
        let mut inner = self.shared.inner.lock().expect("ledger lock");
        let keep = (inner.writer.pending().len() as f64 * keep_fraction.clamp(0.0, 1.0)) as usize;
        if keep > 0 {
            let torn: Vec<u8> = inner.writer.pending()[..keep].to_vec();
            inner.writer.file_mut().write_all(&torn).map_err(|e| io_err("writing torn tail", e))?;
        }
        inner.writer.pending_mut().clear();
        Ok(())
    }

    /// Whether [`TenantLedger::crash`] has been called.
    pub fn is_crashed(&self) -> bool {
        self.shared.inner.lock().expect("ledger lock").crashed
    }
}

impl Drop for TenantLedger {
    fn drop(&mut self) {
        // Retire the committer first: dropping the sender disconnects the
        // channel, the committer drains and commits what little could
        // remain, and the join makes that ordering visible. (After a crash
        // the committer has already exited and the join slot is empty.)
        if let Some(handle) = self.committer.take() {
            let CommitterHandle { tx, join } = handle;
            drop(tx);
            if let Ok(Some(join)) = join.into_inner() {
                let _ = join.join();
            }
        }
        let Ok(mut inner) = self.shared.inner.lock() else {
            return;
        };
        if inner.crashed {
            // A crashed writer releases nothing: pending bytes are gone and
            // the LOCK file stays, exactly like a killed process.
            return;
        }
        let _ = flush_inner(&mut inner);
        let _ = self.shared.vfs.remove_file(&self.shared.dir.join(LOCK_FILE));
    }
}

/// Writes + fsyncs the pending buffer.
fn flush_inner(inner: &mut Inner) -> Result<()> {
    inner.writer.flush_and_sync().map_err(OsdpError::from)?;
    inner.unsynced = 0;
    Ok(())
}

/// The rotation body, shared by [`TenantLedger::rotate_snapshot`], the
/// auto-snapshot threshold on the buffered append path, and the committer's
/// post-batch auto-snapshot check (which already holds the inner lock).
pub(crate) fn rotate_locked(shared: &Shared, inner: &mut Inner) -> Result<()> {
    flush_inner(inner)?;
    let generation = inner.mirror.generation + 1;
    let snapshot = inner.mirror.to_snapshot(generation);
    let vfs = shared.vfs.as_ref();
    // Temp + rename: a torn snapshot write never shadows the good one.
    let tmp = shared.dir.join("snapshot.tmp");
    {
        let mut f = vfs.create_truncate(&tmp).map_err(|e| pe(PersistOp::Open, &tmp, &e))?;
        f.write_all(&snapshot.encode()).map_err(|e| pe(PersistOp::Write, &tmp, &e))?;
        f.sync_data().map_err(|e| pe(PersistOp::Fsync, &tmp, &e))?;
    }
    let snap = shared.dir.join(SNAPSHOT_FILE);
    // Park the outgoing generation as snapshot.prev: it covers the crash
    // window where snapshot.bin is briefly absent, and gives recovery a
    // fallback should the new snapshot later prove corrupt.
    match vfs.rename(&snap, &shared.dir.join(SNAPSHOT_PREV_FILE)) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {} // first rotation
        Err(e) => return Err(pe(PersistOp::Rename, &snap, &e)),
    }
    vfs.rename(&tmp, &snap).map_err(|e| pe(PersistOp::Rename, &tmp, &e))?;
    let _ = vfs.sync_dir(&shared.dir);
    inner.mirror.generation = generation;
    // Reset the WAL behind the new snapshot. A crash before this block
    // leaves WAL generation < snapshot generation: recovery ignores the
    // (now collapsed) records instead of double-counting them.
    let base = RecoveredLedger {
        base: snapshot,
        grants: Vec::new(),
        refusals: Vec::new(),
        // Grants collapse into the snapshot; transitions do not — the
        // fresh WAL re-carries the full version history.
        transitions: inner.mirror.transitions.clone(),
        truncated_bytes: 0,
        degraded: false,
        report: RecoveryReport::default(),
    };
    inner.writer.rewrite(&wal_image(&base)).map_err(OsdpError::from)?;
    inner.unsynced = 0;
    inner.frames_since_rotation = 0;
    Ok(())
}

/// The byte length `wal.log` should have after recovering `recovered` from
/// a file currently `len` bytes long (used to decide whether a rewrite is
/// needed).
fn wal_len_after_recovery(recovered: &RecoveredLedger, len: u64) -> u64 {
    if recovered.truncated_bytes > 0 || len < WAL_HEADER as u64 {
        // Rewrite to the valid prefix.
        u64::MAX
    } else {
        len
    }
}

/// Builds the byte image a rewritten `wal.log` should hold: header at the
/// base generation, a marker when there is a snapshot to mark, then the
/// recovered tail frames.
fn wal_image(recovered: &RecoveredLedger) -> Vec<u8> {
    let mut image = Vec::with_capacity(WAL_HEADER + 256);
    image.extend_from_slice(WAL_MAGIC);
    image.extend_from_slice(&recovered.base.generation.to_le_bytes());
    if recovered.base.generation > 0 {
        image.extend_from_slice(&marker_frame(recovered.base.generation, recovered.base.counters));
    }
    // Interleaving of the tail is unknown after a crash; grants-then-
    // refusals preserves every total (replay is order-independent), and
    // transitions carry their own ordering (`version`, `boundary_seq`), so
    // writing them first changes nothing either.
    let mut scratch = Vec::with_capacity(128);
    for transition in &recovered.transitions {
        encode_frame_into(&mut image, &mut scratch, RecordRef::Epoch(transition));
    }
    for grant in &recovered.grants {
        encode_frame_into(&mut image, &mut scratch, RecordRef::Grant(grant));
    }
    for refusal in &recovered.refusals {
        encode_frame_into(&mut image, &mut scratch, RecordRef::Refusal(refusal));
    }
    image
}

/// Loads the snapshot base: `snapshot.bin`, falling back to the parked
/// `snapshot.prev` when the primary is corrupt — and, in `repair` mode,
/// parking the corrupt primary as `snapshot.corrupt-<wal-generation>` so it
/// never shadows recovery again yet stays available for forensics.
fn load_snapshot(
    vfs: &dyn Vfs,
    dir: &Path,
    repair: bool,
    wal_gen_hint: u64,
    report: &mut RecoveryReport,
) -> Result<Option<SnapshotState>> {
    let snap_path = dir.join(SNAPSHOT_FILE);
    match vfs.read(&snap_path) {
        Ok(bytes) => match SnapshotState::decode(&bytes) {
            Ok(state) => return Ok(Some(state)),
            Err(decode_err) => {
                report.notes.push(format!("snapshot.bin failed to decode: {decode_err}"));
                if repair {
                    let name = format!("snapshot.corrupt-{wal_gen_hint}");
                    match vfs.rename(&snap_path, &dir.join(&name)) {
                        Ok(()) => report.quarantined_snapshot = Some(name),
                        Err(e) => {
                            report.notes.push(format!("quarantining snapshot.bin failed: {e}"));
                        }
                    }
                }
                // Fall through to snapshot.prev.
            }
        },
        // Absent primary (fresh shard, or the crash window between the
        // prev-rename and the bin-rename): snapshot.prev may still match.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(pe(PersistOp::Read, &snap_path, &e)),
    }
    // The parked prior generation is only trustworthy when it is exactly
    // the generation the WAL header continues — otherwise replaying the
    // WAL on top of it would double-count collapsed history.
    let prev_path = dir.join(SNAPSHOT_PREV_FILE);
    match vfs.read(&prev_path) {
        Ok(bytes) => match SnapshotState::decode(&bytes) {
            Ok(state) if state.generation == wal_gen_hint => {
                report.used_prev_snapshot = true;
                report.notes.push(format!(
                    "recovered from snapshot.prev (generation {})",
                    state.generation
                ));
                Ok(Some(state))
            }
            Ok(state) => {
                report.notes.push(format!(
                    "snapshot.prev is at generation {} but the WAL continues generation \
                     {wal_gen_hint}; ignoring it",
                    state.generation
                ));
                Ok(None)
            }
            Err(e) => {
                report.notes.push(format!("snapshot.prev also failed to decode: {e}"));
                Ok(None)
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(pe(PersistOp::Read, &prev_path, &e)),
    }
}

/// Reads and reconciles `snapshot.bin` + `wal.log` (shared by `open` and
/// `peek`). In `repair` mode a corrupt snapshot is quarantined on disk;
/// otherwise nothing is ever written.
fn read_state(vfs: &dyn Vfs, dir: &Path, repair: bool) -> Result<RecoveredLedger> {
    let mut report = RecoveryReport::default();
    let wal_path = dir.join(WAL_FILE);
    let wal = match vfs.read(&wal_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(pe(PersistOp::Read, &wal_path, &e)),
    };
    // The WAL generation (best effort — 0 on a short or foreign header),
    // used only to name a quarantined snapshot.
    let wal_gen_hint = if wal.len() >= WAL_HEADER && &wal[..WAL_MAGIC.len()] == WAL_MAGIC {
        u64::from_le_bytes(wal[WAL_MAGIC.len()..WAL_HEADER].try_into().expect("len checked"))
    } else {
        0
    };
    let snapshot = load_snapshot(vfs, dir, repair, wal_gen_hint, &mut report)?;
    let base_or_default = snapshot.unwrap_or_default();
    if wal.len() < WAL_HEADER {
        // Empty or mid-rewrite header: no tail survived; the snapshot (if
        // any) is the whole durable state.
        return Ok(RecoveredLedger {
            base: base_or_default,
            grants: Vec::new(),
            refusals: Vec::new(),
            transitions: Vec::new(),
            truncated_bytes: wal.len() as u64,
            degraded: false,
            report,
        });
    }
    if &wal[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(OsdpError::Persistence("wal.log has a bad magic header".into()));
    }
    let wal_generation = wal_gen_hint;
    let snapshot_generation = base_or_default.generation;
    if wal_generation < snapshot_generation {
        // Rotation crashed between the snapshot rename and the WAL rewrite:
        // every grant/refusal in the WAL is already collapsed into the
        // snapshot. Transitions are *not* collapsed, so they alone are
        // harvested from the stale file — they carry their own ordering
        // and version identity, so re-reading them can never double-count.
        let transitions = sorted_transitions(
            replay(&wal[WAL_HEADER..]).records.into_iter().filter_map(|record| match record {
                WalRecord::EpochTransition(t) => Some(t),
                _ => None,
            }),
        );
        return Ok(RecoveredLedger {
            base: base_or_default,
            grants: Vec::new(),
            refusals: Vec::new(),
            transitions,
            truncated_bytes: (wal.len() - WAL_HEADER) as u64,
            degraded: false,
            report,
        });
    }
    // Verify-only preflight (no payload decode): distinguishes *mid-file
    // corruption* — bytes that were durable and then rotted, which replay
    // will silently truncate at — from the benign torn tail of an
    // interrupted append, so the report says which one recovery is about to
    // act on.
    let preflight = crate::wal::WalReader::verify_frames(&wal[WAL_HEADER..]);
    if let Some(corruption) = preflight.corruption {
        report.notes.push(format!(
            "wal.log holds a corrupt frame at byte {} ({}); the {} frames before it are the \
             recoverable prefix",
            corruption.offset + WAL_HEADER as u64,
            corruption.defect,
            preflight.frames
        ));
    }
    let outcome = replay(&wal[WAL_HEADER..]);
    let mut records = outcome.records.into_iter();
    let (base, degraded) = if wal_generation == snapshot_generation {
        (base_or_default, false)
    } else {
        // WAL is ahead of the snapshot: a lost/deleted/quarantined primary
        // with no matching prev. Fall back to the marker's counter block —
        // totals survive, aggregate rows do not.
        match records.next() {
            Some(WalRecord::SnapshotMarker { generation, counters })
                if generation == wal_generation =>
            {
                report.used_marker_fallback = true;
                report.notes.push(format!(
                    "base counters reconstructed from the WAL marker at generation \
                     {wal_generation} (per-mechanism rows lost)"
                ));
                let base = SnapshotState { generation: wal_generation, counters, rows: Vec::new() };
                (base, true)
            }
            _ => {
                return Err(OsdpError::Persistence(format!(
                    "wal.log continues snapshot generation {wal_generation} but snapshot.bin \
                     is at generation {snapshot_generation} and the WAL carries no marker to \
                     recover from"
                )));
            }
        }
    };
    let mut grants = Vec::new();
    let mut refusals = Vec::new();
    let mut transitions = Vec::new();
    for record in records {
        match record {
            WalRecord::Grant(g) => grants.push(g),
            WalRecord::Refusal(r) => refusals.push(r),
            WalRecord::EpochTransition(t) => transitions.push(t),
            WalRecord::SnapshotMarker { generation, counters } => {
                // The rotation marker: must agree with the base it follows.
                if generation != base.generation || counters != base.counters {
                    return Err(OsdpError::Persistence(
                        "wal.log snapshot marker disagrees with the recovered base state".into(),
                    ));
                }
            }
        }
    }
    Ok(RecoveredLedger {
        base,
        grants,
        refusals,
        transitions: sorted_transitions(transitions),
        truncated_bytes: (wal.len() - WAL_HEADER - outcome.valid_len) as u64,
        degraded,
        report,
    })
}

/// Normalizes recovered transitions: sorted by version, duplicates (a
/// rotation re-emit racing a crash) collapsed to the first occurrence.
fn sorted_transitions(transitions: impl IntoIterator<Item = EpochRecord>) -> Vec<EpochRecord> {
    let mut out: Vec<EpochRecord> = Vec::new();
    for t in transitions {
        if out.iter().any(|seen| seen.version == t.version) {
            continue;
        }
        let at = out.partition_point(|seen| seen.version < t.version);
        out.insert(at, t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::GuaranteeTag;
    use crate::wal::append_record;
    use std::time::Duration;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("osdp-persist-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grant(index: u64, units: u64) -> GrantRecord {
        GrantRecord {
            index,
            units,
            epsilon: units as f64 * 1e-12,
            trials: 1,
            bins: 8,
            guarantee: GuaranteeTag::Osdp,
            mechanism: "OsdpLaplaceL1".into(),
            policy: "P".into(),
            query: "q".into(),
            policy_version: 0,
        }
    }

    #[test]
    fn clean_shutdown_recovers_everything() {
        let dir = tmp_dir("clean");
        {
            let (ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
            assert!(recovered.is_fresh());
            for i in 0..5 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger
                .append_refusal(&RefusalRecord {
                    units: 100,
                    epsilon: 1e-10,
                    mechanism: "M".into(),
                })
                .unwrap();
        }
        let (ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        assert_eq!(recovered.grants.len(), 5);
        assert_eq!(recovered.spent_units(), 500);
        assert_eq!(recovered.audit_seq(), 5);
        assert_eq!(recovered.refusal_count(), 1);
        assert_eq!(recovered.truncated_bytes, 0);
        assert!(!recovered.degraded);
        drop(ledger);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_transitions_survive_reopen_and_rotation() {
        let dir = tmp_dir("epochs");
        let t1 = EpochRecord { version: 1, boundary_seq: 2, relaxes: false, label: "P-v1".into() };
        let t2 = EpochRecord { version: 2, boundary_seq: 4, relaxes: true, label: "P-v2".into() };
        {
            let (ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
            assert!(recovered.is_fresh());
            assert_eq!(recovered.current_policy_version(), 0);
            for i in 0..2 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger.append_epoch_transition(&t1).unwrap();
            for i in 2..4 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger.append_epoch_transition(&t2).unwrap();
        }
        // Reopen: the full version history comes back in version order.
        {
            let (ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
            assert_eq!(recovered.transitions, vec![t1.clone(), t2.clone()]);
            assert_eq!(recovered.current_policy_version(), 2);
            assert!(!recovered.is_fresh());
            // Rotation collapses grants into the snapshot but must re-emit
            // the transitions into the fresh WAL.
            ledger.rotate_snapshot().unwrap();
        }
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
        assert!(recovered.grants.is_empty(), "grants collapsed by rotation");
        assert_eq!(recovered.spent_units(), 400);
        assert_eq!(recovered.transitions, vec![t1, t2], "transitions survive rotation verbatim");
        assert_eq!(recovered.current_policy_version(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_loses_only_unflushed_tail() {
        let dir = tmp_dir("crash");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::EveryN(2)).unwrap();
            for i in 0..5 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            // 4 flushed (EveryN(2)), the 5th pending; crash drops it.
            ledger.crash(0.0).unwrap();
            assert!(ledger.is_crashed());
            assert!(ledger.append_grant(&grant(9, 1)).is_err());
            assert!(ledger.sync().is_err());
            assert!(ledger.rotate_snapshot().is_err());
        }
        // The crashed writer left its LOCK behind.
        assert!(TenantLedger::open(&dir, SyncPolicy::Always).is_err());
        assert!(force_unlock(&dir).unwrap());
        assert!(!force_unlock(&dir).unwrap());
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(recovered.grants.len(), 4, "the unflushed grant is gone");
        assert_eq!(recovered.spent_units(), 400);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let dir = tmp_dir("torn");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
            for i in 0..4 {
                ledger.append_grant(&grant(i, 250)).unwrap();
            }
            // Write ~60% of the pending bytes: two-and-a-bit frames.
            ledger.crash(0.6).unwrap();
        }
        force_unlock(&dir).unwrap();
        let peek = TenantLedger::peek(&dir).unwrap();
        assert!(peek.truncated_bytes > 0, "the torn frame is detected");
        assert!(peek.grants.len() < 4);
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        assert_eq!(recovered.grants.len(), peek.grants.len());
        assert_eq!(recovered.spent_units(), 250 * peek.grants.len() as u64);
        // Open rewrote the file: a second recovery sees a clean log.
        force_unlock(&dir).unwrap();
        let again = TenantLedger::peek(&dir).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(again.spent_units(), recovered.spent_units());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_collapses_history_and_survives() {
        let dir = tmp_dir("rotate");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
            for i in 0..6 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger.rotate_snapshot().unwrap();
            for i in 6..8 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
        }
        let (ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        assert_eq!(recovered.base.generation, 1);
        assert_eq!(recovered.base.counters.spent_units, 600);
        assert_eq!(recovered.grants.len(), 2, "only the tail is replayed");
        assert_eq!(recovered.spent_units(), 800);
        assert_eq!(recovered.audit_seq(), 8);
        assert_eq!(recovered.base.rows.len(), 1);
        assert_eq!(recovered.base.rows[0].releases, 6);
        assert!(!recovered.degraded);
        assert_eq!(ledger.counters().spent_units, 800);
        drop(ledger);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_interrupted_rotation_is_not_double_counted() {
        let dir = tmp_dir("stale");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
            for i in 0..3 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger.rotate_snapshot().unwrap();
        }
        // Simulate the crash window between snapshot rename and WAL rewrite:
        // regress the WAL to generation 0 with the old records.
        let mut image = Vec::new();
        image.extend_from_slice(WAL_MAGIC);
        image.extend_from_slice(&0u64.to_le_bytes());
        for i in 0..3 {
            append_record(&mut image, &WalRecord::Grant(grant(i, 100)));
        }
        std::fs::write(dir.join(WAL_FILE), &image).unwrap();
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(recovered.base.generation, 1);
        assert_eq!(recovered.spent_units(), 300, "stale records are not re-added");
        assert!(recovered.grants.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lost_snapshot_falls_back_to_the_marker() {
        let dir = tmp_dir("marker");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
            for i in 0..3 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger.rotate_snapshot().unwrap();
            ledger.append_grant(&grant(3, 50)).unwrap();
        }
        std::fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
        assert!(recovered.degraded, "rows lost, totals kept");
        assert_eq!(recovered.spent_units(), 350);
        assert_eq!(recovered.audit_seq(), 4);
        assert!(recovered.base.rows.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_writer_is_refused_while_locked() {
        let dir = tmp_dir("lock");
        let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        let err = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap_err();
        assert!(err.to_string().contains("locked"));
        drop(ledger);
        // A clean drop releases the lock.
        let (_again, _) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_appends_are_durable_on_return() {
        let dir = tmp_dir("group-basic");
        {
            let (ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::group_commit()).unwrap();
            assert!(recovered.is_fresh());
            for i in 0..6 {
                ledger.append_grant(&grant(i, 100)).unwrap();
                // Every returned append is at or below the watermark — and
                // visible to an independent peek immediately.
                let stats = ledger.group_commit_stats();
                assert_eq!(stats.durable_frames, i + 1);
                assert_eq!(stats.submitted_frames, i + 1);
            }
            let peek = TenantLedger::peek(&dir).unwrap();
            assert_eq!(peek.spent_units(), 600, "durable before the append returns");
            assert!(ledger.group_commit_stats().batches >= 1);
            ledger.sync().unwrap();
            ledger.rotate_snapshot().unwrap();
            ledger.append_grant(&grant(6, 50)).unwrap();
            assert_eq!(ledger.counters().spent_units, 650);
        }
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::group_commit()).unwrap();
        assert_eq!(recovered.base.generation, 1);
        assert_eq!(recovered.spent_units(), 650);
        assert_eq!(recovered.grants.len(), 1, "rotation collapsed the first six");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_crash_severs_mid_batch() {
        let dir = tmp_dir("group-crash");
        {
            let (ledger, _) = TenantLedger::open(
                &dir,
                SyncPolicy::GroupCommit { max_batch: 8, max_wait: Duration::from_millis(1) },
            )
            .unwrap();
            for i in 0..4 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            // Crash with nothing in flight: every returned append survives
            // in full — the Always-grade guarantee.
            ledger.crash(0.5).unwrap();
            assert!(ledger.append_grant(&grant(9, 1)).is_err());
        }
        force_unlock(&dir).unwrap();
        let peek = TenantLedger::peek(&dir).unwrap();
        assert_eq!(peek.spent_units(), 400, "returned group appends are never lost");
        assert_eq!(peek.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_snapshot_threshold_bounds_replay() {
        let dir = tmp_dir("auto-rotate");
        let options = LedgerOptions { auto_snapshot_every: Some(8), ..LedgerOptions::default() };
        {
            let (ledger, _) = TenantLedger::open_with(&dir, SyncPolicy::OnDrop, options).unwrap();
            for i in 0..20 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
        }
        let (ledger, recovered) =
            TenantLedger::open_with(&dir, SyncPolicy::OnDrop, options).unwrap();
        // 20 appends with rotations at 8 and 16: the tail replays ≤ 8.
        assert_eq!(recovered.base.generation, 2);
        assert_eq!(recovered.grants.len(), 4);
        assert!(recovered.grants.len() as u64 <= 8);
        assert_eq!(recovered.spent_units(), 2_000, "rotation loses nothing");
        assert_eq!(recovered.audit_seq(), 20);
        // The replayed tail counts toward the next threshold: 4 more
        // appends trip rotation again (4 replayed + 4 fresh = 8).
        for i in 20..24 {
            ledger.append_grant(&grant(i, 100)).unwrap();
        }
        drop(ledger);
        let peek = TenantLedger::peek(&dir).unwrap();
        assert_eq!(peek.base.generation, 3);
        assert!(peek.grants.len() as u64 <= 8);
        assert_eq!(peek.spent_units(), 2_400);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_from_dead_pid_is_auto_cleared() {
        let dir = tmp_dir("stale-lock-pid");
        std::fs::create_dir_all(&dir).unwrap();
        // A pid above the kernel's default pid_max cannot be running.
        std::fs::write(dir.join(LOCK_FILE), format!("999999999\n{}\n", boot_token())).unwrap();
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        assert!(recovered.report.cleared_stale_lock);
        assert!(recovered.report.notes.iter().any(|n| n.contains("dead pid")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_from_previous_boot_is_auto_cleared() {
        let dir = tmp_dir("stale-lock-boot");
        std::fs::create_dir_all(&dir).unwrap();
        // Our own (live) pid, but a boot token that is not this boot's:
        // the writer died with that boot no matter what its pid says now.
        std::fs::write(
            dir.join(LOCK_FILE),
            format!("{}\nnot-this-boot-token\n", std::process::id()),
        )
        .unwrap();
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        assert!(recovered.report.cleared_stale_lock);
        assert!(recovered.report.notes.iter().any(|n| n.contains("previous boot")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undecidable_lock_is_refused_conservatively() {
        let dir = tmp_dir("stale-lock-garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LOCK_FILE), "not a pid\n").unwrap();
        let err = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap_err();
        assert!(err.to_string().contains("locked"));
        assert!(force_unlock(&dir).unwrap());
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::OnDrop).unwrap();
        assert!(!recovered.report.cleared_stale_lock);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_with_prev_fallback() {
        let dir = tmp_dir("snap-quarantine-prev");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
            for i in 0..3 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger.rotate_snapshot().unwrap();
            for i in 3..5 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
        }
        // Same-generation prev (as the mid-rotation crash window leaves),
        // then rot the primary.
        std::fs::copy(dir.join(SNAPSHOT_FILE), dir.join(SNAPSHOT_PREV_FILE)).unwrap();
        let mut bytes = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(dir.join(SNAPSHOT_FILE), &bytes).unwrap();
        // peek never repairs: the corrupt file must still be in place after.
        let peeked = TenantLedger::peek(&dir).unwrap();
        assert!(peeked.report.used_prev_snapshot);
        assert!(peeked.report.quarantined_snapshot.is_none());
        assert!(dir.join(SNAPSHOT_FILE).exists());
        // open quarantines and falls back to the parked generation: full
        // rows survive, nothing is degraded.
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(recovered.spent_units(), 500);
        assert_eq!(recovered.base.rows.len(), 1);
        assert!(!recovered.degraded);
        assert!(recovered.report.used_prev_snapshot);
        assert_eq!(recovered.report.quarantined_snapshot.as_deref(), Some("snapshot.corrupt-1"));
        assert!(dir.join("snapshot.corrupt-1").exists());
        assert!(!dir.join(SNAPSHOT_FILE).exists(), "the corrupt primary was parked");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_without_prev_falls_back_to_marker() {
        let dir = tmp_dir("snap-quarantine-marker");
        {
            let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
            for i in 0..4 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
            ledger.rotate_snapshot().unwrap();
            ledger.append_grant(&grant(4, 50)).unwrap();
        }
        let mut bytes = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(dir.join(SNAPSHOT_FILE), &bytes).unwrap();
        let (_ledger, recovered) = TenantLedger::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(recovered.spent_units(), 450, "totals survive via the marker");
        assert!(recovered.degraded, "rows are lost without a usable snapshot");
        assert!(recovered.report.used_marker_fallback);
        assert!(recovered.report.quarantined_snapshot.is_some());
        assert!(!recovered.report.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_snapshot_works_under_group_commit() {
        let dir = tmp_dir("auto-group");
        let options = LedgerOptions { auto_snapshot_every: Some(4), ..LedgerOptions::default() };
        {
            let (ledger, _) =
                TenantLedger::open_with(&dir, SyncPolicy::group_commit(), options).unwrap();
            for i in 0..10 {
                ledger.append_grant(&grant(i, 100)).unwrap();
            }
        }
        let peek = TenantLedger::peek(&dir).unwrap();
        assert!(peek.base.generation >= 2, "the committer rotated at the threshold");
        assert!(peek.grants.len() as u64 <= 4);
        assert_eq!(peek.spent_units(), 1_000);
        assert_eq!(peek.audit_seq(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
