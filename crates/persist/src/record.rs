//! The write-ahead ledger record codec.
//!
//! Records are hand-serialized — tag byte, little-endian integers, `f64`
//! bit patterns, `u16`-length-prefixed UTF-8 strings — because the vendored
//! serde shim is marker-only and the format must be stable across builds
//! anyway. Every integer that matters for accounting is stored as the
//! **fixed-point unit count the grant path admitted**, so recovery is pure
//! integer addition: no float round-trip can perturb the recovered totals.

use osdp_core::error::{OsdpError, Result};

/// Record tag bytes (the first payload byte of every frame).
const TAG_GRANT: u8 = 1;
const TAG_REFUSAL: u8 = 2;
const TAG_MARKER: u8 = 3;
const TAG_EPOCH: u8 = 4;

/// The guarantee kind of a logged release, as a one-byte tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GuaranteeTag {
    /// Plain ε-differential privacy.
    Dp,
    /// `(P, ε)`-one-sided differential privacy.
    Osdp,
    /// Personalized DP (the `Suppress` baseline — flagged by audits).
    Pdp,
}

impl GuaranteeTag {
    /// The on-disk byte.
    pub fn to_byte(self) -> u8 {
        match self {
            GuaranteeTag::Dp => 0,
            GuaranteeTag::Osdp => 1,
            GuaranteeTag::Pdp => 2,
        }
    }

    /// Decodes the on-disk byte.
    pub fn from_byte(byte: u8) -> Result<Self> {
        match byte {
            0 => Ok(GuaranteeTag::Dp),
            1 => Ok(GuaranteeTag::Osdp),
            2 => Ok(GuaranteeTag::Pdp),
            other => Err(OsdpError::Persistence(format!("unknown guarantee tag {other}"))),
        }
    }
}

/// One admitted grant: the durable image of a `BudgetAccountant` debit plus
/// the audit record it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct GrantRecord {
    /// The audit-log release index the grant was stamped with.
    pub index: u64,
    /// The fixed-point unit count the CAS admitted (`epsilon_to_units` of
    /// the batch total) — the integer recovery sums, never re-derived from
    /// the float.
    pub units: u64,
    /// Per-trial ε (the batch debits `epsilon × trials`).
    pub epsilon: f64,
    /// Number of trials in the batch (1 for single releases).
    pub trials: u64,
    /// Histogram bins released (0 for record-sample releases).
    pub bins: u64,
    /// Guarantee kind of the release.
    pub guarantee: GuaranteeTag,
    /// Mechanism display name.
    pub mechanism: String,
    /// Policy label the release was evaluated under.
    pub policy: String,
    /// Query label.
    pub query: String,
    /// Policy epoch version the release was stamped with (0 for sessions
    /// that never transition).
    pub policy_version: u64,
}

impl GrantRecord {
    /// Total ε of the batch (`epsilon × trials`), the f64 the grant path
    /// converted into [`GrantRecord::units`].
    pub fn total_epsilon(&self) -> f64 {
        self.epsilon * self.trials as f64
    }
}

/// One refused grant: nothing was spent, but the refusal itself is part of
/// the tenant's serving history (grants + refusals account for every
/// attempt against the cap).
#[derive(Debug, Clone, PartialEq)]
pub struct RefusalRecord {
    /// The unit count the refused request would have debited.
    pub units: u64,
    /// The requested ε total.
    pub epsilon: f64,
    /// Mechanism display name.
    pub mechanism: String,
}

/// The counter block shared by snapshots and snapshot markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotCounters {
    /// Total admitted spend in fixed-point units.
    pub spent_units: u64,
    /// Next audit release index (== releases logged so far).
    pub audit_seq: u64,
    /// Audit-log ε total in fixed-point units (equals `spent_units` for a
    /// session whose every grant is audited).
    pub audit_units: u64,
    /// Number of grant records logged.
    pub grants: u64,
    /// Number of refusal records logged.
    pub refusals: u64,
}

/// One policy epoch transition: the durable image of a
/// `set_policy_epoch` call, carrying everything recovery needs to rebuild
/// the version history bit-for-bit.
///
/// The record carries its own ordering (`version` is dense, and
/// `boundary_seq` pins the transition to a position in the audit sequence),
/// so its physical position in the WAL is irrelevant — snapshot rotation
/// re-emits transitions into the fresh WAL in version order without
/// changing their meaning.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// The version the transition installed (dense, starting at 1; version
    /// 0 is the session's initial epoch and is never logged).
    pub version: u64,
    /// The audit sequence number at which the version took force: every
    /// release with index `>= boundary_seq` is stamped with this version
    /// (until the next transition's boundary).
    pub boundary_seq: u64,
    /// `true` for a relax (consent), `false` for a tighten (opt-out,
    /// decay) — the direction the stale-policy verifier orders
    /// permissiveness by.
    pub relaxes: bool,
    /// The new epoch's policy label.
    pub label: String,
}

/// One write-ahead ledger record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An admitted grant.
    Grant(GrantRecord),
    /// A refused grant.
    Refusal(RefusalRecord),
    /// The first record of a freshly-rotated WAL: the generation and
    /// counters of the snapshot that preceded the rotation, letting
    /// recovery cross-check (or, if the snapshot file is lost, partially
    /// reconstruct) the base state.
    SnapshotMarker {
        /// Snapshot generation this WAL continues from.
        generation: u64,
        /// The snapshot's counter block.
        counters: SnapshotCounters,
    },
    /// A policy epoch transition.
    EpochTransition(EpochRecord),
}

/// A borrowed view of an appendable record, so the hot append path can
/// encode a grant straight from the caller's `&GrantRecord` without first
/// cloning its strings into an owned [`WalRecord`]. `WalRecord::encode_into`
/// delegates here, so the bytes are identical by construction.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RecordRef<'a> {
    /// A borrowed grant.
    Grant(&'a GrantRecord),
    /// A borrowed refusal.
    Refusal(&'a RefusalRecord),
    /// A borrowed snapshot marker.
    Marker {
        /// Snapshot generation the WAL continues from.
        generation: u64,
        /// The snapshot's counter block.
        counters: &'a SnapshotCounters,
    },
    /// A borrowed epoch transition.
    Epoch(&'a EpochRecord),
}

impl RecordRef<'_> {
    /// Serializes the record payload (no framing) into `out`.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            RecordRef::Grant(g) => {
                out.push(TAG_GRANT);
                put_u64(out, g.index);
                put_u64(out, g.units);
                put_f64(out, g.epsilon);
                put_u64(out, g.trials);
                put_u64(out, g.bins);
                out.push(g.guarantee.to_byte());
                put_str(out, &g.mechanism);
                put_str(out, &g.policy);
                put_str(out, &g.query);
                // Appended after the original layout so fixed offsets into
                // the prefix (e.g. the guarantee byte at 41) stay put.
                put_u64(out, g.policy_version);
            }
            RecordRef::Refusal(r) => {
                out.push(TAG_REFUSAL);
                put_u64(out, r.units);
                put_f64(out, r.epsilon);
                put_str(out, &r.mechanism);
            }
            RecordRef::Marker { generation, counters } => {
                out.push(TAG_MARKER);
                put_u64(out, generation);
                put_counters(out, counters);
            }
            RecordRef::Epoch(t) => {
                out.push(TAG_EPOCH);
                put_u64(out, t.version);
                put_u64(out, t.boundary_seq);
                out.push(t.relaxes as u8);
                put_str(out, &t.label);
            }
        }
    }

    /// Clones the borrowed record into its owned form (the group-commit
    /// submission path, which must ship the record to the committer thread).
    pub(crate) fn to_owned_record(self) -> WalRecord {
        match self {
            RecordRef::Grant(g) => WalRecord::Grant(g.clone()),
            RecordRef::Refusal(r) => WalRecord::Refusal(r.clone()),
            RecordRef::Marker { generation, counters } => {
                WalRecord::SnapshotMarker { generation, counters: *counters }
            }
            RecordRef::Epoch(t) => WalRecord::EpochTransition(t.clone()),
        }
    }
}

impl WalRecord {
    /// The borrowed view of this record.
    pub(crate) fn as_ref(&self) -> RecordRef<'_> {
        match self {
            WalRecord::Grant(g) => RecordRef::Grant(g),
            WalRecord::Refusal(r) => RecordRef::Refusal(r),
            WalRecord::SnapshotMarker { generation, counters } => {
                RecordRef::Marker { generation: *generation, counters }
            }
            WalRecord::EpochTransition(t) => RecordRef::Epoch(t),
        }
    }

    /// Serializes the record payload (no framing) into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_ref().encode_into(out);
    }

    /// Decodes one record payload, requiring every byte to be consumed.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut r = Reader::new(payload);
        let record = match r.u8()? {
            TAG_GRANT => WalRecord::Grant(GrantRecord {
                index: r.u64()?,
                units: r.u64()?,
                epsilon: r.f64()?,
                trials: r.u64()?,
                bins: r.u64()?,
                guarantee: GuaranteeTag::from_byte(r.u8()?)?,
                mechanism: r.string()?,
                policy: r.string()?,
                query: r.string()?,
                policy_version: r.u64()?,
            }),
            TAG_REFUSAL => WalRecord::Refusal(RefusalRecord {
                units: r.u64()?,
                epsilon: r.f64()?,
                mechanism: r.string()?,
            }),
            TAG_MARKER => {
                WalRecord::SnapshotMarker { generation: r.u64()?, counters: read_counters(&mut r)? }
            }
            TAG_EPOCH => WalRecord::EpochTransition(EpochRecord {
                version: r.u64()?,
                boundary_seq: r.u64()?,
                relaxes: r.u8()? != 0,
                label: r.string()?,
            }),
            other => return Err(OsdpError::Persistence(format!("unknown record tag {other}"))),
        };
        r.finish()?;
        Ok(record)
    }
}

/// Appends a little-endian `u64`.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its bit pattern.
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `u16`-length-prefixed UTF-8 string (labels are short; longer
/// ones are truncated at a character boundary below 64 KiB).
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    out.extend_from_slice(&(end as u16).to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..end]);
}

/// Appends a [`SnapshotCounters`] block.
pub(crate) fn put_counters(out: &mut Vec<u8>, c: &SnapshotCounters) {
    put_u64(out, c.spent_units);
    put_u64(out, c.audit_seq);
    put_u64(out, c.audit_units);
    put_u64(out, c.grants);
    put_u64(out, c.refusals);
}

/// Reads a [`SnapshotCounters`] block.
pub(crate) fn read_counters(r: &mut Reader<'_>) -> Result<SnapshotCounters> {
    Ok(SnapshotCounters {
        spent_units: r.u64()?,
        audit_seq: r.u64()?,
        audit_units: r.u64()?,
        grants: r.u64()?,
        refusals: r.u64()?,
    })
}

/// A bounds-checked little-endian payload reader.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            OsdpError::Persistence(format!(
                "record payload truncated: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.bytes.len()
            ))
        })?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len checked")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len checked")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len checked")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn string(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| OsdpError::Persistence("record label is not valid UTF-8".into()))
    }

    /// Fails if any payload bytes were left unread (a length mismatch that
    /// the CRC alone cannot catch — e.g. a record written by a newer,
    /// wider layout).
    pub(crate) fn finish(self) -> Result<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(OsdpError::Persistence(format!(
                "record payload has {} trailing bytes",
                self.bytes.len() - self.at
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant() -> WalRecord {
        WalRecord::Grant(GrantRecord {
            index: 7,
            units: 125_000_000_000,
            epsilon: 0.125,
            trials: 1,
            bins: 16,
            guarantee: GuaranteeTag::Osdp,
            mechanism: "OsdpLaplaceL1".into(),
            policy: "P-stress".into(),
            query: "bound".into(),
            policy_version: 2,
        })
    }

    #[test]
    fn records_round_trip() {
        let originals = vec![
            grant(),
            WalRecord::Refusal(RefusalRecord {
                units: 1,
                epsilon: 1e-12,
                mechanism: "DAWA".into(),
            }),
            WalRecord::SnapshotMarker {
                generation: 3,
                counters: SnapshotCounters {
                    spent_units: 42,
                    audit_seq: 5,
                    audit_units: 42,
                    grants: 5,
                    refusals: 2,
                },
            },
            WalRecord::EpochTransition(EpochRecord {
                version: 1,
                boundary_seq: 9,
                relaxes: false,
                label: "P-decay".into(),
            }),
            WalRecord::EpochTransition(EpochRecord {
                version: 2,
                boundary_seq: 14,
                relaxes: true,
                label: "P-consent".into(),
            }),
        ];
        for original in originals {
            let mut bytes = Vec::new();
            original.encode_into(&mut bytes);
            assert_eq!(WalRecord::decode(&bytes).unwrap(), original);
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let mut bytes = Vec::new();
        grant().encode_into(&mut bytes);
        // Truncated payload.
        assert!(WalRecord::decode(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(WalRecord::decode(&long).is_err());
        // Unknown tag.
        let mut bad_tag = bytes.clone();
        bad_tag[0] = 99;
        assert!(WalRecord::decode(&bad_tag).is_err());
        // Unknown guarantee byte (offset: tag + 4×u64 + f64 = 41).
        let mut bad_guarantee = bytes;
        bad_guarantee[41] = 9;
        assert!(WalRecord::decode(&bad_guarantee).is_err());
        assert!(GuaranteeTag::from_byte(3).is_err());
    }

    #[test]
    fn oversized_labels_truncate_at_char_boundaries() {
        let mut out = Vec::new();
        // 70k of multi-byte chars: must truncate below 64 KiB without
        // splitting a character.
        let s = "é".repeat(35_000);
        put_str(&mut out, &s);
        let mut r = Reader::new(&out);
        let back = r.string().unwrap();
        assert!(back.len() <= u16::MAX as usize);
        assert!(s.starts_with(&back));
    }
}
