//! The virtual file system under every byte of ledger IO.
//!
//! All of `osdp-persist`'s file operations go through the [`Vfs`] /
//! [`VfsFile`] traits. Production uses [`StdVfs`] (a zero-cost shim over
//! `std::fs`); tests use [`FaultVfs`], which wraps `StdVfs` and injects
//! **deterministic, seeded** faults per a [`FaultPlan`]: fail-on-nth-op,
//! short (torn) writes, fsync failure, `ENOSPC`, read bit-flips, and
//! rename failure, each scoped to a path pattern. Determinism matters:
//! every fault a plan fires is a function of the plan and the operation
//! sequence, so a failing seed replays exactly.
//!
//! The fault taxonomy mirrors [`FaultClass`]: injected errors carry an
//! `io::ErrorKind` that [`classify`] maps back to `Transient` (interrupted,
//! would-block, timed-out) or `Permanent` (everything else, including
//! `ENOSPC`), which is the same classification the retry layer applies to
//! real OS errors.

use osdp_core::error::{FaultClass, PersistError, PersistOp};
use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, IoSlice, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Maps an `io::ErrorKind` to the retry class. Interrupted syscalls,
/// would-block, and timeouts are worth retrying on the same handle;
/// everything else (disk full, bad descriptor, permission, corruption) is
/// permanent for the handle.
pub fn classify(err: &io::Error) -> FaultClass {
    match err.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            FaultClass::Transient
        }
        _ => FaultClass::Permanent,
    }
}

/// Builds a typed [`PersistError`] from an `io::Error`, classifying it.
pub fn persist_error(op: PersistOp, path: &Path, err: &io::Error) -> PersistError {
    PersistError::new(op, path.display().to_string(), classify(err), err.to_string())
}

/// An open ledger file. Object-safe so ledgers hold `Box<dyn VfsFile>`.
pub trait VfsFile: Send + Debug {
    /// Writes some bytes, returning how many were accepted.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Vectored write of several buffers, returning bytes accepted.
    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match bufs.iter().find(|b| !b.is_empty()) {
            Some(first) => self.write(first),
            None => Ok(0),
        }
    }

    /// Writes the whole buffer or fails. Unlike `std::io::Write::write_all`
    /// this does **not** swallow `Interrupted` — the caller's retry layer
    /// owns that decision (and fault plans rely on every injected error
    /// surfacing).
    fn write_all(&mut self, mut buf: &[u8]) -> io::Result<()> {
        while !buf.is_empty() {
            match self.write(buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "file refused further bytes",
                    ));
                }
                Ok(n) => buf = &buf[n..],
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// `fdatasync`.
    fn sync_data(&mut self) -> io::Result<()>;

    /// Reads everything from the current position.
    fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize>;

    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Seeks, returning the new position.
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64>;
}

/// The file system a ledger shard lives on. Object-safe; ledgers hold an
/// `Arc<dyn Vfs>`.
pub trait Vfs: Send + Sync + Debug {
    /// `mkdir -p`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Opens (creating if absent, never truncating) a file for read+write.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Creates a file that must not already exist (`O_CREAT|O_EXCL`) —
    /// the single-writer lock primitive.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Creates (truncating if present) a file for writing.
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Renames a file (atomic within a directory on POSIX).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Fsyncs a directory, making renames within it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// The production VFS: a transparent shim over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

/// A real file behind the [`StdVfs`].
#[derive(Debug)]
struct StdFile(File);

impl VfsFile for StdFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        self.0.write_vectored(bufs)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize> {
        self.0.read_to_end(out)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.0.seek(pos)
    }
}

impl Vfs for StdVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(File::create(path)?)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }
}

/// What an armed [`FaultRule`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The operation fails outright with an injected error of this class.
    Fail(FaultClass),
    /// A write fails with `ENOSPC` (permanent) after accepting nothing.
    DiskFull,
    /// A **torn write**: the first `keep_bytes` bytes reach the file, then
    /// the call fails with an error of `class` — the mid-`write(2)`
    /// interruption the WAL's truncate-and-retry boundary logic defends
    /// against.
    TornWrite {
        /// Bytes that land before the failure.
        keep_bytes: usize,
        /// The class of the reported error.
        class: FaultClass,
    },
    /// `fdatasync` fails. Always permanent for the handle: after a failed
    /// fsync the page-cache state is unknown and re-fsyncing the same
    /// descriptor proves nothing.
    FsyncFail,
    /// The read succeeds but one bit of the returned data is flipped —
    /// silent media corruption, caught (not repaired) by the WAL CRCs.
    BitFlip {
        /// Which bit to flip, modulo the data length in bits.
        bit_index: u64,
    },
    /// The rename fails (permanent), leaving both names as they were.
    RenameFail,
}

/// One deterministic fault: fires on the `after`-th (0-based) operation
/// matching `op` on a path containing `path_contains`; `sticky` rules keep
/// firing on every later match.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Substring the operation's path must contain (empty matches all).
    pub path_contains: String,
    /// The operation kind this rule arms on.
    pub op: PersistOp,
    /// Matching operations to let through before firing.
    pub after: u64,
    /// Stop firing once this many matching operations have been seen
    /// (`None` = no upper bound). Together with `after` this models a fault
    /// **window** — a device-wide `ENOSPC` storm that eventually clears, a
    /// controller that drops fsyncs for a while and recovers — which is what
    /// incident-correlation tests need: faults that open an incident and
    /// then stop so healing can be observed.
    pub until: Option<u64>,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// Fire on every subsequent match instead of once.
    pub sticky: bool,
}

/// A deterministic fault schedule for a [`FaultVfs`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The rules, consulted in order; the first armed match fires.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (the `FaultVfs` behaves exactly like [`StdVfs`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a one-shot rule: the `after`-th `op` on a matching path fails.
    pub fn fail_nth(
        mut self,
        op: PersistOp,
        path_contains: &str,
        after: u64,
        kind: FaultKind,
    ) -> Self {
        self.rules.push(FaultRule {
            path_contains: path_contains.to_string(),
            op,
            after,
            until: None,
            kind,
            sticky: false,
        });
        self
    }

    /// Adds a sticky rule: every matching `op` from the `after`-th on fails.
    pub fn fail_from(
        mut self,
        op: PersistOp,
        path_contains: &str,
        after: u64,
        kind: FaultKind,
    ) -> Self {
        self.rules.push(FaultRule {
            path_contains: path_contains.to_string(),
            op,
            after,
            until: None,
            kind,
            sticky: true,
        });
        self
    }

    /// Adds a windowed rule: every matching `op` in `[after, until)` fails,
    /// then the fault **clears** — the shape of a shared-device storm
    /// (`ENOSPC` until an operator frees space, a controller rejecting
    /// fsyncs until it resets).
    pub fn fail_window(
        mut self,
        op: PersistOp,
        path_contains: &str,
        after: u64,
        until: u64,
        kind: FaultKind,
    ) -> Self {
        self.rules.push(FaultRule {
            path_contains: path_contains.to_string(),
            op,
            after,
            until: Some(until),
            kind,
            sticky: true,
        });
        self
    }

    /// A deterministic pseudo-random plan derived from `seed` (splitmix64,
    /// no external dependency): one to three rules over the WAL and
    /// snapshot paths, drawn from the full fault taxonomy. The same seed
    /// always yields the same plan, so a failing sweep case replays.
    pub fn seeded(seed: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            // splitmix64: the standard 64-bit mixer.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        let rules = 1 + (next() % 3) as usize;
        for _ in 0..rules {
            let op = match next() % 5 {
                0 => PersistOp::Write,
                1 => PersistOp::Fsync,
                2 => PersistOp::Read,
                3 => PersistOp::Rename,
                _ => PersistOp::Write,
            };
            let path = match next() % 3 {
                0 => "wal.log",
                1 => "snapshot",
                _ => "",
            };
            let class = if next() % 2 == 0 { FaultClass::Transient } else { FaultClass::Permanent };
            let kind = match (op, next() % 4) {
                (PersistOp::Write, 0) => FaultKind::DiskFull,
                (PersistOp::Write, 1) => {
                    FaultKind::TornWrite { keep_bytes: (next() % 64) as usize, class }
                }
                (PersistOp::Fsync, _) => FaultKind::FsyncFail,
                (PersistOp::Read, 0 | 1) => FaultKind::BitFlip { bit_index: next() },
                (PersistOp::Rename, _) => FaultKind::RenameFail,
                _ => FaultKind::Fail(class),
            };
            plan.rules.push(FaultRule {
                path_contains: path.to_string(),
                op,
                after: next() % 12,
                until: None,
                kind,
                sticky: next() % 4 == 0,
            });
        }
        plan
    }
}

/// Per-rule firing state.
#[derive(Debug, Default)]
struct RuleState {
    /// Matching operations seen so far.
    matched: u64,
    /// Whether a non-sticky rule has already fired.
    fired: bool,
}

/// State shared by the [`FaultVfs`] and every file it has opened.
#[derive(Debug)]
struct FaultShared {
    plan: FaultPlan,
    state: Mutex<Vec<RuleState>>,
    injected: AtomicU64,
}

impl FaultShared {
    /// Consults the plan for operation `op` on `path`; the first armed
    /// matching rule fires and its kind is returned.
    fn fault_for(&self, op: PersistOp, path: &Path) -> Option<FaultKind> {
        let path = path.to_string_lossy();
        let mut states = self.state.lock().expect("fault plan lock");
        for (rule, state) in self.plan.rules.iter().zip(states.iter_mut()) {
            if rule.op != op || !path.contains(rule.path_contains.as_str()) {
                continue;
            }
            let at = state.matched;
            state.matched += 1;
            if at < rule.after
                || rule.until.is_some_and(|until| at >= until)
                || (state.fired && !rule.sticky)
            {
                continue;
            }
            state.fired = true;
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(rule.kind);
        }
        None
    }
}

/// The injected `io::Error` of a [`FaultKind`].
fn injected_error(kind: FaultKind) -> io::Error {
    let (io_kind, msg) = match kind {
        FaultKind::Fail(FaultClass::Transient) => {
            (io::ErrorKind::WouldBlock, "injected transient fault")
        }
        FaultKind::Fail(FaultClass::Permanent) => {
            (io::ErrorKind::Other, "injected permanent fault")
        }
        FaultKind::DiskFull => (io::ErrorKind::StorageFull, "injected ENOSPC"),
        FaultKind::TornWrite { class: FaultClass::Transient, .. } => {
            (io::ErrorKind::WouldBlock, "injected torn write (transient)")
        }
        FaultKind::TornWrite { class: FaultClass::Permanent, .. } => {
            (io::ErrorKind::Other, "injected torn write (permanent)")
        }
        FaultKind::FsyncFail => (io::ErrorKind::Other, "injected fsync failure"),
        FaultKind::BitFlip { .. } => (io::ErrorKind::InvalidData, "injected bit flip"),
        FaultKind::RenameFail => (io::ErrorKind::Other, "injected rename failure"),
    };
    io::Error::new(io_kind, msg)
}

/// A [`Vfs`] that delegates to [`StdVfs`] but injects the faults of its
/// [`FaultPlan`] deterministically. Cheap to share: clone the `Arc`.
#[derive(Debug)]
pub struct FaultVfs {
    inner: StdVfs,
    shared: Arc<FaultShared>,
}

impl FaultVfs {
    /// A fault-injecting VFS armed with `plan`.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        let state = (0..plan.rules.len()).map(|_| RuleState::default()).collect();
        Arc::new(Self {
            inner: StdVfs,
            shared: Arc::new(FaultShared {
                plan,
                state: Mutex::new(state),
                injected: AtomicU64::new(0),
            }),
        })
    }

    /// How many faults have fired so far (observability for tests).
    pub fn injected_faults(&self) -> u64 {
        self.shared.injected.load(Ordering::Relaxed)
    }

    /// Consults the plan; maps a non-write-specific fault to its error.
    fn check(&self, op: PersistOp, path: &Path) -> io::Result<()> {
        match self.shared.fault_for(op, path) {
            Some(kind) => Err(injected_error(kind)),
            None => Ok(()),
        }
    }

    /// Applies any armed bit-flip to freshly-read bytes.
    fn corrupt_read(&self, path: &Path, bytes: &mut [u8]) -> io::Result<()> {
        match self.shared.fault_for(PersistOp::Read, path) {
            None => Ok(()),
            Some(FaultKind::BitFlip { bit_index }) => {
                if !bytes.is_empty() {
                    let bit = bit_index % (bytes.len() as u64 * 8);
                    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                Ok(())
            }
            Some(kind) => Err(injected_error(kind)),
        }
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check(PersistOp::CreateDir, path)?;
        self.inner.create_dir_all(path)
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check(PersistOp::Open, path)?;
        let inner = self.inner.open_rw(path)?;
        Ok(Box::new(FaultFile {
            inner,
            path: path.to_path_buf(),
            shared: Arc::clone(&self.shared),
        }))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check(PersistOp::Open, path)?;
        let inner = self.inner.create_new(path)?;
        Ok(Box::new(FaultFile {
            inner,
            path: path.to_path_buf(),
            shared: Arc::clone(&self.shared),
        }))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check(PersistOp::Open, path)?;
        let inner = self.inner.create_truncate(path)?;
        Ok(Box::new(FaultFile {
            inner,
            path: path.to_path_buf(),
            shared: Arc::clone(&self.shared),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(path)?;
        self.corrupt_read(path, &mut bytes)?;
        Ok(bytes)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check(PersistOp::Remove, path)?;
        self.inner.remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check(PersistOp::Rename, from)?;
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.check(PersistOp::Fsync, path)?;
        self.inner.sync_dir(path)
    }
}

/// A file opened through a [`FaultVfs`]: consults the shared plan on every
/// operation, delegating to the real file in between.
#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    shared: Arc<FaultShared>,
}

impl VfsFile for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.shared.fault_for(PersistOp::Write, &self.path) {
            None => self.inner.write(buf),
            Some(kind @ FaultKind::TornWrite { keep_bytes, .. }) => {
                // The torn prefix really lands; the caller sees a failure.
                let keep = keep_bytes.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                }
                Err(injected_error(kind))
            }
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match self.shared.fault_for(PersistOp::Write, &self.path) {
            None => self.inner.write_vectored(bufs),
            Some(kind @ FaultKind::TornWrite { keep_bytes, .. }) => {
                let mut remaining = keep_bytes;
                for buf in bufs {
                    if remaining == 0 {
                        break;
                    }
                    let keep = remaining.min(buf.len());
                    self.inner.write_all(&buf[..keep])?;
                    remaining -= keep;
                }
                Err(injected_error(kind))
            }
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.shared.fault_for(PersistOp::Fsync, &self.path) {
            None => self.inner.sync_data(),
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize> {
        let start = out.len();
        let n = self.inner.read_to_end(out)?;
        match self.shared.fault_for(PersistOp::Read, &self.path) {
            None => Ok(n),
            Some(FaultKind::BitFlip { bit_index }) => {
                let fresh = &mut out[start..];
                if !fresh.is_empty() {
                    let bit = bit_index % (fresh.len() as u64 * 8);
                    fresh[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                Ok(n)
            }
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.shared.fault_for(PersistOp::Write, &self.path) {
            None => self.inner.set_len(len),
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        // Seeks carry no data; faulting them adds schedules without adding
        // failure modes, so they pass through.
        self.inner.seek(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("osdp-vfs-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn classification_splits_transient_from_permanent() {
        for kind in [io::ErrorKind::Interrupted, io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut]
        {
            assert_eq!(classify(&io::Error::new(kind, "x")), FaultClass::Transient);
        }
        for kind in
            [io::ErrorKind::StorageFull, io::ErrorKind::PermissionDenied, io::ErrorKind::Other]
        {
            assert_eq!(classify(&io::Error::new(kind, "x")), FaultClass::Permanent);
        }
    }

    #[test]
    fn std_vfs_round_trips_bytes() {
        let dir = tmp("std");
        let path = dir.join("f");
        let mut f = StdVfs.create_truncate(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(StdVfs.read(&path).unwrap(), b"hello");
        let mut f = StdVfs.open_rw(&path).unwrap();
        assert_eq!(f.seek(SeekFrom::End(0)).unwrap(), 5);
        f.set_len(3).unwrap();
        drop(f);
        assert_eq!(StdVfs.read(&path).unwrap(), b"hel");
        StdVfs.rename(&path, &dir.join("g")).unwrap();
        StdVfs.sync_dir(&dir).unwrap();
        StdVfs.remove_file(&dir.join("g")).unwrap();
        assert!(StdVfs.create_new(&dir.join("g")).is_ok());
        assert!(StdVfs.create_new(&dir.join("g")).is_err(), "O_EXCL refuses a second creator");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_rules_fire_deterministically() {
        let dir = tmp("nth");
        let path = dir.join("wal.log");
        let plan = FaultPlan::new().fail_nth(
            PersistOp::Write,
            "wal.log",
            2,
            FaultKind::Fail(FaultClass::Transient),
        );
        let vfs = FaultVfs::new(plan);
        let mut f = vfs.create_truncate(&path).unwrap();
        f.write_all(b"a").unwrap();
        f.write_all(b"b").unwrap();
        let err = f.write_all(b"c").unwrap_err();
        assert_eq!(classify(&err), FaultClass::Transient);
        // One-shot: the next write goes through.
        f.write_all(b"d").unwrap();
        assert_eq!(vfs.injected_faults(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_writes_land_a_prefix_then_fail() {
        let dir = tmp("torn");
        let path = dir.join("wal.log");
        let plan = FaultPlan::new().fail_nth(
            PersistOp::Write,
            "wal.log",
            0,
            FaultKind::TornWrite { keep_bytes: 3, class: FaultClass::Transient },
        );
        let vfs = FaultVfs::new(plan);
        let mut f = vfs.create_truncate(&path).unwrap();
        let err = f.write_all(b"abcdef").unwrap_err();
        assert_eq!(classify(&err), FaultClass::Transient);
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"abc", "the torn prefix landed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_corrupt_exactly_one_bit() {
        let dir = tmp("flip");
        let path = dir.join("snapshot.bin");
        std::fs::write(&path, [0u8; 16]).unwrap();
        let plan = FaultPlan::new().fail_nth(
            PersistOp::Read,
            "snapshot",
            0,
            FaultKind::BitFlip { bit_index: 13 },
        );
        let vfs = FaultVfs::new(plan);
        let corrupted = vfs.read(&path).unwrap();
        let ones: u32 = corrupted.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
        // One-shot: a second read is clean.
        assert_eq!(vfs.read(&path).unwrap(), vec![0u8; 16]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sticky_rules_fire_forever_and_rename_faults_leave_files_alone() {
        let dir = tmp("sticky");
        let a = dir.join("snapshot.tmp");
        let b = dir.join("snapshot.bin");
        std::fs::write(&a, b"x").unwrap();
        let plan =
            FaultPlan::new().fail_from(PersistOp::Rename, "snapshot", 0, FaultKind::RenameFail);
        let vfs = FaultVfs::new(plan);
        assert!(vfs.rename(&a, &b).is_err());
        assert!(vfs.rename(&a, &b).is_err(), "sticky rules keep firing");
        assert!(a.exists() && !b.exists());
        assert_eq!(vfs.injected_faults(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn windowed_rules_fire_inside_the_window_and_then_clear() {
        let dir = tmp("window");
        let path = dir.join("wal.log");
        // Writes #1 and #2 fail (a two-op ENOSPC storm); #0 and #3+ pass.
        let plan =
            FaultPlan::new().fail_window(PersistOp::Write, "wal.log", 1, 3, FaultKind::DiskFull);
        let vfs = FaultVfs::new(plan);
        let mut f = vfs.create_truncate(&path).unwrap();
        f.write_all(b"a").unwrap();
        assert!(f.write_all(b"b").is_err());
        assert!(f.write_all(b"c").is_err());
        f.write_all(b"d").unwrap();
        f.write_all(b"e").unwrap();
        assert_eq!(vfs.injected_faults(), 2, "the storm cleared at the window end");
        assert_eq!(std::fs::read(&path).unwrap(), b"ade");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_plans_are_deterministic_and_varied() {
        for seed in 0..64u64 {
            assert_eq!(FaultPlan::seeded(seed), FaultPlan::seeded(seed));
            let plan = FaultPlan::seeded(seed);
            assert!(!plan.rules.is_empty() && plan.rules.len() <= 3);
        }
        assert_ne!(FaultPlan::seeded(1), FaultPlan::seeded(2), "seeds vary the plan");
    }
}
