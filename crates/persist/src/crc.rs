//! Table-driven CRC-32 (IEEE 802.3 polynomial), the per-record checksum of
//! the write-ahead ledger. Implemented in-crate: the build is offline and
//! the WAL must not grow a dependency for 20 lines of table lookup.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE) checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_byte_corruption() {
        let mut payload = b"grant:0.125:tenant-acme".to_vec();
        let clean = crc32(&payload);
        for i in 0..payload.len() {
            payload[i] ^= 0x40;
            assert_ne!(crc32(&payload), clean, "flip at byte {i} must change the checksum");
            payload[i] ^= 0x40;
        }
        assert_eq!(crc32(&payload), clean);
    }
}
