//! Table-driven CRC-32 (IEEE 802.3 polynomial), the per-record checksum of
//! the write-ahead ledger. Implemented in-crate: the build is offline and
//! the WAL must not grow a dependency for a page of table lookups.
//!
//! The hot path is **slicing-by-8**: eight 256-entry tables (computed at
//! compile time) let the loop fold eight input bytes per iteration with
//! eight independent lookups instead of eight serially-dependent ones —
//! roughly a 4–6× throughput win on frame-sized payloads, which matters
//! because every group-committed batch checksums each frame it carries.
//! The checksum *value* is bit-identical to the classic bytewise form
//! (table 0 **is** the classic table), so every WAL written before this
//! optimization still replays; the golden-value tests below pin that.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables, computed at compile time. `TABLES[0]` is the
/// classic bytewise table; `TABLES[k][b]` is the CRC contribution of byte
/// `b` seen `k` positions before the end of an 8-byte block.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// The CRC-32 (IEEE) checksum of `bytes` (slicing-by-8).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().expect("len checked")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..].try_into().expect("len checked"));
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original one-byte-at-a-time form, kept as the parity reference:
    /// the slicing-by-8 hot path must agree with it on every input.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let mut crc = u32::MAX;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        !crc
    }

    #[test]
    fn matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn golden_values_pin_wal_compatibility() {
        // Exact checksums of representative WAL payload shapes, frozen at
        // the bytewise implementation's output. If any of these move, WALs
        // written by earlier builds stop replaying — do not "fix" the
        // constants; fix the implementation.
        assert_eq!(crc32(b"grant:0.125:tenant-acme"), 0x8E54_F8BF);
        let frame_like: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        assert_eq!(crc32(&frame_like), 0xE87F_7EE4);
        assert_eq!(crc32(&[0u8; 64]), 0x758D_6336);
        assert_eq!(crc32(&[0xFFu8; 33]), 0x682D_B523);
    }

    #[test]
    fn slicing_by_8_matches_bytewise_on_every_length_and_alignment() {
        // Pseudo-random buffer; check every prefix length 0..=257 so every
        // chunk remainder (0–7 bytes) and small-input path is exercised.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let buf: Vec<u8> = (0..257)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        for len in 0..=buf.len() {
            assert_eq!(
                crc32(&buf[..len]),
                crc32_bytewise(&buf[..len]),
                "slicing-by-8 diverges from bytewise at len {len}"
            );
        }
    }

    #[test]
    fn detects_single_byte_corruption() {
        let mut payload = b"grant:0.125:tenant-acme".to_vec();
        let clean = crc32(&payload);
        for i in 0..payload.len() {
            payload[i] ^= 0x40;
            assert_ne!(crc32(&payload), clean, "flip at byte {i} must change the checksum");
            payload[i] ^= 0x40;
        }
        assert_eq!(crc32(&payload), clean);
    }
}
