//! Cold-data checksum scrubbing: find silent bit rot **before** recovery
//! depends on the bytes.
//!
//! Recovery ([`crate::ledger`]) only reads a shard when something opens it —
//! which means a WAL frame that rotted on disk months ago is discovered at
//! the worst possible moment, mid-heal, and everything after it is silently
//! truncated. The scrubber closes that window: [`scrub_shard`] re-reads a
//! shard's `wal.log` and snapshots through the same [`crate::vfs::Vfs`]
//! seam production IO uses, verifies every CRC-32 frame **without decoding
//! payloads** (the [`WalReader`] verify-only walk), and reports what it
//! found as a [`ScrubReport`].
//!
//! ## What is (and is not) a finding
//!
//! * A complete frame failing its CRC, a full header with an absurd length
//!   field, a foreign WAL magic, or an undecodable `snapshot.bin` are
//!   **findings**: durable bytes changed after they were acknowledged, and
//!   any recovery that runs before repair will silently lose the tail.
//! * A **torn tail** — a partial frame at the end of the WAL — is *not* a
//!   finding. It is the normal residue of an interrupted append, and
//!   (because the scrubber takes **no lock**) also exactly what a read
//!   racing a live group-commit batch observes. Same for a short WAL header
//!   mid-rewrite, and for a rotten `snapshot.prev` (a fallback artifact the
//!   next rotation rewrites): those are [`ScrubReport::warnings`].
//!
//! The maintenance plane (`osdp_engine::supervisor`) feeds findings into
//! the same tenant-health transitions a failed write takes — quarantine,
//! then heal — so corruption is handled by the one repair path that already
//! exists, instead of a second bespoke one.

use crate::ledger::{SNAPSHOT_FILE, SNAPSHOT_PREV_FILE, WAL_FILE, WAL_HEADER, WAL_MAGIC};
use crate::snapshot::SnapshotState;
use crate::vfs::{persist_error, Vfs};
use crate::wal::{FrameCorruption, WalReader};
use osdp_core::error::{FaultClass, PersistError, PersistOp};
use std::path::{Path, PathBuf};

/// One piece of evidence that durable bytes changed after they were
/// acknowledged.
#[derive(Debug, Clone, PartialEq)]
pub enum ScrubFinding {
    /// A complete WAL frame failed verification mid-file.
    WalCorruption {
        /// The WAL file.
        path: PathBuf,
        /// The corrupt frame, with its offset relative to the WAL **body**
        /// (add [`frame_file_offset`](ScrubFinding::frame_file_offset) for
        /// the absolute file position).
        corruption: FrameCorruption,
        /// Frames that verified before the corrupt one — the prefix replay
        /// would keep.
        surviving_frames: u64,
        /// Zero-based index of the corrupt frame in the WAL body — with
        /// [`frame_file_offset`](ScrubFinding::frame_file_offset), enough
        /// to locate the rot without re-walking the file.
        frame_index: u64,
    },
    /// `wal.log` is long enough to hold a header but does not start with
    /// the WAL magic.
    WalBadMagic {
        /// The WAL file.
        path: PathBuf,
    },
    /// The primary snapshot failed to decode.
    SnapshotUndecodable {
        /// The snapshot file.
        path: PathBuf,
        /// The decoder's complaint.
        detail: String,
    },
}

impl ScrubFinding {
    /// The file the finding is about.
    pub fn path(&self) -> &Path {
        match self {
            ScrubFinding::WalCorruption { path, .. }
            | ScrubFinding::WalBadMagic { path }
            | ScrubFinding::SnapshotUndecodable { path, .. } => path,
        }
    }

    /// For [`ScrubFinding::WalCorruption`], the corrupt frame's absolute
    /// byte offset in the file (body offset + file header).
    pub fn frame_file_offset(&self) -> Option<u64> {
        match self {
            ScrubFinding::WalCorruption { corruption, .. } => {
                Some(corruption.offset + WAL_HEADER as u64)
            }
            _ => None,
        }
    }

    /// For [`ScrubFinding::WalCorruption`], the zero-based index of the
    /// corrupt frame in the WAL body.
    pub fn frame_index(&self) -> Option<u64> {
        match self {
            ScrubFinding::WalCorruption { frame_index, .. } => Some(*frame_index),
            _ => None,
        }
    }

    /// The finding as a typed persistence error — the shape the tenant
    /// health plane already consumes. Always [`PersistOp::Read`] +
    /// [`FaultClass::Permanent`]: rot does not heal on retry; the shard
    /// needs repair (reopen truncates the WAL at the rot boundary).
    pub fn to_persist_error(&self) -> PersistError {
        let detail = match self {
            ScrubFinding::WalCorruption { corruption, surviving_frames, frame_index, .. } => {
                format!(
                    "scrub: wal frame {} at byte {} failed verification ({}); {} frames \
                     survive before it",
                    frame_index,
                    corruption.offset + WAL_HEADER as u64,
                    corruption.defect,
                    surviving_frames
                )
            }
            ScrubFinding::WalBadMagic { .. } => {
                "scrub: wal.log does not start with the WAL magic".to_string()
            }
            ScrubFinding::SnapshotUndecodable { detail, .. } => {
                format!("scrub: snapshot failed to decode: {detail}")
            }
        };
        PersistError::new(
            PersistOp::Read,
            self.path().display().to_string(),
            FaultClass::Permanent,
            detail,
        )
    }
}

impl std::fmt::Display for ScrubFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_persist_error().detail)
    }
}

/// A benign oddity the scrubber noticed, located precisely enough that an
/// operator can inspect it without re-walking the WAL.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubWarning {
    /// What was observed.
    pub message: String,
    /// Zero-based index of the WAL frame the warning is about (the torn
    /// frame for a torn tail), when the warning locates a frame.
    pub frame_index: Option<u64>,
    /// Absolute byte offset in the file where the oddity starts, when the
    /// warning has a position.
    pub byte_offset: Option<u64>,
}

impl std::fmt::Display for ScrubWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(frame) = self.frame_index {
            write!(f, " [frame {frame}]")?;
        }
        if let Some(offset) = self.byte_offset {
            write!(f, " [byte {offset}]")?;
        }
        Ok(())
    }
}

/// What one pass of [`scrub_shard`] observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScrubReport {
    /// The shard directory scrubbed.
    pub dir: PathBuf,
    /// WAL frames whose CRC verified.
    pub wal_frames: u64,
    /// Bytes of verified WAL body (excluding the file header).
    pub wal_bytes: u64,
    /// Bytes past the verified prefix that do not amount to a complete
    /// frame — benign (an in-flight append or crash residue the next open
    /// truncates), not corruption.
    pub torn_tail_bytes: u64,
    /// Evidence of silent corruption. Empty on a healthy shard.
    pub findings: Vec<ScrubFinding>,
    /// Benign oddities worth logging but demanding no health transition
    /// (torn tail, short header mid-rewrite, rotten `snapshot.prev`),
    /// each carrying its frame index / byte offset when it has one.
    pub warnings: Vec<ScrubWarning>,
}

impl ScrubReport {
    /// Whether the shard shows no evidence of corruption.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The most severe finding as a typed persistence error (`None` when
    /// clean) — what the health plane records against the tenant.
    pub fn to_persist_error(&self) -> Option<PersistError> {
        self.findings.first().map(ScrubFinding::to_persist_error)
    }
}

/// Verifies one tenant shard's cold data — `wal.log` frame CRCs (without
/// decoding), the snapshot magic/codec — through `vfs`, **without taking
/// the shard lock** and without writing a byte. Safe to run against a shard
/// that is actively serving: the worst a racing writer can cause is a torn
/// tail, which is reported as a warning, never a finding.
///
/// `Err` means the scrub itself could not run (an IO fault while reading) —
/// that error feeds the same health accounting a failed grant write does.
/// Corruption is **not** an error: it comes back as
/// [`ScrubReport::findings`] so the caller can see every defect, not just
/// the first.
pub fn scrub_shard(vfs: &dyn Vfs, dir: &Path) -> Result<ScrubReport, PersistError> {
    let mut report = ScrubReport { dir: dir.to_path_buf(), ..ScrubReport::default() };
    scrub_wal(vfs, dir, &mut report)?;
    scrub_snapshots(vfs, dir, &mut report)?;
    Ok(report)
}

fn scrub_wal(vfs: &dyn Vfs, dir: &Path, report: &mut ScrubReport) -> Result<(), PersistError> {
    let wal_path = dir.join(WAL_FILE);
    let wal = match vfs.read(&wal_path) {
        Ok(bytes) => bytes,
        // Absent WAL: a shard that never opened, or the instant before the
        // first header write. Nothing to verify.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(persist_error(PersistOp::Read, &wal_path, &e)),
    };
    if wal.len() < WAL_HEADER {
        if !wal.is_empty() {
            report.warnings.push(ScrubWarning {
                message: format!(
                    "wal.log holds {} bytes — shorter than its header (interrupted rewrite; \
                     the next open truncates it)",
                    wal.len()
                ),
                frame_index: None,
                byte_offset: Some(0),
            });
        }
        return Ok(());
    }
    if &wal[..WAL_MAGIC.len()] != WAL_MAGIC {
        report.findings.push(ScrubFinding::WalBadMagic { path: wal_path });
        return Ok(());
    }
    let v = WalReader::verify_frames(&wal[WAL_HEADER..]);
    report.wal_frames = v.frames;
    report.wal_bytes = v.valid_len as u64;
    report.torn_tail_bytes = v.torn_tail_bytes;
    if let Some(corruption) = v.corruption {
        report.findings.push(ScrubFinding::WalCorruption {
            path: wal_path,
            corruption,
            surviving_frames: v.frames,
            frame_index: v.frames,
        });
    } else if v.torn_tail_bytes > 0 {
        report.warnings.push(ScrubWarning {
            message: format!(
                "wal.log ends in a {}-byte torn tail (in-flight append or crash residue)",
                v.torn_tail_bytes
            ),
            frame_index: Some(v.frames),
            byte_offset: Some(WAL_HEADER as u64 + v.valid_len as u64),
        });
    }
    Ok(())
}

fn scrub_snapshots(
    vfs: &dyn Vfs,
    dir: &Path,
    report: &mut ScrubReport,
) -> Result<(), PersistError> {
    let snap_path = dir.join(SNAPSHOT_FILE);
    match vfs.read(&snap_path) {
        Ok(bytes) => {
            if let Err(e) = SnapshotState::decode(&bytes) {
                report.findings.push(ScrubFinding::SnapshotUndecodable {
                    path: snap_path,
                    detail: e.to_string(),
                });
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(persist_error(PersistOp::Read, &snap_path, &e)),
    }
    // The parked prior generation is only a fallback: rot here cannot be
    // repaired by a reopen (the next rotation simply overwrites it), so it
    // must not quarantine the tenant — warn and move on.
    let prev_path = dir.join(SNAPSHOT_PREV_FILE);
    match vfs.read(&prev_path) {
        Ok(bytes) => {
            if let Err(e) = SnapshotState::decode(&bytes) {
                report.warnings.push(ScrubWarning {
                    message: format!(
                        "snapshot.prev failed to decode ({e}); the fallback copy is unusable \
                         until the next rotation rewrites it"
                    ),
                    frame_index: None,
                    byte_offset: None,
                });
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(persist_error(PersistOp::Read, &prev_path, &e)),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::TenantLedger;
    use crate::record::{GrantRecord, GuaranteeTag};
    use crate::vfs::{FaultKind, FaultPlan, FaultVfs, StdVfs};
    use crate::wal::SyncPolicy;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("osdp-scrub-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grant(index: u64) -> GrantRecord {
        GrantRecord {
            index,
            units: 100,
            epsilon: 1e-10,
            trials: 1,
            bins: 8,
            guarantee: GuaranteeTag::Osdp,
            mechanism: "M".into(),
            policy: "P".into(),
            query: "q".into(),
            policy_version: 0,
        }
    }

    /// Builds a closed shard with `n` grants and returns its directory.
    fn shard(name: &str, n: u64) -> PathBuf {
        let dir = tmp_dir(name);
        let (ledger, _) = TenantLedger::open(&dir, SyncPolicy::Always).expect("open");
        for i in 0..n {
            ledger.append_grant(&grant(i)).expect("grant");
        }
        drop(ledger);
        dir
    }

    #[test]
    fn a_healthy_shard_scrubs_clean() {
        let dir = shard("clean", 8);
        let report = scrub_shard(&StdVfs, &dir).expect("scrub");
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert_eq!(report.wal_frames, 8);
        assert_eq!(report.torn_tail_bytes, 0);
        assert!(report.to_persist_error().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_bit_rot_is_a_finding_with_the_right_offset() {
        let dir = shard("bitrot", 6);
        let wal_path = dir.join("wal.log");
        let mut bytes = std::fs::read(&wal_path).expect("read wal");
        // Flip one payload bit in the 4th frame (uniform frames).
        let body = bytes.len() - WAL_HEADER;
        let frame = body / 6;
        let victim = WAL_HEADER + 3 * frame + 12;
        bytes[victim] ^= 0x40;
        std::fs::write(&wal_path, &bytes).expect("write rot");
        let report = scrub_shard(&StdVfs, &dir).expect("scrub");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.wal_frames, 3);
        let finding = &report.findings[0];
        assert_eq!(finding.frame_file_offset(), Some((WAL_HEADER + 3 * frame) as u64));
        assert_eq!(finding.frame_index(), Some(3), "the 4th frame (index 3) is the rotten one");
        let detail = &report.to_persist_error().expect("finding maps to an error").detail;
        assert!(detail.contains("frame 3"), "operators get the frame index: {detail}");
        let err = report.to_persist_error().expect("finding maps to an error");
        assert_eq!(err.op, PersistOp::Read);
        assert_eq!(err.class, FaultClass::Permanent);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tails_and_rotten_prev_snapshots_are_warnings_not_findings() {
        let dir = shard("torn", 4);
        let wal_path = dir.join("wal.log");
        let mut bytes = std::fs::read(&wal_path).expect("read wal");
        // Sever mid-frame: an interrupted append, not corruption.
        bytes.truncate(bytes.len() - 5);
        std::fs::write(&wal_path, &bytes).expect("write torn");
        std::fs::write(dir.join("snapshot.prev"), b"not a snapshot").expect("write prev");
        let report = scrub_shard(&StdVfs, &dir).expect("scrub");
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert_eq!(report.wal_frames, 3);
        assert!(report.torn_tail_bytes > 0);
        assert_eq!(report.warnings.len(), 2, "warnings: {:?}", report.warnings);
        // The torn-tail warning locates the torn frame: index 3 (the 4th
        // frame), starting right after the verified prefix.
        let torn = report.warnings.iter().find(|w| w.message.contains("torn tail")).unwrap();
        assert_eq!(torn.frame_index, Some(3));
        assert_eq!(torn.byte_offset, Some(WAL_HEADER as u64 + report.wal_bytes));
        assert!(format!("{torn}").contains("[frame 3]"));
        // The snapshot.prev warning has no WAL position.
        let prev = report.warnings.iter().find(|w| w.message.contains("snapshot.prev")).unwrap();
        assert_eq!((prev.frame_index, prev.byte_offset), (None, None));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_header_warning_points_at_byte_zero() {
        let dir = shard("shorthdr", 2);
        std::fs::write(dir.join("wal.log"), b"OSDP").expect("truncate header");
        let report = scrub_shard(&StdVfs, &dir).expect("scrub");
        assert!(report.is_clean());
        assert_eq!(report.warnings.len(), 1);
        assert_eq!(report.warnings[0].byte_offset, Some(0));
        assert_eq!(report.warnings[0].frame_index, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_undecodable_primary_snapshot_is_a_finding() {
        let dir = shard("snaprot", 2);
        std::fs::write(dir.join("snapshot.bin"), b"garbage").expect("write snapshot");
        let report = scrub_shard(&StdVfs, &dir).expect("scrub");
        assert_eq!(report.findings.len(), 1);
        assert!(matches!(report.findings[0], ScrubFinding::SnapshotUndecodable { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_injected_read_fault_fails_the_scrub_itself() {
        let dir = shard("readfault", 2);
        let vfs = FaultVfs::new(FaultPlan::new().fail_nth(
            PersistOp::Read,
            "wal.log",
            0,
            FaultKind::Fail(FaultClass::Permanent),
        ));
        let err = scrub_shard(vfs.as_ref(), &dir).expect_err("read fault surfaces");
        assert_eq!(err.op, PersistOp::Read);
        assert_eq!(err.class, FaultClass::Permanent);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_absent_shard_scrubs_clean_and_empty() {
        let dir = tmp_dir("absent");
        let report = scrub_shard(&StdVfs, &dir).expect("scrub");
        assert!(report.is_clean());
        assert_eq!(report.wal_frames, 0);
    }
}
