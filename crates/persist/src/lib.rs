//! # osdp-persist
//!
//! The **durable budget plane** of the OSDP workspace: a write-ahead ledger
//! of fixed-point ε debits, compact snapshots, and crash recovery for the
//! engine's `BudgetAccountant` + `AuditLog` pair.
//!
//! The in-memory accountant made debits *replay-exact*: every grant is an
//! integer number of `1e-12`-ε units, integer addition commutes, and the
//! audit log accumulates the **same** integers — so `audit_total_epsilon ==
//! total_spent` bit for bit under any interleaving. That property is exactly
//! what a write-ahead log needs: replaying any durable prefix of the grant
//! stream reconstructs a state whose totals are the integer sums of the
//! replayed records, with no float drift and no order sensitivity.
//!
//! ## Layout
//!
//! * [`crc`] — table-driven CRC-32 (IEEE, slicing-by-8), the per-record
//!   checksum.
//! * [`record`] — the [`WalRecord`] codec: grants, refusals and snapshot
//!   markers, hand-serialized (tag byte, little-endian integers,
//!   length-prefixed strings — no serde, the vendored shim is marker-only).
//! * [`wal`] — length-prefixed, CRC-checksummed framing; [`replay`] decodes
//!   the longest valid frame prefix and reports where a torn tail begins.
//! * [`snapshot`] — the compact per-tenant snapshot: generation counter,
//!   unit totals, audit sequence, and per-(mechanism, policy, guarantee)
//!   aggregate rows.
//! * [`ledger`] — [`TenantLedger`]: one directory per tenant shard holding
//!   `wal.log` + `snapshot.bin` + `LOCK`, with configurable [`SyncPolicy`]
//!   and a crash-simulation hook.
//! * [`committer`] — the group-commit committer thread: drains concurrent
//!   submissions into one vectored write + one fsync per batch.
//! * [`vfs`] — the file-system seam every byte of ledger IO flows through:
//!   [`StdVfs`] for production and [`FaultVfs`], a deterministic seeded
//!   fault injector (fail-on-nth-op, windowed fault storms, torn writes,
//!   fsync failure, `ENOSPC`, read bit-flips, rename failure) for
//!   robustness tests.
//! * [`scrub`] — cold-data checksum scrubbing: re-reads a shard's WAL and
//!   snapshots through the [`Vfs`] seam, verifies frame CRCs **without
//!   decoding** ([`WalReader`]'s verify-only walk), and reports silent bit
//!   rot as a [`ScrubReport`] *before* recovery depends on the bytes.
//!
//! ## Failure handling
//!
//! IO faults are **typed** ([`osdp_core::error::PersistError`]: operation +
//! path + transient/permanent class). Transient write faults are retried
//! with bounded exponential backoff ([`RetryPolicy`]), truncating back to
//! the last known-good byte boundary between attempts so a retry never
//! duplicates a torn prefix mid-file. A failed **fsync is permanent for the
//! handle**: the page-cache state is unknown, the handle is poisoned, and
//! the only safe continuation is reopen + recover — the ledger never
//! re-fsyncs a descriptor whose fsync already failed. A corrupt snapshot is
//! quarantined as `snapshot.corrupt-<gen>` with fallback to the parked
//! prior generation (`snapshot.prev`) or the WAL marker, all surfaced in a
//! [`RecoveryReport`].
//!
//! ## Durability contract
//!
//! A record is **durable** once its frame has been written and fsync'd; the
//! [`SyncPolicy`] decides when that happens. On recovery, replay stops at
//! the first torn or checksum-failing frame and truncates the file there:
//! the recovered spent total is the sum of durably-logged grants — never
//! more than was actually admitted, and with [`SyncPolicy::Always`] never
//! less. One writer per tenant shard, enforced by a `LOCK` file.
//!
//! [`SyncPolicy::GroupCommit`] keeps the `Always` guarantee — an append
//! returns only after its own frame is fsync'd — but amortizes the fsync:
//! appenders submit encoded frames to a per-ledger committer thread that
//! commits whole batches with one vectored write + one `fdatasync`. With
//! `k` concurrent grantors, throughput approaches `k` grants per fsync
//! (natural batching: frames queued behind the in-flight fsync ride the
//! next batch), while a crash still loses **only frames whose append never
//! returned** — a mid-batch sever leaves a torn tail that recovery
//! truncates, same as any torn frame.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod committer;
pub mod crc;
pub mod ledger;
pub mod record;
pub mod scrub;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use committer::GroupCommitStats;
pub use crc::crc32;
pub use ledger::{force_unlock, LedgerOptions, RecoveredLedger, RecoveryReport, TenantLedger};
pub use record::{
    EpochRecord, GrantRecord, GuaranteeTag, RefusalRecord, SnapshotCounters, WalRecord,
};
pub use scrub::{scrub_shard, ScrubFinding, ScrubReport, ScrubWarning};
pub use snapshot::{AggregateRow, SnapshotState};
pub use vfs::{
    classify, persist_error, FaultKind, FaultPlan, FaultRule, FaultVfs, StdVfs, Vfs, VfsFile,
};
pub use wal::{
    append_record, replay, FrameCorruption, FrameDefect, FrameVerification, ReplayOutcome,
    RetryPolicy, SyncPolicy, WalReader, WalWriter,
};
