//! Regenerates Table 2 of the paper.
use osdp_experiments::{table2, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_args(std::env::args().skip(1));
    println!("{}", table2::run(&config).to_text());
}
