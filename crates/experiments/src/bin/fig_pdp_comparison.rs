//! Regenerates Figure 10 (comparison with the PDP Suppress algorithm).
use osdp_experiments::{pdp_comparison, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_args(std::env::args().skip(1));
    println!("{}", pdp_comparison::run(&config).to_text());
}
