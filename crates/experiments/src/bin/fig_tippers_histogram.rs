//! Regenerates Figures 4-5 (TIPPERS AP x hour histogram) of the paper.
use osdp_experiments::{tippers_hist, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_args(std::env::args().skip(1));
    for table in tippers_hist::run(&config) {
        println!("{}", table.to_text());
    }
}
