//! Regenerates the exclusion-attack exponent table (Sections 3.2 and 3.4).
use osdp_experiments::{attack_table, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_args(std::env::args().skip(1));
    println!("{}", attack_table::run(&config).to_text());
}
