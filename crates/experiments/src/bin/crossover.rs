//! Regenerates the Theorem 5.1 crossover analysis.
use osdp_experiments::{crossover, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_args(std::env::args().skip(1));
    println!("{}", crossover::run(&config).to_text());
}
