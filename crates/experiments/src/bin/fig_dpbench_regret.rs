//! Regenerates Figures 6-9 (DPBench regret analysis) of the paper.
use osdp_experiments::{dpbench_regret, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_args(std::env::args().skip(1));
    let outputs = dpbench_regret::run(&config);
    for table in &outputs.tables {
        println!("{}", table.to_text());
    }
}
