//! Regenerates Figures 2-3 (n-gram MRE) of the paper.
//!
//! Pass `-n 4` or `-n 5` to choose the n-gram length (default: both).
use osdp_experiments::{ngrams, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ExperimentConfig::from_args(args.iter().cloned());
    let ns: Vec<usize> = match args.iter().position(|a| a == "-n") {
        Some(i) => vec![args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(4)],
        None => vec![4, 5],
    };
    for n in ns {
        for table in ngrams::run(&config, n) {
            println!("{}", table.to_text());
        }
    }
}
