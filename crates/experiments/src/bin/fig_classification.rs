//! Regenerates Figure 1 (classification error) of the paper.
use osdp_experiments::{classification, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_args(std::env::args().skip(1));
    for table in classification::run(&config) {
        println!("{}", table.to_text());
    }
}
