//! Runs every experiment and assembles a single report.
//!
//! Usage: `run_all [--full] [--out DIR]`
//! With `--out DIR` the report is also written as `DIR/experiments.md` and
//! `DIR/experiments.json`.
use osdp_experiments::*;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ExperimentConfig::from_args(args.iter().cloned());
    let out_dir: Option<PathBuf> =
        args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).map(PathBuf::from);

    let mut report = Report::new(format!(
        "One-sided Differential Privacy — measured reproduction ({} configuration, seed {:#x})",
        if args.iter().any(|a| a == "--full") { "full" } else { "quick" },
        config.seed
    ));
    eprintln!("[1/10] Table 1 ...");
    report.push(table1::run(&config));
    eprintln!("[2/10] Table 2 ...");
    report.push(table2::run(&config));
    eprintln!("[3/10] Figure 1 (classification) ...");
    report.extend(classification::run(&config));
    eprintln!("[4/10] Figures 2-3 (n-grams) ...");
    report.extend(ngrams::run(&config, 4));
    report.extend(ngrams::run(&config, 5));
    eprintln!("[5/10] Figures 4-5 (TIPPERS histogram) ...");
    report.extend(tippers_hist::run(&config));
    eprintln!("[6/10] Streaming TIPPERS (continual observation) ...");
    report.extend(tippers_stream::run(&config));
    eprintln!("[7/10] Figures 6-9 (DPBench regret) ...");
    report.extend(dpbench_regret::run(&config).tables);
    eprintln!("[8/10] Figure 10 (PDP comparison) ...");
    report.push(pdp_comparison::run(&config));
    eprintln!("[9/10] Theorem 5.1 crossover ...");
    report.push(crossover::run(&config));
    eprintln!("[10/10] Exclusion-attack table ...");
    report.push(attack_table::run(&config));

    println!("{}", report.to_text());
    if let Some(dir) = out_dir {
        report.save(&dir, "experiments").expect("failed to write report");
        eprintln!("report written to {}", dir.display());
    }
}
