//! Regenerates Table 1 of the paper.
use osdp_experiments::{table1, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::from_args(std::env::args().skip(1));
    println!("{}", table1::run(&config).to_text());
}
