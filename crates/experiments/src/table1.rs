//! Table 1: percentage of released non-sensitive records vs ε.

use crate::config::ExperimentConfig;
use osdp_core::{Database, Record, Value};
use osdp_engine::SessionBuilder;
use osdp_mechanisms::OsdpRr;
use osdp_metrics::{ResultRow, ResultTable};

/// The ε values listed in Table 1 of the paper.
pub const TABLE1_EPSILONS: [f64; 3] = [1.0, 0.5, 0.1];

/// Reproduces Table 1: the analytic release probability `1 − e^{−ε}` next to
/// the empirical release rate of `OsdpRR` on a database of non-sensitive
/// records.
pub fn run(config: &ExperimentConfig) -> ResultTable {
    let mut table =
        ResultTable::new("Table 1: percentage of released non-sensitive records vs epsilon");
    let records: Database<Record> = (0..50_000u32)
        .map(|i| Record::builder().field("id", Value::Int(i64::from(i))).build())
        .collect();
    let seeds = config.seeds().child("table1");
    for (i, &eps) in TABLE1_EPSILONS.iter().enumerate() {
        let mechanism = OsdpRr::new(eps).expect("table epsilons are valid");
        // A record-backed session per epsilon on the columnar backend (which
        // retains its rows, so the true-record releases of Table 1 still go
        // through the audited record front door).
        let session = SessionBuilder::new(records.clone())
            .columnar()
            .policy(osdp_core::policy::NoneSensitive, "Pnone")
            .seed(seeds.child("trial").root() ^ i as u64)
            .build()
            .expect("valid session");
        let mut total_rate = 0.0;
        for _trial in 0..config.trials {
            let sample = session.release_records(&mechanism).expect("uncapped session");
            total_rate += sample.len() as f64 / records.len() as f64;
        }
        let empirical = total_rate / config.trials as f64;
        table.push(
            ResultRow::new()
                .dim("epsilon", eps)
                .measure("analytic_released_pct", 100.0 * mechanism.keep_probability())
                .measure("empirical_released_pct", 100.0 * empirical),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper_within_a_percentage_point() {
        let table = run(&ExperimentConfig::quick());
        assert_eq!(table.len(), 3);
        // Paper: ~63%, ~39%, ~9.5%.
        let expected = [("1", 63.2), ("0.5", 39.3), ("0.1", 9.5)];
        for (eps, pct) in expected {
            let analytic = table.lookup(&[("epsilon", eps)], "analytic_released_pct").unwrap();
            let empirical = table.lookup(&[("epsilon", eps)], "empirical_released_pct").unwrap();
            assert!((analytic - pct).abs() < 0.5, "analytic {analytic} vs {pct}");
            assert!((empirical - pct).abs() < 1.0, "empirical {empirical} vs {pct}");
        }
    }
}
