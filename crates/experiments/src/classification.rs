//! Figure 1: resident-vs-visitor classification under different release
//! strategies.
//!
//! For every policy `Pρ` and privacy budget ε the experiment trains a
//! logistic-regression classifier on the data each strategy is allowed to
//! see and reports `1 − AUC` over stratified k-fold cross-validation:
//!
//! * **All NS** — a non-private classifier trained on all non-sensitive
//!   trajectories (the PDP threshold strategy; vulnerable to exclusion
//!   attacks).
//! * **OsdpRR** — trained on the true sample released by `OsdpRR` (OSDP).
//! * **ObjDP** — ε-DP objective-perturbation training on *all* trajectories
//!   (treats everything as sensitive).
//! * **Random** — scores drawn independently of the features.

use crate::config::ExperimentConfig;
use osdp_core::policy::Policy;
use osdp_data::tippers::{
    generate_dataset, policy_for_ratio, FeatureExtractor, SensitiveApPolicy, Trajectory,
    TrajectoryDataset,
};
use osdp_mechanisms::OsdpRr;
use osdp_metrics::{AucSummary, ResultRow, ResultTable};
use osdp_ml::{
    auc, stratified_folds, LogisticRegression, ObjectivePerturbation, RandomClassifier,
    Standardizer, TrainConfig,
};
use osdp_noise::bernoulli::sample_bernoulli;
use rand_chacha::ChaCha12Rng;

/// The trained-model view each strategy is allowed to see.
enum Strategy<'a> {
    AllNonSensitive(&'a SensitiveApPolicy),
    OsdpRr(&'a SensitiveApPolicy, f64),
    ObjDp(f64),
    Random,
}

impl Strategy<'_> {
    fn name(&self) -> &'static str {
        match self {
            Strategy::AllNonSensitive(_) => "All NS",
            Strategy::OsdpRr(..) => "OsdpRR",
            Strategy::ObjDp(_) => "ObjDP",
            Strategy::Random => "Random",
        }
    }
}

/// Runs the Figure 1 experiment; one table per ε.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    let seeds = config.seeds().child("classification");
    let mut data_rng = seeds.rng_for("dataset", 0);
    let dataset = generate_dataset(&config.tippers, &mut data_rng);
    // Scale the frequent-pattern support threshold with the dataset size so
    // the quick configuration still finds patterns (paper: 50 on 553K
    // trajectories).
    let min_support = (dataset.len() / 40).max(5);
    let extractor =
        FeatureExtractor::fit(dataset.trajectories(), dataset.building().ap_count(), min_support);

    let labels: Vec<bool> =
        dataset.trajectories().iter().map(|t| dataset.is_resident(t.user)).collect();
    let features: Vec<Vec<f64>> =
        dataset.trajectories().iter().map(|t| extractor.features(t)).collect();

    let policies: Vec<SensitiveApPolicy> =
        config.ns_ratios.iter().map(|&r| policy_for_ratio(&dataset, r)).collect();

    let mut tables = Vec::new();
    for &eps in &config.epsilons {
        let mut table = ResultTable::new(format!(
            "Figure 1: residents classification error (1 - AUC), eps = {eps}"
        ));
        // Policy-independent baselines.
        let mut fold_rng = seeds.rng_for("folds", eps.to_bits());
        let objdp_error =
            evaluate(&dataset, &features, &labels, config, &Strategy::ObjDp(eps), &mut fold_rng);
        let mut fold_rng = seeds.rng_for("folds-random", eps.to_bits());
        let random_error =
            evaluate(&dataset, &features, &labels, config, &Strategy::Random, &mut fold_rng);

        for policy in &policies {
            for strategy in [Strategy::AllNonSensitive(policy), Strategy::OsdpRr(policy, eps)] {
                let mut fold_rng =
                    seeds.rng_for(policy.label(), eps.to_bits() ^ strategy.name().len() as u64);
                let error =
                    evaluate(&dataset, &features, &labels, config, &strategy, &mut fold_rng);
                table.push(
                    ResultRow::new()
                        .dim("policy", policy.label())
                        .dim("algorithm", strategy.name())
                        .measure("error_1_minus_auc", error),
                );
            }
            table.push(
                ResultRow::new()
                    .dim("policy", policy.label())
                    .dim("algorithm", "ObjDP")
                    .measure("error_1_minus_auc", objdp_error),
            );
            table.push(
                ResultRow::new()
                    .dim("policy", policy.label())
                    .dim("algorithm", "Random")
                    .measure("error_1_minus_auc", random_error),
            );
        }
        tables.push(table);
    }
    tables
}

/// Cross-validates one strategy and returns `1 − mean AUC`.
fn evaluate(
    dataset: &TrajectoryDataset,
    features: &[Vec<f64>],
    labels: &[bool],
    config: &ExperimentConfig,
    strategy: &Strategy<'_>,
    rng: &mut ChaCha12Rng,
) -> f64 {
    let folds = match stratified_folds(labels, config.cv_folds, rng) {
        Ok(folds) => folds,
        Err(_) => return RandomClassifier::EXPECTED_ERROR,
    };
    let mut fold_aucs = Vec::with_capacity(folds.len());
    for fold in &folds {
        let in_test: std::collections::BTreeSet<usize> = fold.iter().copied().collect();
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for i in 0..labels.len() {
            if in_test.contains(&i) {
                test_idx.push(i);
            } else {
                train_idx.push(i);
            }
        }
        let test_x: Vec<Vec<f64>> = test_idx.iter().map(|&i| features[i].clone()).collect();
        let test_y: Vec<bool> = test_idx.iter().map(|&i| labels[i]).collect();

        let scores = match score_fold(dataset, features, labels, &train_idx, &test_x, strategy, rng)
        {
            Some(scores) => scores,
            None => {
                fold_aucs.push(0.5);
                continue;
            }
        };
        fold_aucs.push(auc(&scores, &test_y).unwrap_or(0.5));
    }
    AucSummary::new(fold_aucs).map(|s| s.error()).unwrap_or(RandomClassifier::EXPECTED_ERROR)
}

/// Trains on the strategy's view of the training fold and scores the test
/// fold; `None` when the view degenerates (no examples or a single class).
fn score_fold(
    dataset: &TrajectoryDataset,
    features: &[Vec<f64>],
    labels: &[bool],
    train_idx: &[usize],
    test_x: &[Vec<f64>],
    strategy: &Strategy<'_>,
    rng: &mut ChaCha12Rng,
) -> Option<Vec<f64>> {
    let trajectory_of = |i: usize| -> &Trajectory { &dataset.trajectories()[i] };
    let visible: Vec<usize> = match strategy {
        Strategy::AllNonSensitive(policy) => train_idx
            .iter()
            .copied()
            .filter(|&i| policy.is_non_sensitive(trajectory_of(i)))
            .collect(),
        Strategy::OsdpRr(policy, eps) => {
            let mechanism = OsdpRr::new(*eps).expect("validated upstream");
            train_idx
                .iter()
                .copied()
                .filter(|&i| {
                    policy.is_non_sensitive(trajectory_of(i))
                        && sample_bernoulli(mechanism.keep_probability(), rng).expect("valid p")
                })
                .collect()
        }
        Strategy::ObjDp(_) | Strategy::Random => train_idx.to_vec(),
    };

    if let Strategy::Random = strategy {
        let baseline = RandomClassifier::fit(labels);
        return Some(baseline.predict_proba_all(test_x.len(), rng));
    }

    if visible.is_empty() {
        return None;
    }
    let train_x: Vec<Vec<f64>> = visible.iter().map(|&i| features[i].clone()).collect();
    let train_y: Vec<bool> = visible.iter().map(|&i| labels[i]).collect();
    let positives = train_y.iter().filter(|&&l| l).count();
    if positives == 0 || positives == train_y.len() {
        return None;
    }

    let scaler = Standardizer::fit(&train_x);
    let train_x = scaler.transform_all(&train_x);
    let test_x = scaler.transform_all(test_x);

    match strategy {
        Strategy::ObjDp(eps) => {
            let model = ObjectivePerturbation::new(*eps)
                .expect("validated upstream")
                .train(&train_x, &train_y, rng)
                .ok()?;
            Some(model.predict_proba_all(&test_x))
        }
        _ => {
            let model =
                LogisticRegression::train(&train_x, &train_y, &TrainConfig::default()).ok()?;
            Some(model.predict_proba_all(&test_x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        let mut c = ExperimentConfig::quick();
        c.epsilons = vec![1.0];
        c.ns_ratios = vec![0.9, 0.25];
        c.cv_folds = 3;
        c
    }

    #[test]
    fn produces_one_row_per_policy_and_algorithm() {
        let tables = run(&tiny_config());
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.len(), 2 * 4, "2 policies x 4 algorithms");
        for policy in ["P90", "P25"] {
            for alg in ["All NS", "OsdpRR", "ObjDP", "Random"] {
                let v = t
                    .lookup(&[("policy", policy), ("algorithm", alg)], "error_1_minus_auc")
                    .unwrap();
                assert!((0.0..=1.0).contains(&v), "{policy}/{alg}: {v}");
            }
        }
    }

    #[test]
    fn osdp_rr_tracks_all_ns_and_beats_objdp_at_eps_1() {
        // The Figure 1 qualitative claim, on the quick configuration and a
        // permissive policy.
        let tables = run(&tiny_config());
        let t = &tables[0];
        let all_ns =
            t.lookup(&[("policy", "P90"), ("algorithm", "All NS")], "error_1_minus_auc").unwrap();
        let osdp =
            t.lookup(&[("policy", "P90"), ("algorithm", "OsdpRR")], "error_1_minus_auc").unwrap();
        let objdp =
            t.lookup(&[("policy", "P90"), ("algorithm", "ObjDP")], "error_1_minus_auc").unwrap();
        let random =
            t.lookup(&[("policy", "P90"), ("algorithm", "Random")], "error_1_minus_auc").unwrap();
        assert!(all_ns < 0.25, "non-private baseline should classify well, got {all_ns}");
        assert!(osdp < objdp, "OsdpRR ({osdp}) should beat ObjDP ({objdp})");
        assert!((random - 0.5).abs() < 0.15, "random baseline error {random}");
        assert!(osdp < all_ns + 0.15, "OsdpRR should track the non-private baseline");
    }
}
