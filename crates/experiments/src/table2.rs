//! Table 2: characteristics of the histogram benchmark datasets.

use crate::config::ExperimentConfig;
use osdp_metrics::{ResultRow, ResultTable};

/// Reproduces Table 2: for each synthetic benchmark dataset, the published
/// (target) sparsity and scale next to what the generator actually produced.
pub fn run(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new("Table 2: histogram benchmark characteristics");
    let seeds = config.seeds().child("table2");
    let mut rng = seeds.rng(0);
    for dataset in osdp_data::ALL_DATASETS {
        let spec = dataset.spec();
        let hist = dataset.generate(&mut rng);
        table.push(
            ResultRow::new()
                .dim("dataset", dataset.name())
                .measure("target_sparsity", spec.sparsity)
                .measure("generated_sparsity", hist.sparsity())
                .measure("target_scale", spec.scale as f64)
                .measure("generated_scale", hist.total()),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_appears_and_matches_its_spec() {
        let table = run(&ExperimentConfig::quick());
        assert_eq!(table.len(), 7);
        for dataset in osdp_data::ALL_DATASETS {
            let name = dataset.name();
            let target = table.lookup(&[("dataset", name)], "target_sparsity").unwrap();
            let generated = table.lookup(&[("dataset", name)], "generated_sparsity").unwrap();
            assert!((target - generated).abs() < 0.01, "{name}: {target} vs {generated}");
            let scale = table.lookup(&[("dataset", name)], "generated_scale").unwrap();
            assert_eq!(scale as u64, dataset.spec().scale);
        }
    }
}
