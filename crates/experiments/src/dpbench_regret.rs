//! Figures 6–9: regret analysis on the DPBench-style benchmark histograms
//! (Section 6.3.3.2).
//!
//! For every benchmark dataset, policy generator (Close / Far), non-sensitive
//! ratio ρx and budget ε, the full pool of 4 OSDP + 2 DP algorithms is run and
//! each algorithm's error is divided by the per-input optimum of the pool
//! (its *regret*). The figures aggregate regret along different axes:
//!
//! * Figure 6 — average MRE regret per ρx, both policies, per ε;
//! * Figure 7 — average MRE regret per ρx for each policy, ε = 1;
//! * Figure 8 — the same with Rel95;
//! * Figure 9 — per-dataset MRE regret for the Close policy at ρx ∈ {0.99, 0.5}.

use crate::config::ExperimentConfig;
use osdp_core::Histogram;
use osdp_data::sampling::{sample_policy, PolicyKind};
use osdp_data::BenchmarkDataset;
use osdp_engine::{pair_query, pair_session, pool_from_names};
use osdp_mechanisms::HistogramMechanism;
use osdp_metrics::{
    mean_relative_error, relative_error_percentile, RegretTable, ResultRow, ResultTable, REL95,
};

/// The raw per-input error tables, kept so callers (benches, tests) can slice
/// them differently from the pre-built figure tables.
#[derive(Debug, Clone, Default)]
pub struct RegretOutputs {
    /// MRE per (input, algorithm).
    pub mre: RegretTable,
    /// Rel95 per (input, algorithm).
    pub rel95: RegretTable,
    /// The rendered figure tables (Figures 6–9).
    pub tables: Vec<ResultTable>,
}

/// The algorithm pool of Section 6.3.3, resolved by name through the
/// `osdp_engine::MechanismSpec` registry (4 OSDP + 2 DP algorithms in the
/// default configuration).
pub fn algorithm_pool(config: &ExperimentConfig, eps: f64) -> Vec<Box<dyn HistogramMechanism>> {
    pool_from_names(&config.pool, eps).expect("configured pool resolves")
}

/// Input key used in the regret tables: `eps/policy/rho/dataset`.
fn input_key(eps: f64, kind: PolicyKind, rho: f64, dataset: BenchmarkDataset) -> String {
    format!("{eps}/{}/{rho}/{}", kind.name(), dataset.name())
}

/// Runs the full sweep and assembles the figure tables.
pub fn run(config: &ExperimentConfig) -> RegretOutputs {
    let seeds = config.seeds().child("dpbench");
    let mut outputs = RegretOutputs::default();

    // Generate each dataset once (deterministically), then scale if requested.
    let mut gen_rng = seeds.rng_for("datasets", 0);
    let datasets: Vec<(BenchmarkDataset, Histogram)> = osdp_data::ALL_DATASETS
        .iter()
        .map(|d| {
            let hist = d.generate(&mut gen_rng);
            let scaled = if config.scale_divisor > 1 {
                Histogram::from_counts(
                    hist.counts()
                        .iter()
                        .map(|c| (c / config.scale_divisor as f64).round())
                        .collect(),
                )
            } else {
                hist
            };
            (*d, scaled)
        })
        .collect();

    for &eps in &config.epsilons {
        let pool = algorithm_pool(config, eps);
        for (dataset, full) in &datasets {
            for kind in [PolicyKind::Close, PolicyKind::Far] {
                for &rho in &config.ns_ratios {
                    let mut policy_rng = seeds.rng_for(
                        &format!("policy-{}-{}-{rho}", dataset.name(), kind.name()),
                        eps.to_bits(),
                    );
                    let Ok(policy) = sample_policy(kind, full, rho, &mut policy_rng) else {
                        continue;
                    };
                    let key = input_key(eps, kind, rho, *dataset);
                    // One audited session per (dataset, policy, rho, eps)
                    // input; the sampled policy exists only as its
                    // non-sensitive sub-histogram, so the (x, x_ns) pair is
                    // expanded into a weighted frame and scanned by the
                    // columnar backend.
                    let Ok(builder) = pair_session(full, &policy.non_sensitive) else {
                        continue;
                    };
                    let Ok(session) = builder
                        .policy_label(format!("{}-{rho}", kind.name()))
                        .seed(seeds.child(&key).root())
                        .build()
                    else {
                        continue;
                    };
                    let query = pair_query(full.len());
                    // One pool batch: a single backend scan and grant-lock
                    // critical section amortized across all 6 mechanisms,
                    // with per-mechanism trial streams identical to the old
                    // sequential release_trials loop.
                    let pool_refs: Vec<&dyn HistogramMechanism> =
                        pool.iter().map(|m| m.as_ref()).collect();
                    let releases = session
                        .release_pool(&query, &pool_refs, config.trials)
                        .expect("uncapped measurement session");
                    for release in &releases {
                        let mut mre = 0.0;
                        let mut rel95 = 0.0;
                        for estimate in &release.estimates {
                            mre += mean_relative_error(full, estimate).expect("same domain");
                            rel95 += relative_error_percentile(full, estimate, REL95)
                                .expect("same domain");
                        }
                        outputs.mre.record(&key, &release.mechanism, mre / config.trials as f64);
                        outputs.rel95.record(
                            &key,
                            &release.mechanism,
                            rel95 / config.trials as f64,
                        );
                    }
                }
            }
        }
    }

    outputs.tables = build_figure_tables(config, &outputs.mre, &outputs.rel95);
    outputs
}

/// The algorithms highlighted in the paper's regret figures.
const HIGHLIGHTED: [&str; 3] = ["OsdpLaplaceL1", "DAWAz", "DAWA"];

fn build_figure_tables(
    config: &ExperimentConfig,
    mre: &RegretTable,
    rel95: &RegretTable,
) -> Vec<ResultTable> {
    let mut tables = Vec::new();

    // Figure 6: avg MRE regret per rho, both policies, one table per eps.
    for &eps in &config.epsilons {
        let mut table = ResultTable::new(format!(
            "Figure 6: average regret (MRE) across non-sensitive ratios, both policies, eps = {eps}"
        ));
        for &rho in &config.ns_ratios {
            let slice = mre.filter_inputs(|k| {
                k.starts_with(&format!("{eps}/")) && k.contains(&format!("/{rho}/"))
            });
            for algorithm in HIGHLIGHTED {
                if let Ok(regret) = slice.average_regret(algorithm) {
                    table.push(
                        ResultRow::new()
                            .dim("ns_ratio", rho)
                            .dim("algorithm", algorithm)
                            .measure("avg_regret_mre", regret),
                    );
                }
            }
        }
        tables.push(table);
    }

    // Figures 7 and 8: per policy kind at the headline epsilon.
    let eps = config.epsilons.first().copied().unwrap_or(1.0);
    for (measure_name, source, title) in [
        ("avg_regret_mre", mre, "Figure 7: regret (MRE) per policy"),
        ("avg_regret_rel95", rel95, "Figure 8: regret (Rel95) per policy"),
    ] {
        let mut table = ResultTable::new(format!("{title}, eps = {eps}"));
        for kind in [PolicyKind::Close, PolicyKind::Far] {
            for &rho in &config.ns_ratios {
                if rho < 0.25 {
                    continue;
                }
                let slice = source.filter_inputs(|k| {
                    k.starts_with(&format!("{eps}/{}/", kind.name()))
                        && k.contains(&format!("/{rho}/"))
                });
                for algorithm in HIGHLIGHTED {
                    if let Ok(regret) = slice.average_regret(algorithm) {
                        table.push(
                            ResultRow::new()
                                .dim("policy", kind.name())
                                .dim("ns_ratio", rho)
                                .dim("algorithm", algorithm)
                                .measure(measure_name, regret),
                        );
                    }
                }
            }
        }
        tables.push(table);
    }

    // Figure 9: per-dataset regret for the Close policy at rho in {0.99, 0.5}.
    let mut table =
        ResultTable::new(format!("Figure 9: per-dataset regret (MRE), Close policy, eps = {eps}"));
    for &rho in &[0.99, 0.5] {
        if !config.ns_ratios.contains(&rho) {
            continue;
        }
        for dataset in osdp_data::ALL_DATASETS {
            let key = input_key(eps, PolicyKind::Close, rho, dataset);
            for algorithm in HIGHLIGHTED {
                if let Some(regret) = mre.regret_on(&key, algorithm) {
                    table.push(
                        ResultRow::new()
                            .dim("ns_ratio", rho)
                            .dim("dataset", dataset.name())
                            .dim("algorithm", algorithm)
                            .measure("regret_mre", regret),
                    );
                }
            }
        }
    }
    tables.push(table);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        let mut c = ExperimentConfig::quick();
        c.epsilons = vec![1.0];
        c.ns_ratios = vec![0.99, 0.5];
        c.trials = 1;
        c.scale_divisor = 50;
        c
    }

    #[test]
    fn produces_all_figure_tables_and_regrets_are_at_least_one() {
        let outputs = run(&tiny_config());
        // fig6 (1 eps) + fig7 + fig8 + fig9
        assert_eq!(outputs.tables.len(), 4);
        assert!(outputs.mre.num_inputs() > 0);
        assert_eq!(outputs.mre.algorithms().len(), 6, "4 OSDP + 2 DP algorithms");
        for (_, regret) in outputs.mre.average_regrets() {
            assert!(regret >= 1.0 - 1e-9);
        }
        // Every highlighted algorithm appears in Figure 6.
        let fig6 = &outputs.tables[0];
        for algorithm in HIGHLIGHTED {
            assert!(
                fig6.lookup(&[("ns_ratio", "0.99"), ("algorithm", algorithm)], "avg_regret_mre")
                    .is_some(),
                "{algorithm} missing from Figure 6"
            );
        }
    }

    #[test]
    fn osdp_algorithms_beat_dawa_at_high_non_sensitive_ratios() {
        // Figure 7a claim: for the Close policy and rho = 0.99, the OSDP side
        // of the pool has lower regret than DAWA.
        let outputs = run(&tiny_config());
        let slice = outputs.mre.filter_inputs(|k| k.starts_with("1/Close/0.99/"));
        let dawa = slice.average_regret("DAWA").unwrap();
        let osdp = slice.average_regret("OsdpLaplaceL1").unwrap();
        let dawaz = slice.average_regret("DAWAz").unwrap();
        assert!(
            osdp < dawa || dawaz < dawa,
            "at rho=0.99 an OSDP algorithm should beat DAWA (OsdpLaplaceL1 {osdp}, DAWAz {dawaz}, DAWA {dawa})"
        );
    }
}
