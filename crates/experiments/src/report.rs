//! Collecting experiment results into a report.

use osdp_metrics::ResultTable;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// A named collection of result tables produced by one or more runners.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Report {
    /// Report title.
    pub title: String,
    /// The tables, in presentation order.
    pub tables: Vec<ResultTable>,
}

impl Report {
    /// An empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), tables: Vec::new() }
    }

    /// Adds a table.
    pub fn push(&mut self, table: ResultTable) {
        self.tables.push(table);
    }

    /// Adds many tables.
    pub fn extend(&mut self, tables: Vec<ResultTable>) {
        self.tables.extend(tables);
    }

    /// Renders every table as fixed-width text.
    pub fn to_text(&self) -> String {
        let mut out = format!("==== {} ====\n\n", self.title);
        for t in &self.tables {
            out.push_str(&t.to_text());
            out.push('\n');
        }
        out
    }

    /// Renders the report as Markdown (the format EXPERIMENTS.md embeds).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {}\n\n", self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        out
    }

    /// Serialises the report to pretty JSON (hand-rolled; the vendored
    /// `serde` is a marker-only stand-in).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"title\": {},\n", osdp_metrics::json_string(&self.title)));
        out.push_str("  \"tables\": [\n");
        for (i, table) in self.tables.iter().enumerate() {
            for line in table.to_json().lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
            if i + 1 < self.tables.len() {
                out.truncate(out.trim_end().len());
                out.push_str(",\n");
            }
        }
        out.push_str("  ]\n}");
        out
    }

    /// Writes the JSON and Markdown renderings next to each other under
    /// `dir/<stem>.json` and `dir/<stem>.md`.
    pub fn save(&self, dir: &Path, stem: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut json = std::fs::File::create(dir.join(format!("{stem}.json")))?;
        json.write_all(self.to_json().as_bytes())?;
        let mut md = std::fs::File::create(dir.join(format!("{stem}.md")))?;
        md.write_all(self.to_markdown().as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osdp_metrics::ResultRow;

    fn sample() -> Report {
        let mut report = Report::new("Smoke");
        let mut t = ResultTable::new("Table A");
        t.push(ResultRow::new().dim("x", 1).measure("y", 2.0));
        report.push(t);
        report.extend(vec![ResultTable::new("Table B")]);
        report
    }

    #[test]
    fn rendering_contains_all_tables() {
        let r = sample();
        assert_eq!(r.tables.len(), 2);
        let text = r.to_text();
        assert!(text.contains("Smoke") && text.contains("Table A") && text.contains("Table B"));
        let md = r.to_markdown();
        assert!(md.starts_with("## Smoke"));
        assert!(md.contains("### Table A"));
        let json = r.to_json();
        assert!(json.contains("\"Table B\""));
    }

    #[test]
    fn save_writes_both_files() {
        let dir = std::env::temp_dir().join(format!("osdp-report-test-{}", std::process::id()));
        let r = sample();
        r.save(&dir, "smoke").unwrap();
        assert!(dir.join("smoke.json").exists());
        assert!(dir.join("smoke.md").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
