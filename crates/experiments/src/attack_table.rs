//! Exclusion-attack exponents of the mechanisms discussed in Sections 3.2
//! and 3.4.
//!
//! For each release strategy, the table reports the tightest exclusion-attack
//! exponent φ it satisfies (Definition 3.4) on a small record domain, and the
//! tightest OSDP ε it satisfies on singleton databases. `OsdpRR` and the
//! plain DP mechanism achieve φ = ε; `Suppress(τ)` only achieves φ = τ;
//! truthful release of non-sensitive records is unboundedly exposed.

use crate::config::ExperimentConfig;
use osdp_attack::{
    exclusion_attack_phi, verify_osdp_on_singletons, DpGeometricModel, OsdpRrModel, ReleaseModel,
    SuppressModel, TruthfulModel,
};
use osdp_core::policy::ClosurePolicy;
use osdp_metrics::{ResultRow, ResultTable};

/// Size of the record value domain used by the exact analysis.
pub const DOMAIN: u32 = 8;

/// Builds the exclusion-attack / OSDP verification table at the headline ε.
pub fn run(config: &ExperimentConfig) -> ResultTable {
    let eps = config.epsilons.first().copied().unwrap_or(1.0);
    // Values >= DOMAIN/2 are sensitive — a value-correlated policy like the
    // smoker's-lounge example.
    let policy = ClosurePolicy::new("upper-half-sensitive", move |&v: &u32| v >= DOMAIN / 2);

    let models: Vec<Box<dyn ReleaseModel>> = vec![
        Box::new(OsdpRrModel { epsilon: eps }),
        Box::new(DpGeometricModel { epsilon: eps }),
        Box::new(SuppressModel { tau: 10.0 }),
        Box::new(SuppressModel { tau: 100.0 }),
        Box::new(TruthfulModel),
    ];
    let labels = ["OsdpRR", "DP (geometric)", "Suppress10", "Suppress100", "All NS (truthful)"];

    let mut table = ResultTable::new(format!(
        "Exclusion-attack exponent phi and tightest OSDP epsilon per mechanism (nominal eps = {eps})"
    ));
    for (model, label) in models.iter().zip(labels) {
        let phi = exclusion_attack_phi(model.as_ref(), &policy, DOMAIN);
        let osdp = verify_osdp_on_singletons(model.as_ref(), &policy, DOMAIN);
        table.push(
            ResultRow::new()
                .dim("mechanism", label)
                .measure("phi", phi)
                .measure("tightest_osdp_epsilon", osdp.tightest_epsilon)
                .measure("satisfies_nominal_epsilon", if osdp.satisfies(eps) { 1.0 } else { 0.0 }),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_theorems_3_1_and_3_4() {
        let mut config = ExperimentConfig::quick();
        config.epsilons = vec![1.0];
        let table = run(&config);
        assert_eq!(table.len(), 5);
        let phi = |m: &str| table.lookup(&[("mechanism", m)], "phi").unwrap();
        assert!((phi("OsdpRR") - 1.0).abs() < 1e-9);
        assert!(phi("DP (geometric)") <= 1.0 + 1e-9);
        assert!((phi("Suppress10") - 10.0).abs() < 1e-6);
        assert!((phi("Suppress100") - 100.0).abs() < 1e-4);
        assert!(phi("All NS (truthful)").is_infinite());

        let ok =
            |m: &str| table.lookup(&[("mechanism", m)], "satisfies_nominal_epsilon").unwrap() > 0.5;
        assert!(ok("OsdpRR"));
        assert!(ok("DP (geometric)"));
        assert!(!ok("Suppress10"));
        assert!(!ok("All NS (truthful)"));
    }
}
